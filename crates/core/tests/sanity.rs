//! Workspace-sanity smoke test: every paper property builds and a small experiment
//! runs end to end through the public API.

use dlrv_core::{run_experiment, ExperimentConfig, PaperProperty};

#[test]
fn paper_properties_build_and_a_small_experiment_runs() {
    for property in PaperProperty::ALL {
        let (formula, registry) = property.build(3);
        assert!(!formula.to_string().is_empty());
        assert!(registry.lookup("P0.p").is_some());
    }
    let result = run_experiment(&ExperimentConfig::small(PaperProperty::A, 2));
    assert_eq!(result.per_seed.len(), 1);
    assert!(result.avg.total_events > 0);
}
