//! The six LTL₃ properties of the evaluation chapter (§5.1), parameterized by the
//! number of processes.
//!
//! Every process `Pi` owns two propositions `Pi.p` and `Pi.q`.  The properties below
//! follow the thesis exactly for four processes and generalize naturally to other
//! process counts (the thesis evaluates 2–5 processes with the "same" properties; e.g.
//! property A for two processes is `G(P0.p U P1.p)` as drawn in Fig. 5.2a).

use dlrv_ltl::{AtomRegistry, Formula};
use std::fmt;

/// The evaluation properties A–F.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PaperProperty {
    /// `G((P0.p ∧ … ∧ Pk.p) U (Pk+1.p ∧ … ∧ Pn-1.p))` — first half holds until the
    /// second half holds concurrently.
    A,
    /// `F(P0.p ∧ … ∧ Pn-1.p)` — eventually all `p` propositions hold concurrently.
    B,
    /// `G(P0.p U (P1.p ∧ … ∧ Pn-1.p))` — `P0.p` holds until all the others hold.
    C,
    /// `G((⋀ Pi.p) U (⋀ Pi.q))` — all `p` hold until all `q` hold concurrently.
    D,
    /// `F(⋀ Pi.p ∧ ⋀ Pi.q)` — eventually every proposition of every process holds.
    E,
    /// `G((P0.p U ⋀_{i>0} Pi.p) ∧ (P0.q U ⋀_{i>0} Pi.q))` — the conjunction of two
    /// until-obligations, one over `p` and one over `q`.
    F,
}

impl PaperProperty {
    /// All six properties, in the order reported by the paper.
    pub const ALL: [PaperProperty; 6] = [
        PaperProperty::A,
        PaperProperty::B,
        PaperProperty::C,
        PaperProperty::D,
        PaperProperty::E,
        PaperProperty::F,
    ];

    /// The property with the given single-letter [`name`](Self::name), if any.
    pub fn from_name(name: &str) -> Option<PaperProperty> {
        PaperProperty::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Single-letter name.
    pub fn name(self) -> &'static str {
        match self {
            PaperProperty::A => "A",
            PaperProperty::B => "B",
            PaperProperty::C => "C",
            PaperProperty::D => "D",
            PaperProperty::E => "E",
            PaperProperty::F => "F",
        }
    }

    /// Builds the registry (atoms actually used by the property) and the formula for
    /// `n_processes` processes.
    ///
    /// Panics if `n_processes < 2`.
    pub fn build(self, n_processes: usize) -> (Formula, AtomRegistry) {
        let mut reg = AtomRegistry::new();
        let formula = self.build_in(&mut reg, n_processes);
        (formula, reg)
    }

    /// Builds the formula into an existing registry, interning this property's
    /// atoms alongside whatever is already there — the substrate of fleet
    /// compilation, where several properties share one atom space so their
    /// monitors can interpret the same event assignments.
    ///
    /// Panics if `n_processes < 2`.
    pub fn build_in(self, reg: &mut AtomRegistry, n_processes: usize) -> Formula {
        assert!(n_processes >= 2, "paper properties need at least two processes");
        let p = |reg: &mut AtomRegistry, i: usize| Formula::Atom(reg.intern(&format!("P{i}.p"), i));
        let q = |reg: &mut AtomRegistry, i: usize| Formula::Atom(reg.intern(&format!("P{i}.q"), i));

        match self {
            PaperProperty::A => {
                let split = (n_processes / 2).max(1);
                let lhs = Formula::conj((0..split).map(|i| p(reg, i)));
                let rhs = Formula::conj((split..n_processes).map(|i| p(reg, i)));
                Formula::globally(Formula::until(lhs, rhs))
            }
            PaperProperty::B => {
                Formula::eventually(Formula::conj((0..n_processes).map(|i| p(reg, i))))
            }
            PaperProperty::C => {
                let lhs = p(reg, 0);
                let rhs = Formula::conj((1..n_processes).map(|i| p(reg, i)));
                Formula::globally(Formula::until(lhs, rhs))
            }
            PaperProperty::D => {
                let lhs = Formula::conj((0..n_processes).map(|i| p(reg, i)));
                let rhs = Formula::conj((0..n_processes).map(|i| q(reg, i)));
                Formula::globally(Formula::until(lhs, rhs))
            }
            PaperProperty::E => {
                let all_p = Formula::conj((0..n_processes).map(|i| p(reg, i)));
                let all_q = Formula::conj((0..n_processes).map(|i| q(reg, i)));
                Formula::eventually(Formula::and(all_p, all_q))
            }
            PaperProperty::F => {
                let left = Formula::until(
                    p(reg, 0),
                    Formula::conj((1..n_processes).map(|i| p(reg, i))),
                );
                let right = Formula::until(
                    q(reg, 0),
                    Formula::conj((1..n_processes).map(|i| q(reg, i))),
                );
                Formula::globally(Formula::and(left, right))
            }
        }
    }
}

impl fmt::Display for PaperProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Property {}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_automaton::MonitorAutomaton;
    use dlrv_ltl::Verdict;

    #[test]
    fn atom_counts_match_property_shape() {
        for n in 2..=4 {
            let (_, reg_a) = PaperProperty::A.build(n);
            assert_eq!(reg_a.len(), n, "A uses one p per process");
            let (_, reg_d) = PaperProperty::D.build(n);
            assert_eq!(reg_d.len(), 2 * n, "D uses p and q of every process");
            let (_, reg_e) = PaperProperty::E.build(n);
            assert_eq!(reg_e.len(), 2 * n);
        }
    }

    #[test]
    fn all_properties_synthesize_for_two_processes() {
        for prop in PaperProperty::ALL {
            let (formula, reg) = prop.build(2);
            let m = MonitorAutomaton::synthesize(&formula, &reg);
            assert!(m.n_states() >= 2, "{prop} should have a non-trivial monitor");
            let counts = m.transition_counts();
            assert!(counts.total > 0);
            assert_eq!(counts.total, counts.outgoing + counts.self_loops);
        }
    }

    #[test]
    fn b_and_e_have_single_goal_transition_shape() {
        // Properties B and E are pure reachability: their monitors have exactly one
        // non-final state and one ⊤ state, so outgoing transitions are few — this is
        // the paper's explanation for their low overhead (Table 5.1 shows 1 outgoing
        // transition for B and E at every size).
        for prop in [PaperProperty::B, PaperProperty::E] {
            let (formula, reg) = prop.build(3);
            let m = MonitorAutomaton::synthesize(&formula, &reg);
            let outgoing: usize = (0..m.n_states())
                .filter(|&s| !m.is_final(s))
                .map(|s| m.outgoing_transitions(s).len())
                .sum();
            assert_eq!(outgoing, 1, "{prop} must have exactly one outgoing transition");
            assert!(m.verdicts.contains(&Verdict::True));
            assert!(!m.verdicts.contains(&Verdict::False));
        }
    }

    #[test]
    fn d_has_more_transitions_than_b() {
        let (fb, rb) = PaperProperty::B.build(3);
        let (fd, rd) = PaperProperty::D.build(3);
        let mb = MonitorAutomaton::synthesize(&fb, &rb);
        let md = MonitorAutomaton::synthesize(&fd, &rd);
        assert!(
            md.transition_counts().total > mb.transition_counts().total,
            "property D must have a more complex automaton than property B"
        );
    }

    #[test]
    fn property_names_and_display() {
        assert_eq!(PaperProperty::A.name(), "A");
        assert_eq!(format!("{}", PaperProperty::F), "Property F");
        assert_eq!(PaperProperty::ALL.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_process_is_rejected() {
        PaperProperty::A.build(1);
    }
}
