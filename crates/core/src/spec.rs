//! First-class property specifications: the bridge between "property" as a name and
//! everything the pipeline derives from it.
//!
//! A [`PropertySpec`] is what every layer of the repository is parameterized by: the
//! scenario registry, the experiment and throughput runners, the workload generator
//! (via the spec's initial channel values) and the `experiments` CLI.  It comes in
//! two flavors:
//!
//! * **paper** — one of the six evaluation properties A–F ([`PaperProperty`]),
//!   parameterized by process count exactly as before; and
//! * **LTL** — an arbitrary user-supplied formula in the textual syntax of
//!   [`dlrv_ltl::parse`], over atoms following the `P<i>.<name>` ownership
//!   convention (`G(P0.req -> F P1.ack)`), fixed at parse time.
//!
//! [`CompiledProperty`] is the spec fully elaborated for a concrete process count:
//! formula, atom registry, atom-to-channel [`AtomLayout`] and the synthesized
//! [`MonitorAutomaton`], shared (`Arc`) by every monitor of a run.  It is what the
//! decentralized/centralized feed sessions and the stream runtime's
//! `SessionSpec` are built from.

use crate::properties::PaperProperty;
use dlrv_automaton::{dot, MonitorAutomaton};
use dlrv_ltl::{
    parse, Assignment, AtomLayout, AtomRegistry, Channel, Formula, ParseError,
};
use dlrv_monitor::{decentralized_session, DecentralizedSession, MonitorOptions};
use std::fmt;
use std::sync::Arc;

/// Ceiling on the number of distinct atoms a custom formula may use.
///
/// The monitor synthesis enumerates the alphabet `2^n_atoms` explicitly, so the cap
/// keeps user-supplied formulas inside the same complexity envelope as the paper's
/// largest property (D/E/F at five processes use 10 atoms).
pub const MAX_SPEC_ATOMS: usize = 12;

/// Error constructing a [`PropertySpec`] from LTL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertySpecError {
    /// The text does not parse; the payload carries the offending byte offset.
    Parse(ParseError),
    /// The formula uses more atoms than the synthesis pipeline accepts.
    TooManyAtoms {
        /// Atoms used by the formula.
        count: usize,
        /// The [`MAX_SPEC_ATOMS`] ceiling.
        max: usize,
    },
    /// The formula mentions no atomic proposition at all — nothing to monitor.
    NoAtoms,
}

impl fmt::Display for PropertySpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertySpecError::Parse(e) => write!(f, "{e}"),
            PropertySpecError::TooManyAtoms { count, max } => write!(
                f,
                "formula uses {count} atoms; the monitor synthesis accepts at most {max}"
            ),
            PropertySpecError::NoAtoms => {
                write!(f, "formula contains no atomic proposition; nothing to monitor")
            }
        }
    }
}

impl std::error::Error for PropertySpecError {}

impl From<ParseError> for PropertySpecError {
    fn from(e: ParseError) -> Self {
        PropertySpecError::Parse(e)
    }
}

/// Where a spec's formula comes from.
#[derive(Debug, Clone, PartialEq)]
enum PropertySource {
    /// A paper property, re-instantiated per process count.
    Paper(PaperProperty),
    /// A fixed user formula: the source text plus its parse artifacts.
    Ltl {
        text: String,
        formula: Formula,
        registry: AtomRegistry,
    },
}

/// A named, monitorable property: the unit every layer of the pipeline takes.
///
/// Construct with [`PropertySpec::from`] a [`PaperProperty`], or
/// [`PropertySpec::parse`] / [`PropertySpec::parse_named`] for LTL text.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertySpec {
    name: String,
    source: PropertySource,
}

impl PropertySpec {
    /// The spec of a paper property (also available via `From`/`Into`).
    pub fn paper(property: PaperProperty) -> Self {
        PropertySpec {
            name: property.name().to_string(),
            source: PropertySource::Paper(property),
        }
    }

    /// Parses LTL text into a spec named after its own source text.
    pub fn parse(text: &str) -> Result<Self, PropertySpecError> {
        Self::parse_named(text, text)
    }

    /// Parses LTL text into a spec with an explicit display/JSON name.
    ///
    /// Atom ownership follows the `P<i>.<name>` convention of
    /// [`AtomRegistry::intern_auto`]; the formula must mention at least one atom and
    /// at most [`MAX_SPEC_ATOMS`].
    pub fn parse_named(name: &str, text: &str) -> Result<Self, PropertySpecError> {
        let mut registry = AtomRegistry::new();
        let formula = parse(text, &mut registry)?;
        if registry.is_empty() {
            return Err(PropertySpecError::NoAtoms);
        }
        if registry.len() > MAX_SPEC_ATOMS {
            return Err(PropertySpecError::TooManyAtoms {
                count: registry.len(),
                max: MAX_SPEC_ATOMS,
            });
        }
        Ok(PropertySpec {
            name: name.to_string(),
            source: PropertySource::Ltl {
                text: text.to_string(),
                formula,
                registry,
            },
        })
    }

    /// The spec's stable name (a paper letter `A`–`F`, or the custom name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying paper property, when this spec is one.
    pub fn paper_property(&self) -> Option<PaperProperty> {
        match &self.source {
            PropertySource::Paper(p) => Some(*p),
            PropertySource::Ltl { .. } => None,
        }
    }

    /// The LTL source text, when this spec was parsed from text.
    pub fn ltl_source(&self) -> Option<&str> {
        match &self.source {
            PropertySource::Paper(_) => None,
            PropertySource::Ltl { text, .. } => Some(text),
        }
    }

    /// The smallest process count the spec can be built for.
    ///
    /// Paper properties need two processes; an LTL spec needs every process its
    /// atoms name (max owner + 1, at least one).
    pub fn min_processes(&self) -> usize {
        match &self.source {
            PropertySource::Paper(_) => 2,
            PropertySource::Ltl { registry, .. } => registry.process_count().max(1),
        }
    }

    /// Builds the formula and atom registry for `n_processes` processes.
    ///
    /// Paper properties re-instantiate per process count (their shape scales);
    /// LTL specs return their fixed parse artifacts.  Panics when `n_processes <`
    /// [`min_processes`](Self::min_processes).
    pub fn build(&self, n_processes: usize) -> (Formula, AtomRegistry) {
        match &self.source {
            PropertySource::Paper(p) => p.build(n_processes),
            PropertySource::Ltl { formula, registry, .. } => {
                assert!(
                    n_processes >= self.min_processes(),
                    "property `{}` names process P{}, but only {} process(es) requested",
                    self.name,
                    self.min_processes() - 1,
                    n_processes
                );
                (formula.clone(), registry.clone())
            }
        }
    }

    /// Builds the formula into an existing registry, interning this spec's atoms
    /// alongside whatever other properties already put there.
    ///
    /// This is the substrate of fleet compilation ([`crate::fleet`]): every member
    /// of a fleet is built into one shared registry so all members interpret the
    /// same event assignments, and each member's automaton is synthesized over
    /// that shared atom space.  Panics when `n_processes <`
    /// [`min_processes`](Self::min_processes).
    pub fn build_in(&self, reg: &mut AtomRegistry, n_processes: usize) -> Formula {
        match &self.source {
            PropertySource::Paper(p) => p.build_in(reg, n_processes),
            PropertySource::Ltl { text, .. } => {
                assert!(
                    n_processes >= self.min_processes(),
                    "property `{}` names process P{}, but only {} process(es) requested",
                    self.name,
                    self.min_processes() - 1,
                    n_processes
                );
                // Reparse into the shared registry: atom names dedup on intern,
                // so atoms shared with other members resolve to the same ids.
                parse(text, reg).expect("spec text parsed once already")
            }
        }
    }

    /// Initial values of the two per-process workload channels `(p, q)`.
    ///
    /// Until-style properties need their left-hand side to hold in the initial
    /// global state (otherwise the very first cut already violates them); pure
    /// reachability properties want everything false so satisfaction is not trivial.
    /// Paper properties use the evaluation chapter's exact table; LTL specs derive
    /// the values from the formula: a channel starts `true` iff some atom it drives
    /// occurs positively in the left operand of an `U` (see
    /// [`initial_channels_for`]).
    pub fn initial_channels(&self) -> (bool, bool) {
        match &self.source {
            PropertySource::Paper(p) => match p {
                PaperProperty::A | PaperProperty::C | PaperProperty::D => (true, false),
                PaperProperty::F => (true, true),
                PaperProperty::B | PaperProperty::E => (false, false),
            },
            PropertySource::Ltl { formula, registry, .. } => {
                initial_channels_for(formula, registry)
            }
        }
    }
}

impl From<PaperProperty> for PropertySpec {
    fn from(property: PaperProperty) -> Self {
        PropertySpec::paper(property)
    }
}

impl PartialEq<PaperProperty> for PropertySpec {
    fn eq(&self, other: &PaperProperty) -> bool {
        self.paper_property() == Some(*other)
    }
}

impl fmt::Display for PropertySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper specs display exactly like `PaperProperty` ("Property A"), so text
        // output through the spec layer is byte-identical to the historical path.
        write!(f, "Property {}", self.name)
    }
}

/// Derives initial channel values from a formula: channel `c` starts `true` iff some
/// atom bound to `c` (under the registry's [`AtomLayout`]) occurs *positively* in an
/// **initial obligation** — the left operand of any `Until`, or reachable at time
/// zero through the invariant spine (conjunctions/disjunctions and `Release`
/// right-hand sides, which is where `G φ = false R φ` puts its body).
///
/// Both kinds of obligation must hold at the very first cut, so starting their
/// atoms `false` would make the property trivially violated before any event
/// (`G P0.p`, `G(P0.p U P1.p)`); atoms only reachable under an `Until` right-hand
/// side or a `Next` (`F P0.p`, `G X P0.p`) are eventualities and start `false` so
/// satisfaction is not trivial either.  For every paper property this reproduces
/// the evaluation chapter's initial-value table exactly (pinned by a test below).
pub fn initial_channels_for(formula: &Formula, registry: &AtomRegistry) -> (bool, bool) {
    let mut obligated = std::collections::BTreeSet::new();
    collect_initial_obligations(&formula.nnf(), true, &mut obligated);
    let layout = AtomLayout::from_registry(registry, registry.process_count());
    let mut p = false;
    let mut q = false;
    for atom in obligated {
        match layout.channel(atom) {
            Channel::P => p = true,
            Channel::Q => q = true,
        }
    }
    (p, q)
}

/// Walks an NNF formula; `oblig` is true while the current subformula must hold at
/// time zero (the invariant spine).  Until left-hand sides are obligations wherever
/// they appear; Until right-hand sides, Release left-hand sides and `Next` bodies
/// are deferred and reset the flag.
fn collect_initial_obligations(
    f: &Formula,
    oblig: bool,
    out: &mut std::collections::BTreeSet<dlrv_ltl::AtomId>,
) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom(a) => {
            if oblig {
                out.insert(*a);
            }
        }
        // NNF: negation only wraps atoms; a negated atom is not a positive occurrence.
        Formula::Not(_) => {}
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_initial_obligations(a, oblig, out);
            collect_initial_obligations(b, oblig, out);
        }
        Formula::Next(a) => collect_initial_obligations(a, false, out),
        Formula::Until(a, b) => {
            collect_initial_obligations(a, true, out);
            collect_initial_obligations(b, false, out);
        }
        Formula::Release(a, b) => {
            collect_initial_obligations(a, false, out);
            collect_initial_obligations(b, oblig, out);
        }
    }
}

/// A spec elaborated for a concrete process count: everything a run shares.
///
/// Compilation synthesizes the monitor automaton once; the `Arc`s are handed to every
/// per-process monitor, the stream runtime's session specs and the DOT exporter.
#[derive(Debug, Clone)]
pub struct CompiledProperty {
    /// The spec this was compiled from.
    pub spec: PropertySpec,
    /// The process count it was compiled for.
    pub n_processes: usize,
    /// The formula over the registry's atoms.
    pub formula: Formula,
    /// The shared atom registry (ownership of every conjunct).
    pub registry: Arc<AtomRegistry>,
    /// The shared synthesized LTL₃ monitor automaton.
    pub automaton: Arc<MonitorAutomaton>,
}

impl CompiledProperty {
    /// Compiles `spec` for `n_processes`: builds formula + registry and synthesizes
    /// the monitor automaton.
    pub fn compile(spec: &PropertySpec, n_processes: usize) -> Self {
        let (formula, registry) = spec.build(n_processes);
        let automaton = Arc::new(MonitorAutomaton::synthesize(&formula, &registry));
        CompiledProperty {
            spec: spec.clone(),
            n_processes,
            formula,
            registry: Arc::new(registry),
            automaton,
        }
    }

    /// A fresh incremental decentralized monitoring session over this property.
    pub fn session(
        &self,
        initial_gstate: Assignment,
        opts: MonitorOptions,
    ) -> DecentralizedSession {
        decentralized_session(
            self.n_processes,
            &self.automaton,
            &self.registry,
            initial_gstate,
            opts,
        )
    }

    /// The synthesized monitor automaton rendered as a Graphviz DOT digraph.
    pub fn to_dot(&self) -> String {
        dot::to_dot(
            &self.automaton,
            &self.registry,
            &format!("{} ({} procs)", self.spec.name(), self.n_processes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_ltl::Verdict;

    #[test]
    fn paper_specs_delegate_to_paper_properties() {
        for property in PaperProperty::ALL {
            let spec = PropertySpec::from(property);
            assert_eq!(spec.name(), property.name());
            assert_eq!(spec.paper_property(), Some(property));
            assert_eq!(spec.min_processes(), 2);
            assert_eq!(spec, property);
            let (f_spec, r_spec) = spec.build(3);
            let (f_direct, r_direct) = property.build(3);
            assert_eq!(f_spec, f_direct);
            assert_eq!(r_spec, r_direct);
        }
    }

    #[test]
    fn ltl_specs_parse_and_build() {
        let spec = PropertySpec::parse("G(P0.req -> F P1.ack)").expect("valid LTL");
        assert_eq!(spec.min_processes(), 2);
        assert!(spec.paper_property().is_none());
        assert_eq!(spec.ltl_source(), Some("G(P0.req -> F P1.ack)"));
        let (formula, registry) = spec.build(3);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.owner(registry.lookup("P1.ack").unwrap()), 1);
        assert!(!formula.is_propositional());
    }

    #[test]
    fn parse_named_keeps_the_display_name() {
        let spec = PropertySpec::parse_named("reqack", "G(P0.req -> F P1.ack)").unwrap();
        assert_eq!(spec.name(), "reqack");
        assert_eq!(format!("{spec}"), "Property reqack");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(matches!(
            PropertySpec::parse("G(P0.p &&"),
            Err(PropertySpecError::Parse(_))
        ));
        assert!(matches!(
            PropertySpec::parse("G true"),
            Err(PropertySpecError::NoAtoms)
        ));
        // 13 distinct atoms exceed the synthesis ceiling.
        let wide = (0..13)
            .map(|i| format!("P{i}.p"))
            .collect::<Vec<_>>()
            .join(" && ");
        assert!(matches!(
            PropertySpec::parse(&format!("F ({wide})")),
            Err(PropertySpecError::TooManyAtoms { count: 13, max: MAX_SPEC_ATOMS })
        ));
    }

    #[test]
    #[should_panic(expected = "names process P2")]
    fn building_below_min_processes_panics() {
        let spec = PropertySpec::parse("F (P2.p)").unwrap();
        spec.build(2);
    }

    #[test]
    fn initial_channel_heuristic_matches_the_paper_table() {
        // The generic until-LHS heuristic must reproduce the evaluation chapter's
        // initial-value table on every paper property and process count, so a paper
        // formula routed through the LTL path behaves identically.
        for property in PaperProperty::ALL {
            let expected = PropertySpec::from(property).initial_channels();
            for n in 2..=5 {
                let (formula, registry) = property.build(n);
                assert_eq!(
                    initial_channels_for(&formula, &registry),
                    expected,
                    "{property} at {n} processes"
                );
            }
        }
    }

    #[test]
    fn initial_channels_for_custom_shapes() {
        // Request-response: no until-LHS atoms, everything starts false.
        let spec = PropertySpec::parse("G(P0.req -> F P1.ack)").unwrap();
        assert_eq!(spec.initial_channels(), (false, false));
        // Until with a positive LHS: the driving channel starts true.
        let spec = PropertySpec::parse("G(P0.p U (P1.p && P2.p))").unwrap();
        assert_eq!(spec.initial_channels(), (true, false));
        // Negative occurrence on the LHS must NOT force the channel true
        // (precedence: "no done until init").
        let spec = PropertySpec::parse("(!P1.done) U P0.init").unwrap();
        assert_eq!(spec.initial_channels(), (false, false));
        // A bare invariant is an initial obligation: `G P0.p` with p starting
        // false would be violated before any event.
        let spec = PropertySpec::parse("G P0.p").unwrap();
        assert_eq!(spec.initial_channels(), (true, false));
        // Same through a positive Release right-hand side …
        let spec = PropertySpec::parse("P1.ok R P0.live").unwrap();
        assert_eq!(spec.initial_channels(), (true, false));
        // … but not through Next or an eventuality: those are deferred.
        let spec = PropertySpec::parse("G X P0.p").unwrap();
        assert_eq!(spec.initial_channels(), (false, false));
        let spec = PropertySpec::parse("F (G P0.p)").unwrap();
        assert_eq!(spec.initial_channels(), (false, false));
    }

    #[test]
    fn compiled_property_runs_a_session_end_to_end() {
        let spec = PropertySpec::parse("F (P0.p && P1.p)").unwrap();
        let compiled = CompiledProperty::compile(&spec, 2);
        assert_eq!(compiled.n_processes, 2);
        let mut session = compiled.session(Assignment::ALL_FALSE, MonitorOptions::default());
        use dlrv_vclock::{Event, EventKind, VectorClock};
        let a = compiled.registry.lookup("P0.p").unwrap();
        let b = compiled.registry.lookup("P1.p").unwrap();
        session.feed_owned(Event {
            process: 0,
            kind: EventKind::Internal,
            sn: 1,
            vc: VectorClock::from_entries(vec![1, 0]),
            state: Assignment::from_true_atoms([a]),
            time: 1.0,
        });
        session.feed_owned(Event {
            process: 1,
            kind: EventKind::Internal,
            sn: 1,
            vc: VectorClock::from_entries(vec![0, 1]),
            state: Assignment::from_true_atoms([b]),
            time: 2.0,
        });
        assert_eq!(session.finish(), Verdict::True);
    }

    #[test]
    fn compiled_property_renders_dot() {
        let compiled =
            CompiledProperty::compile(&PropertySpec::from(PaperProperty::B), 2);
        let dot = compiled.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("P0.p"));
        assert!(dot.contains("q_top"));
    }
}
