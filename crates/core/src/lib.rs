//! High-level public API of the decentralized LTL runtime-verification framework.
//!
//! This crate ties the workspace together for downstream users:
//!
//! * [`MonitoredSystem`] — builder API: declare a distributed system, attach an LTL
//!   property (text or AST), pick or generate a workload, run it with decentralized
//!   monitors and read verdicts/metrics.
//! * [`PropertySpec`] / [`CompiledProperty`] — first-class properties: the paper's
//!   six letters or arbitrary user LTL text, compiled once (formula + registry +
//!   synthesized monitor) and threaded through every layer below.
//! * [`PaperProperty`] — the six evaluation properties A–F of the thesis,
//!   parameterized by process count; thin constructors of [`PropertySpec`]s.
//! * [`ExperimentConfig`] / [`run_experiment`] — the experiment runner used by the
//!   benchmark harness to regenerate every table and figure of Chapter 5.
//! * [`Scenario`] / [`ScenarioRegistry`] — every experiment the repository knows how
//!   to run, by stable name: the paper's sweeps plus extended workload shapes
//!   (bursty arrivals, ring/pipeline/hotspot topologies, large-N runs) and the
//!   online throughput family ([`StreamParams`], `--target throughput`).
//! * [`throughput`] — the streaming benchmark runner: hundreds–thousands of
//!   concurrent sessions encoded to wire bytes and pumped through the sharded
//!   [`dlrv_stream`] runtime.
//! * [`deploy`] — the real-socket deployment runner: one `monitord` OS process
//!   per monitor over TCP/Unix sockets ([`DeployParams`], `--target deploy`),
//!   with deterministic fault injection on every channel ([`dlrv_net`]).
//! * [`results`] — the machine-readable `BENCH_results.json` pipeline: sweep
//!   results serialized over [`dlrv_json`] and parsed back field-for-field.
//! * [`analysis`] — spec-level entry points into the static analyzer
//!   ([`dlrv_analyze`]): monitorability classification, automaton hygiene and
//!   decentralization cost prediction without running a workload
//!   (`--target analyze`).
//!
//! The lower-level building blocks are re-exported from their crates: LTL syntax
//! ([`dlrv_ltl`]), monitor-automaton synthesis ([`dlrv_automaton`]), vector clocks and
//! lattices ([`dlrv_vclock`]), workload generation ([`dlrv_trace`]), the execution
//! substrates ([`dlrv_distsim`]) and the monitoring algorithms ([`dlrv_monitor`]).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod deploy;
pub mod experiment;
pub mod fleet;
pub mod properties;
pub mod report;
pub mod results;
pub mod scenario;
pub mod spec;
pub mod system;
pub mod throughput;

pub use analysis::{
    analyze_spec, analyze_to_dot, initial_global_state_for, measured_overhead_for,
};
pub use deploy::{run_deploy, DeployOutcome, DeployParams, DeployTransport};
pub use experiment::{
    average_metrics, effective_jobs, parallel_map_indexed, run_experiment,
    run_experiment_with_options, run_single, set_jobs, ExperimentConfig, ExperimentResult,
};
pub use fleet::{compile_fleet, run_fleet, CompiledFleetMember, FleetParams};
pub use properties::PaperProperty;
pub use report::{render_report, RenderedReport, TrendPoint};
pub use results::{sweep_from_json, sweep_to_json, ScenarioRecord, RESULTS_SCHEMA_VERSION};
pub use spec::{
    CompiledProperty, PropertySpec, PropertySpecError, MAX_SPEC_ATOMS,
};
pub use scenario::{Scenario, ScenarioFamily, ScenarioRegistry, StreamParams};
pub use system::{MonitoredSystem, MonitoringOutcome};
pub use throughput::run_throughput;

pub use dlrv_analyze;
pub use dlrv_automaton;
pub use dlrv_distsim;
pub use dlrv_json;
pub use dlrv_ltl;
pub use dlrv_monitor;
pub use dlrv_net;
pub use dlrv_obs;
pub use dlrv_stream;
pub use dlrv_trace;
pub use dlrv_vclock;
