//! The deploy orchestrator: run one scenario as real OS processes over sockets.
//!
//! `run_deploy` reproduces the [`FeedSession`](dlrv_monitor::FeedSession)
//! discipline — feed one event, drain every monitor-to-monitor message to
//! quiescence, then feed the next — across process boundaries:
//!
//! 1. One `monitord` daemon is spawned per monitored process; each binds a TCP or
//!    Unix listener and prints `LISTEN <endpoint>` on stdout.
//! 2. The orchestrator connects a control channel to every daemon, sends the
//!    `hello` (property, options, initial state, fault spec, full endpoint list)
//!    and waits for every `hello_ok` — daemons establish their peer mesh in
//!    between (each dials its lower-numbered peers).
//! 3. Events are fed in timestamp order, one at a time, to the daemon of the
//!    event's process.  After each event the orchestrator runs the **quiescence
//!    barrier**: it polls every daemon's transport counters until the send/receive
//!    matrix balances (`sent[i][j] == received[j][i]`), nothing is pending inside
//!    any daemon (write queues, reorder holds, delay queues), and two consecutive
//!    polls agree — the classic counter-balance termination test adapted to lossy
//!    channels (deliberately dropped frames are excluded from `sent`).
//! 4. End-of-trace termination runs sequentially per process at the global last
//!    event timestamp, with a barrier after each, exactly like
//!    `FeedSession::finish`.
//! 5. Reports are collected and folded into the same [`RunMetrics`] as the
//!    in-process runners, so deploy results flow into the schema-v1 pipeline.
//!
//! Because the barrier delivers everything between consecutive events, verdicts
//! under delay/duplication/reordering faults are identical to the in-process
//! runtime (duplicates are absorbed by global-view merging, reordering happens
//! only within one event's message burst); frame *loss* genuinely removes
//! exploration and is pinned as an expected divergence by `tests/deploy_faults.rs`.

use crate::experiment::{average_metrics, ExperimentConfig, ExperimentResult};
use crate::results::{options_to_json, property_to_json};
use crate::spec::CompiledProperty;
use dlrv_distsim::{initial_global_state, run_simulation, NullMonitor, SimConfig};
use dlrv_monitor::{timestamp_order, MonitorOptions, RunMetrics};
use dlrv_net::{
    connect_with_retry, DaemonReport, DaemonStatus, DaemonTelemetry, Endpoint, FaultSpec,
    FaultStats, FramedConn, WireMsg,
};
use dlrv_trace::generate_workload;
use dlrv_vclock::Event;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which socket family carries the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployTransport {
    /// TCP over the loopback interface (`tcp:127.0.0.1:0`, ports auto-assigned).
    Tcp,
    /// Unix domain sockets in the system temp directory.
    Unix,
}

impl DeployTransport {
    /// Stable lowercase name used in listings and the JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            DeployTransport::Tcp => "tcp",
            DeployTransport::Unix => "unix",
        }
    }

    /// The transport with the given [`name`](Self::name), if any.
    pub fn from_name(name: &str) -> Option<DeployTransport> {
        match name {
            "tcp" => Some(DeployTransport::Tcp),
            "unix" => Some(DeployTransport::Unix),
            _ => None,
        }
    }
}

/// How a deploy scenario is carried over the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeployParams {
    /// Socket family of the control and peer channels.
    pub transport: DeployTransport,
    /// Fault spec applied to every daemon's outgoing peer channels (`None` = a
    /// perfect network).
    pub fault: Option<FaultSpec>,
    /// True when event and monitor frames travel in the compact binary format
    /// (negotiated via the `hello` frame's `wire` field); false keeps the
    /// original all-JSON wire, the A/B baseline.
    pub binary_wire: bool,
}

impl DeployParams {
    /// A fault-free deployment over the given transport, with the binary wire
    /// (the optimized default; use a struct literal for the JSON baseline).
    pub fn clean(transport: DeployTransport) -> Self {
        DeployParams {
            transport,
            fault: None,
            binary_wire: true,
        }
    }
}

/// The outcome of a deploy run: the usual experiment result plus what the fault
/// shims did across all daemons and seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployOutcome {
    /// Metrics and verdicts, aggregated exactly like the in-process runners.
    pub result: ExperimentResult,
    /// Merged fault-shim counters over every channel, daemon and seed.
    pub fault_stats: FaultStats,
}

/// Timeout for a single control-plane reply; generous because a daemon may be
/// compiling-cold, swapping, or sitting behind a delay-fault queue.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Timeout for one quiescence barrier (covers delay faults and slow CI machines).
const BARRIER_TIMEOUT: Duration = Duration::from_secs(60);

/// Distinguishes concurrent deploy runs sharing a temp directory.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Locates the `monitord` binary: the `DLRV_MONITORD_BIN` environment variable,
/// then a sibling of the current executable (covers `target/<profile>/` for the
/// `experiments` binary and `target/<profile>/deps/..` for integration tests).
pub fn monitord_binary() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var("DLRV_MONITORD_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!("DLRV_MONITORD_BIN={} does not exist", path.display()));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join("monitord");
        if candidate.is_file() {
            return Ok(candidate);
        }
        if d.file_name().is_some_and(|n| n == "target") {
            break;
        }
        dir = d.parent();
    }
    Err("monitord binary not found next to the current executable; build it with \
         `cargo build --bin monitord` or set DLRV_MONITORD_BIN"
        .to_string())
}

/// Runs `config` as one OS process per monitor, once per seed (sequentially —
/// each seed spawns its own process fleet), and averages the metrics exactly
/// like [`run_experiment_with_options`](crate::experiment::run_experiment_with_options).
pub fn run_deploy(
    config: &ExperimentConfig,
    opts: MonitorOptions,
    params: &DeployParams,
) -> Result<DeployOutcome, String> {
    let binary = monitord_binary()?;
    let mut per_seed = Vec::with_capacity(config.seeds.len());
    let mut fault_stats = FaultStats::default();
    for &seed in &config.seeds {
        let metrics = run_seed(config, opts, params, &binary, seed, &mut fault_stats)?;
        per_seed.push(metrics);
    }
    let mut detected = BTreeSet::new();
    for metrics in &per_seed {
        detected.extend(metrics.detected_final_verdicts.iter().copied());
    }
    Ok(DeployOutcome {
        result: ExperimentResult {
            config: config.clone(),
            avg: average_metrics(&per_seed),
            per_seed,
            detected_verdicts: detected,
        },
        fault_stats,
    })
}

/// One daemon of the fleet: the OS process plus its control channel.
struct Daemon {
    child: Child,
    endpoint: String,
    conn: FramedConn,
    inbox: VecDeque<WireMsg>,
    /// Unsolicited telemetry samples intercepted off the control channel, in
    /// arrival order — the daemon's live timeline for this run.
    telemetry: Vec<DaemonTelemetry>,
}

impl Daemon {
    /// Sends one control frame, blocking until it is fully on the wire.
    fn send(&mut self, msg: &WireMsg) -> Result<(), String> {
        self.conn
            .send_msg(msg)
            .map_err(|e| format!("send to {}: {e}", self.endpoint))?;
        let deadline = Instant::now() + REPLY_TIMEOUT;
        while self.conn.wants_write() {
            if Instant::now() >= deadline {
                return Err(format!("send to {}: flush timed out", self.endpoint));
            }
            self.conn
                .flush()
                .map_err(|e| format!("send to {}: {e}", self.endpoint))?;
            std::thread::sleep(Duration::from_micros(200));
        }
        Ok(())
    }

    /// Receives the next control frame, blocking up to [`REPLY_TIMEOUT`].
    ///
    /// Telemetry frames are unsolicited: they are folded into
    /// [`Daemon::telemetry`] here and never surfaced as a reply, so the
    /// lockstep request/response discipline of the feed loop is unaffected by
    /// how often daemons sample.
    fn recv(&mut self) -> Result<WireMsg, String> {
        let deadline = Instant::now() + REPLY_TIMEOUT;
        loop {
            while let Some(msg) = self.inbox.pop_front() {
                match msg {
                    WireMsg::Error { message } => {
                        return Err(format!("daemon {}: {message}", self.endpoint));
                    }
                    WireMsg::Telemetry(sample) => self.telemetry.push(sample),
                    msg => return Ok(msg),
                }
            }
            let msgs = self
                .conn
                .on_readable_msgs()
                .map_err(|e| format!("recv from {}: {e}", self.endpoint))?;
            self.inbox.extend(msgs);
            if self.inbox.is_empty() {
                if self.conn.is_eof() {
                    return Err(format!("daemon {} closed the control channel", self.endpoint));
                }
                if Instant::now() >= deadline {
                    return Err(format!("daemon {}: reply timed out", self.endpoint));
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// Kills every remaining daemon process when a run unwinds early.
struct Fleet {
    daemons: Vec<Daemon>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for daemon in &mut self.daemons {
            let _ = daemon.child.kill();
            let _ = daemon.child.wait();
        }
    }
}

/// Spawns one daemon, reads its `LISTEN` line, and starts a reader thread that
/// tags every stderr line with the daemon index and appends it to the shared
/// `stderr_log` in true arrival order (the interleaved fleet log).  The daemon
/// inherits the orchestrator's environment, so `DLRV_LOG` set on the
/// `experiments` process propagates to the whole fleet; when it is set the
/// tagged lines are additionally echoed to the orchestrator's own stderr.
fn spawn_daemon(
    binary: &PathBuf,
    listen: &str,
    process: usize,
    stderr_log: &Arc<Mutex<Vec<String>>>,
) -> Result<(Child, String, std::thread::JoinHandle<()>), String> {
    let mut child = Command::new(binary)
        .args(["--listen", listen, "--idle-timeout-secs", "60"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", binary.display()))?;
    let stderr = child.stderr.take().ok_or("daemon stderr not captured")?;
    let log = Arc::clone(stderr_log);
    let echo = std::env::var_os("DLRV_LOG").is_some();
    let reader = std::thread::spawn(move || {
        for line in std::io::BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            let tagged = format!("[daemon{process}] {line}");
            if echo {
                eprintln!("{tagged}");
            }
            if let Ok(mut log) = log.lock() {
                log.push(tagged);
            }
        }
    });
    let stdout = child.stdout.take().ok_or("daemon stdout not captured")?;
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("read LISTEN line: {e}"))?;
    let endpoint = line
        .strip_prefix("LISTEN ")
        .map(|rest| rest.trim().to_string())
        .filter(|ep| !ep.is_empty());
    match endpoint {
        Some(ep) => Ok((child, ep, reader)),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            let _ = reader.join();
            Err(format!("daemon did not report LISTEN (got `{}`)", line.trim()))
        }
    }
}

/// One seed end-to-end: spawn the fleet, handshake, feed, finish, report, shut down.
fn run_seed(
    config: &ExperimentConfig,
    opts: MonitorOptions,
    params: &DeployParams,
    binary: &PathBuf,
    seed: u64,
    fault_stats: &mut FaultStats,
) -> Result<RunMetrics, String> {
    let n = config.n_processes;
    let compiled = CompiledProperty::compile(&config.property, n);

    // The simulated distributed program: generate the workload and execute it with
    // no-op monitors to obtain the vector-clocked event sequence (the deploy run
    // monitors the *same* computation as the in-process runners).
    let workload = generate_workload(&config.workload_config(seed));
    let report = run_simulation(&workload, &compiled.registry, &SimConfig::default(), |_| {
        NullMonitor::default()
    });
    let events: Vec<Event> = timestamp_order(&report.computation)
        .into_iter()
        .map(|(_, p, sn)| report.computation.events[p][(sn - 1) as usize].clone())
        .collect();
    let initial_state = initial_global_state(&workload, &compiled.registry).0;

    // Spawn the fleet.  All daemons append their tagged stderr lines to one
    // shared vector, so the fleet log is interleaved in actual arrival order.
    let run_id = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let stderr_log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut stderr_readers = Vec::with_capacity(n);
    let mut fleet = Fleet {
        daemons: Vec::with_capacity(n),
    };
    for i in 0..n {
        let listen = match params.transport {
            DeployTransport::Tcp => "tcp:127.0.0.1:0".to_string(),
            DeployTransport::Unix => {
                let path = std::env::temp_dir().join(format!(
                    "dlrv-deploy-{}-{run_id}-{i}.sock",
                    std::process::id()
                ));
                format!("unix:{}", path.display())
            }
        };
        let (child, endpoint, reader) = spawn_daemon(binary, &listen, i, &stderr_log)?;
        stderr_readers.push(reader);
        let ep = Endpoint::parse(&endpoint).map_err(|e| format!("daemon endpoint: {e}"))?;
        let sock = connect_with_retry(&ep, Duration::from_secs(10))
            .map_err(|e| format!("connect control channel to {endpoint}: {e}"))?;
        let mut conn = FramedConn::new(sock);
        // The hello itself still travels as JSON (only the hot frame types have
        // binary bodies), so switching the connection before the handshake is
        // safe — the daemon learns the format from the hello it decodes first.
        conn.set_binary_wire(params.binary_wire);
        fleet.daemons.push(Daemon {
            child,
            endpoint,
            conn,
            inbox: VecDeque::new(),
            telemetry: Vec::new(),
        });
    }

    // Handshake: every hello goes out before any hello_ok is awaited, because
    // daemon i only answers once its whole peer mesh (which includes daemons > i)
    // is up.
    let peers: Vec<String> = fleet.daemons.iter().map(|d| d.endpoint.clone()).collect();
    for (i, daemon) in fleet.daemons.iter_mut().enumerate() {
        daemon.send(&WireMsg::Hello {
            process: i,
            n_processes: n,
            property: property_to_json(&config.property),
            options: options_to_json(&opts),
            initial_state,
            fault: params.fault,
            peers: peers.clone(),
            binary_wire: params.binary_wire,
        })?;
    }
    for (i, daemon) in fleet.daemons.iter_mut().enumerate() {
        match daemon.recv()? {
            WireMsg::HelloOk { process } if process == i => {}
            other => return Err(format!("daemon {i}: expected hello_ok, got {other:?}")),
        }
    }

    // Feed the trace in lockstep: one event, then drain the whole system.
    let started = Instant::now();
    let mut last_time = 0.0f64;
    for event in &events {
        last_time = last_time.max(event.time);
        let target = event.process;
        fleet.daemons[target].send(&WireMsg::Event {
            event: event.clone(),
        })?;
        barrier(&mut fleet)?;
    }

    // Sequential per-process termination at the global last timestamp, exactly
    // like `FeedSession::finish`.
    for i in 0..n {
        fleet.daemons[i].send(&WireMsg::Finish { time: last_time })?;
        match fleet.daemons[i].recv()? {
            WireMsg::FinishOk => {}
            other => return Err(format!("daemon {i}: expected finish_ok, got {other:?}")),
        }
        barrier(&mut fleet)?;
    }
    let wall_clock_secs = started.elapsed().as_secs_f64();

    // Collect reports, then shut the fleet down gracefully.
    let mut reports: Vec<DaemonReport> = Vec::with_capacity(n);
    for (i, daemon) in fleet.daemons.iter_mut().enumerate() {
        daemon.send(&WireMsg::Report)?;
        match daemon.recv()? {
            WireMsg::ReportOk(report) if report.process == i => reports.push(report),
            other => return Err(format!("daemon {i}: expected report_ok, got {other:?}")),
        }
    }
    // Every telemetry frame precedes `report_ok` on the control channel, so by
    // now each daemon's full timeline has been intercepted into its inbox path.
    let telemetry: Vec<Vec<DaemonTelemetry>> = fleet
        .daemons
        .iter_mut()
        .map(|d| std::mem::take(&mut d.telemetry))
        .collect();
    for (i, daemon) in fleet.daemons.iter_mut().enumerate() {
        daemon.send(&WireMsg::Shutdown)?;
        match daemon.recv()? {
            WireMsg::ShutdownOk => {}
            other => return Err(format!("daemon {i}: expected shutdown_ok, got {other:?}")),
        }
        let status = daemon
            .child
            .wait()
            .map_err(|e| format!("wait for daemon {i}: {e}"))?;
        if !status.success() {
            return Err(format!("daemon {i} exited with {status}"));
        }
    }
    fleet.daemons.clear();
    // The daemons exited, so the pipes are at EOF and the readers are done.
    for reader in stderr_readers {
        let _ = reader.join();
    }
    if let Some(dir) = std::env::var_os("DLRV_ARTIFACT_DIR") {
        let lines = stderr_log
            .lock()
            .map(|l| l.clone())
            .unwrap_or_default();
        if let Err(e) =
            write_run_artifacts(Path::new(&dir), params.transport, seed, &telemetry, &lines)
        {
            dlrv_obs::obs_warn!("deploy artifacts not written: {e}");
        }
    }

    // Fold into RunMetrics, the same shape every other runner produces.
    let per_monitor: Vec<_> = reports.iter().map(|r| r.metrics.clone()).collect();
    let monitor_messages: u64 = reports.iter().map(|r| r.logical_monitor_msgs).sum();
    for report in &reports {
        fault_stats.merge(&report.fault_stats);
    }
    let monitoring_end_time = per_monitor
        .iter()
        .map(|m| m.last_activity_time)
        .fold(report.program_end_time, f64::max);
    let mut metrics = RunMetrics::aggregate(
        &per_monitor,
        events.len(),
        report.program_messages,
        monitor_messages as usize,
        report.program_end_time,
        monitoring_end_time,
    );
    metrics.wall_clock_secs = wall_clock_secs;
    metrics.events_per_sec = if wall_clock_secs > 0.0 {
        events.len() as f64 / wall_clock_secs
    } else {
        0.0
    };
    // Largest single-daemon high-water mark: the fleet's per-process memory
    // peak, comparable to the in-process runners' whole-process figure.
    metrics.peak_rss_bytes = reports.iter().map(|r| r.peak_rss_bytes).max().unwrap_or(0);
    Ok(metrics)
}

/// Writes one deploy run's artifacts under `$DLRV_ARTIFACT_DIR`: a
/// `telemetry-daemon<i>.jsonl` timeline per daemon plus the interleaved fleet
/// stderr log.  Purely observational — failures are reported, never fatal.
fn write_run_artifacts(
    dir: &Path,
    transport: DeployTransport,
    seed: u64,
    telemetry: &[Vec<DaemonTelemetry>],
    stderr_lines: &[String],
) -> Result<(), String> {
    let run_dir = dir.join(format!("deploy-{}-seed{seed}", transport.name()));
    std::fs::create_dir_all(&run_dir)
        .map_err(|e| format!("create {}: {e}", run_dir.display()))?;
    for (i, samples) in telemetry.iter().enumerate() {
        let mut out = String::new();
        for sample in samples {
            out.push_str(&sample.to_json().to_string_compact());
            out.push('\n');
        }
        let path = run_dir.join(format!("telemetry-daemon{i}.jsonl"));
        std::fs::write(&path, out).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    let mut log = stderr_lines.join("\n");
    if !log.is_empty() {
        log.push('\n');
    }
    let path = run_dir.join("daemons.stderr.log");
    std::fs::write(&path, log).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(())
}

/// Polls every daemon's transport counters until the system is quiescent: the
/// send/receive matrix balances, nothing is pending, and two consecutive polls
/// agree (so counters sampled mid-flight cannot terminate the barrier early).
fn barrier(fleet: &mut Fleet) -> Result<(), String> {
    let deadline = Instant::now() + BARRIER_TIMEOUT;
    let mut previous: Option<Vec<DaemonStatus>> = None;
    loop {
        let mut statuses = Vec::with_capacity(fleet.daemons.len());
        for daemon in &mut fleet.daemons {
            daemon.send(&WireMsg::Status)?;
            match daemon.recv()? {
                WireMsg::StatusOk(status) => statuses.push(status),
                other => return Err(format!("expected status_ok, got {other:?}")),
            }
        }
        let n = statuses.len();
        let balanced = statuses.iter().all(|s| s.pending == 0)
            && (0..n).all(|i| {
                (0..n).all(|j| i == j || statuses[i].sent[j] == statuses[j].received[i])
            });
        if balanced && previous.as_ref() == Some(&statuses) {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "quiescence barrier timed out after {BARRIER_TIMEOUT:?}: {statuses:?}"
            ));
        }
        previous = Some(statuses);
        std::thread::sleep(Duration::from_micros(500));
    }
}
