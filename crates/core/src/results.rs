//! Machine-readable sweep results (`BENCH_results.json`).
//!
//! Every run of `experiments --target sweep --format json` emits one document in the
//! schema below, so the performance trajectory of the repository can be diffed
//! commit-by-commit.  The document is self-describing: each record carries the full
//! scenario (name, family, [`ExperimentConfig`], [`MonitorOptions`]) next to its
//! measured [`RunMetrics`], and [`sweep_from_json`] restores everything
//! field-for-field (floats use shortest round-trip formatting, see [`dlrv_json`]).
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "generator": "dlrv-experiments",
//!   "scenarios": [
//!     {
//!       "name": "paper-A-n2", "family": "paper", "description": "…",
//!       "config":  { property, n_processes, events_per_process, evt_mu, …,
//!                    seeds, arrival, topology },
//!       "options": { aggregate_tokens, dedup_global_views, prune_disjunctive },
//!       "avg":      { RunMetrics fields },
//!       "per_seed": [ { RunMetrics fields }, … ],
//!       "detected_verdicts": [ "true" | "false" | "unknown", … ]
//!     }, …
//!   ]
//! }
//! ```

use crate::deploy::{DeployParams, DeployTransport};
use crate::experiment::{ExperimentConfig, ExperimentResult};
use crate::fleet::FleetParams;
use crate::properties::PaperProperty;
use crate::scenario::{Scenario, ScenarioFamily, StreamParams};
use crate::spec::PropertySpec;
use dlrv_json::{object, Json, JsonError};
use dlrv_net::FaultSpec;
use dlrv_ltl::Verdict;
use dlrv_monitor::{verdict_from_name, verdict_name, MonitorOptions, RunMetrics};
use dlrv_trace::format::{arrival_from_json, arrival_to_json, topology_from_json, topology_to_json};
use std::collections::BTreeSet;

/// Version of the `BENCH_results.json` schema produced by [`sweep_to_json`].
pub const RESULTS_SCHEMA_VERSION: u64 = 1;

/// One parsed-back record of a sweep document: the scenario plus its measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// The scenario exactly as it was run.
    pub scenario: Scenario,
    /// Metric averages over the seeds.
    pub avg: RunMetrics,
    /// Per-seed metrics, in seed order.
    pub per_seed: Vec<RunMetrics>,
    /// Union of detected ⊤/⊥ verdicts over all seeds.
    pub detected_verdicts: BTreeSet<Verdict>,
}

/// Serializes a property spec: paper properties as their bare letter (the schema's
/// historical form, byte-identical for every pre-existing scenario), custom LTL
/// specs as a `{"name", "ltl"}` object.
pub fn property_to_json(spec: &PropertySpec) -> Json {
    match spec.ltl_source() {
        None => Json::from(spec.name()),
        Some(ltl) => object([
            ("name", Json::from(spec.name())),
            ("ltl", Json::from(ltl)),
        ]),
    }
}

/// Parses a property spec back from its [`property_to_json`] form.
pub fn property_from_json(v: &Json) -> Result<PropertySpec, JsonError> {
    match v {
        Json::Str(name) => PaperProperty::from_name(name)
            .map(PropertySpec::from)
            .ok_or_else(|| JsonError::msg(format!("unknown property `{name}`"))),
        _ => {
            let name = v.get("name")?.as_str()?;
            let ltl = v.get("ltl")?.as_str()?;
            PropertySpec::parse_named(name, ltl)
                .map_err(|e| JsonError::msg(format!("invalid property `{name}`: {e}")))
        }
    }
}

/// Serializes an experiment configuration (property by letter or LTL object, shapes
/// as tagged objects).
pub fn config_to_json(config: &ExperimentConfig) -> Json {
    object([
        ("property", property_to_json(&config.property)),
        ("n_processes", Json::from(config.n_processes)),
        ("events_per_process", Json::from(config.events_per_process)),
        ("evt_mu", Json::from(config.evt_mu)),
        ("evt_sigma", Json::from(config.evt_sigma)),
        ("comm_mu", Json::from(config.comm_mu)),
        ("comm_sigma", Json::from(config.comm_sigma)),
        ("seeds", Json::from(config.seeds.clone())),
        ("arrival", arrival_to_json(&config.arrival)),
        ("topology", topology_to_json(&config.topology)),
    ])
}

/// Parses an experiment configuration back from its [`config_to_json`] form.
pub fn config_from_json(v: &Json) -> Result<ExperimentConfig, JsonError> {
    let property = property_from_json(v.get("property")?)?;
    Ok(ExperimentConfig {
        property,
        n_processes: v.get("n_processes")?.as_usize()?,
        events_per_process: v.get("events_per_process")?.as_usize()?,
        evt_mu: v.get("evt_mu")?.as_f64()?,
        evt_sigma: v.get("evt_sigma")?.as_f64()?,
        comm_mu: match v.get("comm_mu")? {
            Json::Null => None,
            value => Some(value.as_f64()?),
        },
        comm_sigma: v.get("comm_sigma")?.as_f64()?,
        seeds: v
            .get("seeds")?
            .as_array()?
            .iter()
            .map(Json::as_u64)
            .collect::<Result<_, _>>()?,
        arrival: arrival_from_json(v.get("arrival")?)?,
        topology: topology_from_json(v.get("topology")?)?,
    })
}

/// Serializes the §4.3 optimization switches.
pub fn options_to_json(options: &MonitorOptions) -> Json {
    object([
        ("aggregate_tokens", Json::from(options.aggregate_tokens)),
        ("dedup_global_views", Json::from(options.dedup_global_views)),
        ("prune_disjunctive", Json::from(options.prune_disjunctive)),
        ("arena_recycling", Json::from(options.arena_recycling)),
    ])
}

/// Parses the optimization switches back.
pub fn options_from_json(v: &Json) -> Result<MonitorOptions, JsonError> {
    Ok(MonitorOptions {
        aggregate_tokens: v.get("aggregate_tokens")?.as_bool()?,
        dedup_global_views: v.get("dedup_global_views")?.as_bool()?,
        prune_disjunctive: v.get("prune_disjunctive")?.as_bool()?,
        // Arena recycling postdates the first documents; records written before it
        // ran with per-event allocation, so absence means `false`.
        arena_recycling: v.get_opt("arena_recycling")?.map_or(Ok(false), Json::as_bool)?,
    })
}

/// Serializes the streaming-engine sizing of a throughput scenario.
pub fn stream_params_to_json(params: &StreamParams) -> Json {
    object([
        ("n_sessions", Json::from(params.n_sessions)),
        ("n_shards", Json::from(params.n_shards)),
        ("mailbox_capacity", Json::from(params.mailbox_capacity)),
        ("batch_size", Json::from(params.batch_size)),
        ("binary_wire", Json::from(params.binary_wire)),
        ("use_rings", Json::from(params.use_rings)),
    ])
}

/// Parses the streaming-engine sizing back.
pub fn stream_params_from_json(v: &Json) -> Result<StreamParams, JsonError> {
    Ok(StreamParams {
        n_sessions: v.get("n_sessions")?.as_usize()?,
        n_shards: v.get("n_shards")?.as_usize()?,
        mailbox_capacity: v.get("mailbox_capacity")?.as_usize()?,
        batch_size: v.get("batch_size")?.as_usize()?,
        // The hot-path wire/mailbox switches postdate the first throughput
        // documents; records written before them ran JSON frames over
        // `sync_channel` mailboxes, so absence means `false`.
        binary_wire: v.get_opt("binary_wire")?.map_or(Ok(false), Json::as_bool)?,
        use_rings: v.get_opt("use_rings")?.map_or(Ok(false), Json::as_bool)?,
    })
}

/// Serializes the deployment parameters of a deploy scenario (the fault spec in
/// its [`FaultSpec::to_json`] object form).
pub fn deploy_params_to_json(params: &DeployParams) -> Json {
    object([
        ("transport", Json::from(params.transport.name())),
        (
            "fault",
            params.fault.as_ref().map_or(Json::Null, FaultSpec::to_json),
        ),
        ("binary_wire", Json::from(params.binary_wire)),
    ])
}

/// Parses the deployment parameters back.
pub fn deploy_params_from_json(v: &Json) -> Result<DeployParams, JsonError> {
    let name = v.get("transport")?.as_str()?;
    let transport = DeployTransport::from_name(name)
        .ok_or_else(|| JsonError::msg(format!("unknown deploy transport `{name}`")))?;
    Ok(DeployParams {
        transport,
        fault: match v.get("fault")? {
            Json::Null => None,
            spec => Some(FaultSpec::from_json(spec)?),
        },
        // Additive: deploy records written before the binary wire ran all-JSON.
        binary_wire: v.get_opt("binary_wire")?.map_or(Ok(false), Json::as_bool)?,
    })
}

/// Serializes the member list of a fleet scenario (each member in its
/// [`property_to_json`] form, in fleet order — the wire's property-id space).
pub fn fleet_params_to_json(params: &FleetParams) -> Json {
    object([(
        "properties",
        Json::Array(params.properties.iter().map(property_to_json).collect()),
    )])
}

/// Parses the fleet member list back.
pub fn fleet_params_from_json(v: &Json) -> Result<FleetParams, JsonError> {
    let properties = v
        .get("properties")?
        .as_array()?
        .iter()
        .map(property_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    if properties.is_empty() {
        return Err(JsonError::msg("fleet params need at least one property"));
    }
    Ok(FleetParams::new(properties))
}

fn verdicts_to_json(set: &BTreeSet<Verdict>) -> Json {
    Json::Array(set.iter().map(|&v| Json::from(verdict_name(v))).collect())
}

fn record_to_json(scenario: &Scenario, result: &ExperimentResult) -> Json {
    object([
        ("name", Json::from(scenario.name.as_str())),
        ("family", Json::from(scenario.family.name())),
        ("description", Json::from(scenario.description.as_str())),
        ("config", config_to_json(&scenario.config)),
        ("options", options_to_json(&scenario.options)),
        (
            "stream",
            scenario
                .stream
                .as_ref()
                .map_or(Json::Null, stream_params_to_json),
        ),
        (
            "deploy",
            scenario
                .deploy
                .as_ref()
                .map_or(Json::Null, deploy_params_to_json),
        ),
        (
            "fleet",
            scenario
                .fleet
                .as_ref()
                .map_or(Json::Null, fleet_params_to_json),
        ),
        ("avg", result.avg.to_json()),
        (
            "per_seed",
            Json::Array(result.per_seed.iter().map(RunMetrics::to_json).collect()),
        ),
        ("detected_verdicts", verdicts_to_json(&result.detected_verdicts)),
    ])
}

fn record_from_json(v: &Json) -> Result<ScenarioRecord, JsonError> {
    let family_name = v.get("family")?.as_str()?;
    let family = ScenarioFamily::from_name(family_name)
        .ok_or_else(|| JsonError::msg(format!("unknown scenario family `{family_name}`")))?;
    Ok(ScenarioRecord {
        scenario: Scenario {
            name: v.get("name")?.as_str()?.to_string(),
            description: v.get("description")?.as_str()?.to_string(),
            family,
            config: config_from_json(v.get("config")?)?,
            options: options_from_json(v.get("options")?)?,
            // Absent or null in documents written before the throughput family.
            stream: match v.get_opt("stream")? {
                None | Some(Json::Null) => None,
                Some(params) => Some(stream_params_from_json(params)?),
            },
            // Absent or null in documents written before the deploy family.
            deploy: match v.get_opt("deploy")? {
                None | Some(Json::Null) => None,
                Some(params) => Some(deploy_params_from_json(params)?),
            },
            // Absent or null in documents written before the fleet family.
            fleet: match v.get_opt("fleet")? {
                None | Some(Json::Null) => None,
                Some(params) => Some(fleet_params_from_json(params)?),
            },
        },
        avg: RunMetrics::from_json(v.get("avg")?)?,
        per_seed: v
            .get("per_seed")?
            .as_array()?
            .iter()
            .map(RunMetrics::from_json)
            .collect::<Result<_, _>>()?,
        detected_verdicts: v
            .get("detected_verdicts")?
            .as_array()?
            .iter()
            .map(|item| verdict_from_name(item.as_str()?))
            .collect::<Result<_, _>>()?,
    })
}

/// Builds the full sweep document from `(scenario, result)` pairs.
pub fn sweep_to_json(runs: &[(Scenario, ExperimentResult)]) -> Json {
    object([
        ("schema_version", Json::from(RESULTS_SCHEMA_VERSION)),
        ("generator", Json::from("dlrv-experiments")),
        (
            "scenarios",
            Json::Array(runs.iter().map(|(s, r)| record_to_json(s, r)).collect()),
        ),
    ])
}

/// Parses a sweep document produced by [`sweep_to_json`].
///
/// Rejects documents with a newer `schema_version` than this build understands.
pub fn sweep_from_json(v: &Json) -> Result<Vec<ScenarioRecord>, JsonError> {
    let version = v.get("schema_version")?.as_u64()?;
    if version > RESULTS_SCHEMA_VERSION {
        return Err(JsonError::msg(format!(
            "results schema version {version} is newer than supported {RESULTS_SCHEMA_VERSION}"
        )));
    }
    v.get("scenarios")?
        .as_array()?
        .iter()
        .map(record_from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioRegistry;
    use dlrv_trace::{ArrivalModel, CommTopology};

    fn small(name: &str) -> Scenario {
        let mut s = ScenarioRegistry::standard().get(name).expect(name).clone();
        s.config.events_per_process = 5;
        s.config.seeds = vec![1, 2];
        s
    }

    #[test]
    fn sweep_document_round_trips() {
        let scenarios = [small("paper-B-n2"), small("ring-B-n4")];
        let runs: Vec<_> = scenarios.iter().map(|s| (s.clone(), s.run())).collect();
        let text = sweep_to_json(&runs).to_string_pretty();
        let records = sweep_from_json(&Json::parse(&text).expect("parse")).expect("schema");
        assert_eq!(records.len(), runs.len());
        for (record, (scenario, result)) in records.iter().zip(&runs) {
            assert_eq!(&record.scenario, scenario);
            assert_eq!(record.avg, result.avg);
            assert_eq!(record.per_seed, result.per_seed);
            assert_eq!(record.detected_verdicts, result.detected_verdicts);
        }
    }

    #[test]
    fn config_round_trips_every_shape() {
        for config in [
            ExperimentConfig::paper_default(PaperProperty::A, 2),
            ExperimentConfig {
                comm_mu: None,
                ..ExperimentConfig::paper_default(PaperProperty::C, 4)
            },
            ExperimentConfig {
                arrival: ArrivalModel::Bursty {
                    burst_len: 4,
                    intra_scale: 0.2,
                    gap_scale: 3.0,
                },
                topology: CommTopology::Hotspot { hub: 1 },
                ..ExperimentConfig::paper_default(PaperProperty::F, 5)
            },
        ] {
            let text = config_to_json(&config).to_string_pretty();
            let back = config_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(config, back);
        }
    }

    #[test]
    fn throughput_records_round_trip_with_stream_params() {
        let mut scenario = ScenarioRegistry::standard()
            .get("throughput-B-s200-sh4")
            .expect("registered")
            .clone();
        scenario.config.events_per_process = 4;
        scenario.stream = Some(crate::scenario::StreamParams::sized(10, 2));
        let runs = vec![(scenario.clone(), scenario.run())];
        let text = sweep_to_json(&runs).to_string_pretty();
        let records = sweep_from_json(&Json::parse(&text).expect("parse")).expect("schema");
        assert_eq!(records[0].scenario, scenario);
        assert_eq!(records[0].avg.per_shard.len(), 2);
        assert_eq!(records[0].avg, runs[0].1.avg);
    }

    #[test]
    fn fleet_records_round_trip_with_members_and_metrics() {
        let mut scenario = ScenarioRegistry::standard()
            .get("fleet-AB-sh4")
            .expect("registered")
            .clone();
        scenario.config.events_per_process = 4;
        scenario.stream = Some(crate::scenario::StreamParams::sized(6, 2));
        let runs = vec![(scenario.clone(), scenario.run())];
        let text = sweep_to_json(&runs).to_string_pretty();
        let records = sweep_from_json(&Json::parse(&text).expect("parse")).expect("schema");
        assert_eq!(records[0].scenario, scenario);
        assert_eq!(records[0].avg, runs[0].1.avg);
        let fleet = records[0].scenario.fleet.as_ref().expect("fleet survives");
        assert_eq!(fleet.joined_name(), "A+B");
        assert_eq!(records[0].avg.fleet_size, 2);
        assert_eq!(records[0].avg.fleet_per_property.len(), 2);
    }

    #[test]
    fn options_round_trip() {
        let options = MonitorOptions {
            aggregate_tokens: false,
            ..MonitorOptions::default()
        };
        let back = options_from_json(&options_to_json(&options)).unwrap();
        assert_eq!(options, back);
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let doc = object([
            ("schema_version", Json::from(RESULTS_SCHEMA_VERSION + 1)),
            ("generator", Json::from("dlrv-experiments")),
            ("scenarios", Json::Array(vec![])),
        ]);
        let err = sweep_from_json(&doc).unwrap_err();
        assert!(err.message.contains("newer than supported"));
    }
}
