//! The BENCH report dashboard: renders a benchmark results document (plus its
//! git history) into a markdown report with per-family tables, §4.3 overhead
//! A/B deltas and hand-rolled SVG trend charts.
//!
//! Rendering is a pure function of the parsed records — no filesystem, no git,
//! no clock — so the markdown is byte-deterministic for a given input (pinned
//! by the `report_golden` integration test).  The `experiments --target
//! report` CLI collects the inputs (reads `BENCH_results.json`, walks its git
//! history with `git show`) and writes the rendered files to `--out-dir`;
//! everything it writes comes out of [`render_report`].
//!
//! Trend charts plot one line per scenario per family across the history
//! points (oldest → newest, the working-tree document last).  Monitor messages
//! are the plotted quantity: they are a deterministic function of the workload
//! and the algorithm, so a moving line means the *algorithm* changed — unlike
//! wall-clock quantities, which measure the machine the sweep happened to run
//! on.

use crate::results::ScenarioRecord;
use crate::scenario::ScenarioFamily;
use dlrv_monitor::RunMetrics;
use std::fmt::Write as _;

/// One historical snapshot of the benchmark document, oldest first; the last
/// point is conventionally the working-tree (`current`) document.
#[derive(Debug, Clone)]
pub struct TrendPoint {
    /// Axis label: an abbreviated commit hash, or `current`.
    pub label: String,
    /// The snapshot's parsed records.
    pub records: Vec<ScenarioRecord>,
}

/// Everything `--target report` writes: the markdown plus the SVG charts it
/// references (file name → body, relative to the markdown's directory).
#[derive(Debug, Clone)]
pub struct RenderedReport {
    /// The dashboard markdown (`REPORT.md`).
    pub markdown: String,
    /// `(relative file name, svg body)` pairs referenced from the markdown.
    pub svgs: Vec<(String, String)>,
}

/// Display order of the family sections (registry families, offline first).
const FAMILY_ORDER: [ScenarioFamily; 9] = [
    ScenarioFamily::Paper,
    ScenarioFamily::CommFrequency,
    ScenarioFamily::Extended,
    ScenarioFamily::Custom,
    ScenarioFamily::Overhead,
    ScenarioFamily::Throughput,
    ScenarioFamily::Hotpath,
    ScenarioFamily::Fleet,
    ScenarioFamily::Deploy,
];

/// A human-scaled byte count (`-` for zero = unmeasured).
fn fmt_rss(bytes: u64) -> String {
    if bytes == 0 {
        return "-".to_string();
    }
    let mib = bytes as f64 / (1024.0 * 1024.0);
    format!("{mib:.1} MiB")
}

/// The record's detected verdicts as the usual `⊤,⊥` symbol list (`-` if none).
fn fmt_verdicts(record: &ScenarioRecord) -> String {
    if record.detected_verdicts.is_empty() {
        return "-".to_string();
    }
    let symbols: Vec<&str> = record.detected_verdicts.iter().map(|v| v.symbol()).collect();
    symbols.join(",")
}

/// Throughput rounded to whole events/sec (`-` for zero = unmeasured).
fn fmt_rate(events_per_sec: f64) -> String {
    if events_per_sec <= 0.0 {
        "-".to_string()
    } else {
        format!("{events_per_sec:.0}")
    }
}

/// `Δ% = (off - on) / off` — the reduction the §4.3 suite achieves.
fn fmt_reduction(on: usize, off: usize) -> String {
    if off == 0 {
        "-".to_string()
    } else {
        let pct = (on as f64 - off as f64) / off as f64 * 100.0;
        format!("{:+.1}%", if pct == 0.0 { 0.0 } else { pct })
    }
}

/// One family's members, in document order.
fn family_members(
    records: &[ScenarioRecord],
    family: ScenarioFamily,
) -> Vec<&ScenarioRecord> {
    records.iter().filter(|r| r.scenario.family == family).collect()
}

/// The default per-family table: the offline sweep columns plus throughput and
/// the RSS high-water mark.
fn offline_table(out: &mut String, members: &[&ScenarioRecord]) {
    out.push_str(
        "| scenario | procs | events | mon.msgs | glob.views | delayed | delay%/GV \
         | events/sec | peak RSS | verdicts |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|---:|---|\n",
    );
    for r in members {
        let m = &r.avg;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {:.2} | {:.4} | {} | {} | {} |",
            r.scenario.name,
            r.scenario.config.n_processes,
            m.total_events,
            m.monitor_messages,
            m.total_global_views,
            m.avg_delayed_events,
            m.delay_time_pct_per_gv,
            fmt_rate(m.events_per_sec),
            fmt_rss(m.peak_rss_bytes),
            fmt_verdicts(r),
        );
    }
}

/// The streaming table: session/shard shape next to the measured rates.
fn throughput_table(out: &mut String, members: &[&ScenarioRecord]) {
    out.push_str(
        "| scenario | sessions | shards | events | events/sec | wall s | peak RSS | verdicts |\n\
         |---|---:|---:|---:|---:|---:|---:|---|\n",
    );
    for r in members {
        let m = &r.avg;
        let (sessions, shards) = r
            .scenario
            .stream
            .map_or((0, 0), |p| (p.n_sessions, p.n_shards));
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {:.3} | {} | {} |",
            r.scenario.name,
            sessions,
            shards,
            m.total_events,
            fmt_rate(m.events_per_sec),
            m.wall_clock_secs,
            fmt_rss(m.peak_rss_bytes),
            fmt_verdicts(r),
        );
    }
}

/// The §4.3 A/B table: `<root>-opts` vs `<root>-noopt` pairs with the message
/// and memory reduction the optimization suite achieves; unpaired members are
/// listed as single rows so a partial document drops nothing silently.
fn overhead_table(out: &mut String, members: &[&ScenarioRecord]) {
    out.push_str(
        "| property | procs | msgs (opt) | msgs (off) | Δmsgs | peak GV (opt) | peak GV (off) \
         | ΔGV | tokens (opt) | tokens (off) |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    let find = |name: &str| members.iter().find(|r| r.scenario.name == name);
    let mut printed: Vec<&str> = Vec::new();
    for r in members {
        let root = r
            .scenario
            .name
            .rsplit_once('-')
            .map(|(root, _)| root)
            .unwrap_or(r.scenario.name.as_str());
        if printed.contains(&root) {
            continue;
        }
        printed.push(root);
        let on = find(&format!("{root}-opts"));
        let off = find(&format!("{root}-noopt"));
        match (on, off) {
            (Some(r_on), Some(r_off)) => {
                let (a, b) = (&r_on.avg, &r_off.avg);
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                    r_on.scenario.config.property.name(),
                    r_on.scenario.config.n_processes,
                    a.monitor_messages,
                    b.monitor_messages,
                    fmt_reduction(a.monitor_messages, b.monitor_messages),
                    a.peak_global_views,
                    b.peak_global_views,
                    fmt_reduction(a.peak_global_views, b.peak_global_views),
                    a.monitor_tokens,
                    b.monitor_tokens,
                );
            }
            _ => {
                let r = on.or(off).expect("root derived from a present member");
                let _ = writeln!(
                    out,
                    "| {} | {} | {} (unpaired `{}`) | | | {} | | | {} | |",
                    r.scenario.config.property.name(),
                    r.scenario.config.n_processes,
                    r.avg.monitor_messages,
                    r.scenario.name,
                    r.avg.peak_global_views,
                    r.avg.monitor_tokens,
                );
            }
        }
    }
}

/// The fleet table: amortization of the shared pipeline across N properties.
/// `amort` is fleet wall clock over the solo-sum — below 1.0 means the fleet
/// pass is cheaper than running the members back to back; `marginal s/prop` is
/// the measured extra wall clock each added property costs beyond a solo run.
fn fleet_table(out: &mut String, members: &[&ScenarioRecord]) {
    out.push_str(
        "| scenario | props | shards | events | fleet wall s | solo sum s | amort \
         | marginal s/prop | events/sec | verdicts |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|---:|---|\n",
    );
    for r in members {
        let m = &r.avg;
        let shards = r.scenario.stream.map_or(0, |p| p.n_shards);
        let amort = if m.fleet_solo_wall_clock_secs > 0.0 {
            format!("{:.2}x", m.wall_clock_secs / m.fleet_solo_wall_clock_secs)
        } else {
            "-".to_string()
        };
        let per_property = m
            .fleet_per_property
            .iter()
            .map(|p| format!("{}:{}", p.property, p.verdict))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.3} | {:.3} | {} | {:.4} | {} | {} |",
            r.scenario.name,
            m.fleet_size,
            shards,
            m.total_events,
            m.wall_clock_secs,
            m.fleet_solo_wall_clock_secs,
            amort,
            m.fleet_marginal_cost_secs,
            fmt_rate(m.events_per_sec),
            if per_property.is_empty() { "-".to_string() } else { per_property },
        );
    }
}

/// The real-socket table: transport and fault spec next to the sweep columns.
fn deploy_table(out: &mut String, members: &[&ScenarioRecord]) {
    out.push_str(
        "| scenario | transport | fault | procs | events | mon.msgs | wall s | peak RSS \
         | verdicts |\n\
         |---|---|---|---:|---:|---:|---:|---:|---|\n",
    );
    for r in members {
        let m = &r.avg;
        let (transport, fault) = match &r.scenario.deploy {
            Some(p) => (
                p.transport.name().to_string(),
                p.fault.map(|f| f.to_string()).unwrap_or_else(|| "none".to_string()),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {:.3} | {} | {} |",
            r.scenario.name,
            transport,
            fault,
            r.scenario.config.n_processes,
            m.total_events,
            m.monitor_messages,
            m.wall_clock_secs,
            fmt_rss(m.peak_rss_bytes),
            fmt_verdicts(r),
        );
    }
}

/// Fixed line-color palette (cycled when a family has more scenarios).
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

/// Hand-rolled SVG line chart: one polyline per series over the shared x
/// labels; missing points (scenario absent from a snapshot) break the line.
fn trend_svg(title: &str, labels: &[String], series: &[(String, Vec<Option<f64>>)]) -> String {
    const W: f64 = 720.0;
    const H: f64 = 360.0;
    const ML: f64 = 60.0; // left margin (y labels)
    const MR: f64 = 180.0; // right margin (legend)
    const MT: f64 = 40.0;
    const MB: f64 = 50.0;
    let plot_w = W - ML - MR;
    let plot_h = H - MT - MB;
    let y_max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().flatten())
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1.0)
        * 1.05;
    let x = |i: usize| {
        if labels.len() <= 1 {
            ML + plot_w / 2.0
        } else {
            ML + plot_w * i as f64 / (labels.len() - 1) as f64
        }
    };
    let y = |v: f64| MT + plot_h * (1.0 - v / y_max);

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {W} {H}\" \
         font-family=\"monospace\" font-size=\"11\">"
    );
    let _ = writeln!(svg, "<rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>");
    let _ = writeln!(
        svg,
        "<text x=\"{ML}\" y=\"24\" font-size=\"14\" font-weight=\"bold\">{}</text>",
        xml_escape(title)
    );
    // Axes and horizontal gridlines with y labels.
    for tick in 0..=4 {
        let v = y_max * tick as f64 / 4.0;
        let yy = y(v);
        let _ = writeln!(
            svg,
            "<line x1=\"{ML}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\" \
             stroke=\"#ddd\"/><text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{v:.0}</text>",
            ML + plot_w,
            ML - 6.0,
            yy + 4.0,
        );
    }
    // X labels, slanted so commit hashes fit.
    for (i, label) in labels.iter().enumerate() {
        let xx = x(i);
        let _ = writeln!(
            svg,
            "<text x=\"{xx:.1}\" y=\"{:.1}\" text-anchor=\"end\" \
             transform=\"rotate(-30 {xx:.1} {:.1})\">{}</text>",
            H - MB + 16.0,
            H - MB + 16.0,
            xml_escape(label)
        );
    }
    // Series: polyline segments between present points, plus a dot per point so
    // singleton snapshots remain visible.
    for (s, (name, ys)) in series.iter().enumerate() {
        let color = PALETTE[s % PALETTE.len()];
        let mut segment: Vec<String> = Vec::new();
        let flush = |segment: &mut Vec<String>, svg: &mut String| {
            if segment.len() >= 2 {
                let _ = writeln!(
                    svg,
                    "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" \
                     stroke-width=\"1.5\"/>",
                    segment.join(" ")
                );
            }
            segment.clear();
        };
        for (i, point) in ys.iter().enumerate() {
            match point {
                Some(v) => {
                    let (xx, yy) = (x(i), y(*v));
                    segment.push(format!("{xx:.1},{yy:.1}"));
                    let _ = writeln!(
                        svg,
                        "<circle cx=\"{xx:.1}\" cy=\"{yy:.1}\" r=\"2.5\" fill=\"{color}\"/>"
                    );
                }
                None => flush(&mut segment, &mut svg),
            }
        }
        flush(&mut segment, &mut svg);
        let ly = MT + 14.0 * s as f64;
        let _ = writeln!(
            svg,
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            W - MR + 10.0,
            ly,
            W - MR + 26.0,
            ly + 9.0,
            xml_escape(name)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Minimal XML text escaping for the hand-rolled SVG.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// The per-family trend chart: one line per scenario, monitor messages over
/// the history points.  `None` when fewer than two points mention the family.
fn family_trend(family: ScenarioFamily, history: &[TrendPoint]) -> Option<(String, String)> {
    let labels: Vec<String> = history.iter().map(|p| p.label.clone()).collect();
    if labels.len() < 2 {
        return None;
    }
    // Scenario names in first-seen order across the whole history.
    let mut names: Vec<String> = Vec::new();
    for point in history {
        for r in family_members(&point.records, family) {
            if !names.contains(&r.scenario.name) {
                names.push(r.scenario.name.clone());
            }
        }
    }
    if names.is_empty() {
        return None;
    }
    let series: Vec<(String, Vec<Option<f64>>)> = names
        .iter()
        .map(|name| {
            let ys: Vec<Option<f64>> = history
                .iter()
                .map(|point| {
                    point
                        .records
                        .iter()
                        .find(|r| &r.scenario.name == name)
                        .map(|r| r.avg.monitor_messages as f64)
                })
                .collect();
            (name.clone(), ys)
        })
        .collect();
    let file = format!("svg/trend-{}.svg", family.name());
    let svg = trend_svg(
        &format!("{} — monitor messages per snapshot", family.name()),
        &labels,
        &series,
    );
    Some((file, svg))
}

/// Sums a quantity over every record of a snapshot.
fn total_over(records: &[ScenarioRecord], f: impl Fn(&RunMetrics) -> usize) -> usize {
    records.iter().map(|r| f(&r.avg)).sum()
}

/// Renders the dashboard: per-family tables of `current`, overhead A/B deltas,
/// and (when `history` has at least two points) per-family trend charts.
///
/// Pure: the output is a deterministic function of the inputs.
pub fn render_report(current: &[ScenarioRecord], history: &[TrendPoint]) -> RenderedReport {
    let mut out = String::new();
    let mut svgs: Vec<(String, String)> = Vec::new();

    out.push_str("# DLRV benchmark report\n\n");
    let families: Vec<&ScenarioFamily> = FAMILY_ORDER
        .iter()
        .filter(|&&f| current.iter().any(|r| r.scenario.family == f))
        .collect();
    let _ = writeln!(
        out,
        "{} scenarios across {} families ({}); {} events monitored, {} monitoring \
         messages exchanged in total.",
        current.len(),
        families.len(),
        families.iter().map(|f| f.name()).collect::<Vec<_>>().join(", "),
        total_over(current, |m| m.total_events),
        total_over(current, |m| m.monitor_messages),
    );
    let _ = writeln!(
        out,
        "\nHistory: {} snapshot(s){}.",
        history.len(),
        if history.len() < 2 {
            " — trend charts need at least two, rerun after the next benchmark commit"
        } else {
            ""
        }
    );

    for &&family in &families {
        let members = family_members(current, family);
        let _ = writeln!(out, "\n## {} ({} scenarios)\n", family.name(), members.len());
        match family {
            // The hotpath ablation is measured by the same streaming engine, so
            // it shares the throughput table shape (rates, stalls, shards).
            ScenarioFamily::Throughput | ScenarioFamily::Hotpath => {
                throughput_table(&mut out, &members)
            }
            ScenarioFamily::Overhead => overhead_table(&mut out, &members),
            ScenarioFamily::Fleet => fleet_table(&mut out, &members),
            ScenarioFamily::Deploy => deploy_table(&mut out, &members),
            _ => offline_table(&mut out, &members),
        }
        if let Some((file, svg)) = family_trend(family, history) {
            let _ = writeln!(out, "\n![{} trend]({file})", family.name());
            svgs.push((file, svg));
        }
    }

    out.push_str(
        "\n## Monitor automata\n\nPer-scenario LTL₃ monitor automata are rendered as \
         Graphviz DOT under `dot/` (one file per distinct property × process count).\n",
    );
    RenderedReport { markdown: out, svgs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::properties::PaperProperty;
    use crate::scenario::Scenario;
    use dlrv_monitor::MonitorOptions;

    fn record(name: &str, family: ScenarioFamily, msgs: usize) -> ScenarioRecord {
        let mut avg = RunMetrics {
            n_processes: 3,
            total_events: 60,
            monitor_messages: msgs,
            total_global_views: 120,
            peak_global_views: 9,
            monitor_tokens: msgs * 2,
            events_per_sec: 1000.0,
            ..RunMetrics::default()
        };
        avg.detected_final_verdicts.insert(crate::dlrv_ltl::Verdict::True);
        ScenarioRecord {
            scenario: Scenario {
                name: name.to_string(),
                description: String::new(),
                family,
                config: ExperimentConfig::paper_default(PaperProperty::C, 3),
                options: MonitorOptions::default(),
                stream: None,
                deploy: None,
                fleet: None,
            },
            detected_verdicts: avg.detected_final_verdicts.clone(),
            per_seed: vec![avg.clone()],
            avg,
        }
    }

    #[test]
    fn report_covers_every_family_present() {
        let current = vec![
            record("paper-C-n3", ScenarioFamily::Paper, 100),
            record("overhead-C-opts", ScenarioFamily::Overhead, 80),
            record("overhead-C-noopt", ScenarioFamily::Overhead, 160),
        ];
        let report = render_report(&current, &[]);
        assert!(report.markdown.contains("## paper (1 scenarios)"));
        assert!(report.markdown.contains("## overhead (2 scenarios)"));
        // The A/B pair printed once, with a -50% message reduction.
        assert!(report.markdown.contains("-50.0%"), "{}", report.markdown);
        // No history → no charts.
        assert!(report.svgs.is_empty());
    }

    #[test]
    fn two_snapshots_produce_a_trend_chart_per_family() {
        let snap = |label: &str, msgs| TrendPoint {
            label: label.to_string(),
            records: vec![record("paper-C-n3", ScenarioFamily::Paper, msgs)],
        };
        let history = [snap("abc1234", 90), snap("current", 100)];
        let report = render_report(&history[1].records, &history);
        assert_eq!(report.svgs.len(), 1);
        let (file, svg) = &report.svgs[0];
        assert_eq!(file, "svg/trend-paper.svg");
        assert!(svg.contains("<polyline"), "two points must draw a line");
        assert!(svg.contains("paper-C-n3"));
        assert!(report.markdown.contains("![paper trend](svg/trend-paper.svg)"));
    }

    #[test]
    fn fleet_family_renders_the_amortization_table() {
        use crate::scenario::StreamParams;
        use dlrv_monitor::FleetPropertyMetrics;
        let mut r = record("fleet-AB-sh4", ScenarioFamily::Fleet, 40);
        r.scenario.stream = Some(StreamParams::sized(100, 4));
        r.avg.wall_clock_secs = 0.30;
        r.avg.fleet_size = 2;
        r.avg.fleet_solo_wall_clock_secs = 0.50;
        r.avg.fleet_marginal_cost_secs = 0.05;
        r.avg.fleet_per_property = vec![
            FleetPropertyMetrics { property: "A".to_string(), verdict: "true".to_string(), ..FleetPropertyMetrics::default() },
            FleetPropertyMetrics { property: "B".to_string(), verdict: "unknown".to_string(), ..FleetPropertyMetrics::default() },
        ];
        let report = render_report(&[r], &[]);
        assert!(report.markdown.contains("## fleet (1 scenarios)"), "{}", report.markdown);
        assert!(report.markdown.contains("marginal s/prop"));
        // 0.30 / 0.50 → fleet runs at 0.60x the cost of the solo runs.
        assert!(report.markdown.contains("0.60x"), "{}", report.markdown);
        assert!(report.markdown.contains("A:true B:unknown"), "{}", report.markdown);
    }

    #[test]
    fn rendering_is_deterministic() {
        let current = vec![record("paper-C-n3", ScenarioFamily::Paper, 100)];
        let a = render_report(&current, &[]);
        let b = render_report(&current, &[]);
        assert_eq!(a.markdown, b.markdown);
    }
}
