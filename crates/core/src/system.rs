//! The high-level public API: build a monitored distributed system, run it, and read
//! the verdicts.
//!
//! [`MonitoredSystem`] is the entry point a downstream user would reach for: give it a
//! number of processes, an LTL property (as text or as a [`Formula`]) and a workload,
//! then call [`MonitoredSystem::run`] to execute the program with decentralized
//! monitors attached and obtain a [`MonitoringOutcome`] with verdicts, metrics and the
//! recorded computation (which can additionally be checked against the lattice oracle).

use dlrv_automaton::MonitorAutomaton;
use dlrv_distsim::{initial_global_state, run_simulation, SimConfig};
use dlrv_ltl::{parse, Assignment, AtomRegistry, Formula, ParseError, Verdict};
use dlrv_monitor::{DecentralizedMonitor, MonitorOptions, RunMetrics};
use dlrv_trace::{generate_workload, Workload, WorkloadConfig};
use dlrv_vclock::{oracle_evaluate, Computation, Lattice};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Builder for a monitored distributed system.
#[derive(Debug, Clone)]
pub struct MonitoredSystem {
    n_processes: usize,
    registry: AtomRegistry,
    formula: Option<Formula>,
    workload: Option<Workload>,
    sim_config: SimConfig,
    options: MonitorOptions,
    initial_gstate: Assignment,
}

/// The result of running a monitored system.
#[derive(Debug)]
pub struct MonitoringOutcome {
    /// Union over all monitors of the ⊤/⊥ verdicts detected at runtime.
    pub detected_verdicts: BTreeSet<Verdict>,
    /// Union over all monitors of the verdicts their global views consider possible.
    pub possible_verdicts: BTreeSet<Verdict>,
    /// Aggregated run metrics (messages, delay, global views).
    pub metrics: RunMetrics,
    /// The recorded computation (usable with the lattice oracle).
    pub computation: Computation,
    /// The synthesized monitor automaton.
    pub automaton: Arc<MonitorAutomaton>,
    /// The atom registry.
    pub registry: Arc<AtomRegistry>,
}

impl MonitoringOutcome {
    /// True when some monitor observed a violation (⊥).
    pub fn violation_detected(&self) -> bool {
        self.detected_verdicts.contains(&Verdict::False)
    }

    /// True when some monitor observed satisfaction (⊤).
    pub fn satisfaction_detected(&self) -> bool {
        self.detected_verdicts.contains(&Verdict::True)
    }

    /// Runs the centralized lattice oracle over the recorded computation and returns
    /// its verdict set at the final cut.
    ///
    /// The lattice can be exponential in the number of processes; use on small runs.
    pub fn oracle_verdicts(&self) -> BTreeSet<Verdict> {
        let lattice = Lattice::build(&self.computation);
        oracle_evaluate(&self.computation, &lattice, &self.automaton, &self.registry)
            .final_verdicts
    }
}

impl MonitoredSystem {
    /// Creates a system of `n_processes` processes, each owning propositions
    /// `P<i>.p` and `P<i>.q`.
    pub fn new(n_processes: usize) -> Self {
        let mut registry = AtomRegistry::new();
        for i in 0..n_processes {
            registry.intern(&format!("P{i}.p"), i);
            registry.intern(&format!("P{i}.q"), i);
        }
        MonitoredSystem {
            n_processes,
            registry,
            formula: None,
            workload: None,
            sim_config: SimConfig::default(),
            options: MonitorOptions::default(),
            initial_gstate: Assignment::ALL_FALSE,
        }
    }

    /// Number of processes.
    pub fn n_processes(&self) -> usize {
        self.n_processes
    }

    /// Sets the monitored property from LTL text, e.g.
    /// `"G (P0.p -> F (P1.p && P2.p))"`.
    pub fn property(mut self, ltl: &str) -> Result<Self, ParseError> {
        let formula = parse(ltl, &mut self.registry)?;
        self.formula = Some(formula);
        Ok(self)
    }

    /// Sets the monitored property from an already-built formula (its atoms must have
    /// been interned in [`MonitoredSystem::registry_mut`]).
    pub fn property_formula(mut self, formula: Formula) -> Self {
        self.formula = Some(formula);
        self
    }

    /// Mutable access to the atom registry (for building formulas programmatically).
    pub fn registry_mut(&mut self) -> &mut AtomRegistry {
        &mut self.registry
    }

    /// Sets the workload explicitly.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Generates a workload from `config` (overriding its process count).
    pub fn generate_workload(mut self, mut config: WorkloadConfig) -> Self {
        config.n_processes = self.n_processes;
        self.workload = Some(generate_workload(&config));
        self
    }

    /// Overrides the simulator latencies.
    pub fn sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// Overrides the monitor optimization switches.
    pub fn monitor_options(mut self, options: MonitorOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the system on the discrete-event simulator with decentralized monitors.
    ///
    /// Panics if no property was set.  A default paper-style workload is generated if
    /// none was provided.
    pub fn run(self) -> MonitoringOutcome {
        let formula = self.formula.expect("a property must be set before running");
        let workload = self.workload.unwrap_or_else(|| {
            generate_workload(&WorkloadConfig {
                n_processes: self.n_processes,
                ..WorkloadConfig::default()
            })
        });
        let automaton = Arc::new(MonitorAutomaton::synthesize(&formula, &self.registry));
        let registry = Arc::new(self.registry);
        let n = self.n_processes;
        let opts = self.options;
        let initial = if self.initial_gstate == Assignment::ALL_FALSE {
            initial_global_state(&workload, &registry)
        } else {
            self.initial_gstate
        };

        let report = run_simulation(&workload, &registry, &self.sim_config, |i| {
            DecentralizedMonitor::new(i, n, automaton.clone(), registry.clone(), initial, opts)
        });

        let per_monitor: Vec<_> = report.monitors.iter().map(|m| m.metrics()).collect();
        let metrics = RunMetrics::aggregate(
            &per_monitor,
            report.program_events,
            report.program_messages,
            report.monitor_messages,
            report.program_end_time,
            report.monitoring_end_time,
        );
        let mut detected = BTreeSet::new();
        let mut possible = BTreeSet::new();
        for m in &report.monitors {
            detected.extend(m.detected_final_verdicts().iter().copied());
            possible.extend(m.possible_verdicts());
        }
        MonitoringOutcome {
            detected_verdicts: detected,
            possible_verdicts: possible,
            metrics,
            computation: report.computation,
            automaton,
            registry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_end_to_end_reachability() {
        let outcome = MonitoredSystem::new(3)
            .property("F (P0.p && P1.p && P2.p)")
            .expect("valid LTL")
            .generate_workload(WorkloadConfig {
                events_per_process: 8,
                seed: 7,
                ..WorkloadConfig::default()
            })
            .run();
        // The workload's goal tail forces all p true, so satisfaction is detected.
        assert!(outcome.satisfaction_detected());
        assert!(outcome.metrics.total_events > 0);
        assert!(outcome.computation.n_events() > 0);
    }

    #[test]
    fn invalid_property_is_rejected() {
        assert!(MonitoredSystem::new(2).property("G (P0.p &&").is_err());
    }

    #[test]
    fn outcome_oracle_agrees_on_satisfaction() {
        let outcome = MonitoredSystem::new(2)
            .property("F (P0.p && P1.p)")
            .unwrap()
            .generate_workload(WorkloadConfig {
                events_per_process: 5,
                seed: 3,
                ..WorkloadConfig::default()
            })
            .run();
        let oracle = outcome.oracle_verdicts();
        assert!(oracle.contains(&Verdict::True));
        assert!(outcome.satisfaction_detected());
    }
}
