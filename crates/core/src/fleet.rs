//! The fleet runner: N properties monitored in one pass over a shared event
//! stream, with the marginal cost of each added property measured against solo
//! baselines.
//!
//! One fleet run works end-to-end over the same wire path as the throughput
//! family, but instead of one property per session it monitors the whole fleet
//! per session:
//!
//! 1. Every member property is compiled into one **shared atom registry**
//!    ([`compile_fleet`] via [`PropertySpec::build_in`]), so all members
//!    interpret the same event assignments; each member keeps its own
//!    synthesized automaton.
//! 2. Per seed, session workloads are generated and encoded into one framed
//!    byte stream — exactly the throughput pipeline.
//! 3. **Solo baselines**: the byte stream is pumped through a fresh runtime
//!    once per member, each time monitoring only that member.  The summed wall
//!    clock is the "N independent deployments" cost the fleet amortizes.
//! 4. **The fleet run**: the same bytes are pumped once with a fleet
//!    [`SessionSpec`] — each event is decoded once, its clock interned once,
//!    and outbound tokens of all members share batched monitoring messages
//!    (see `docs/FLEET.md`).
//! 5. The fleet report is folded into [`RunMetrics`] with the fleet fields
//!    filled in: `fleet_size`, the summed solo wall clock, the measured
//!    marginal cost per added property, and a per-property metrics slice.
//!
//! Debug builds additionally assert, session by session, that every member's
//! fleet verdicts and token counts equal its solo baseline — the
//! `fleet_equivalence` integration test pins the same property across shard
//! counts and every optimization combination.

use crate::experiment::{average_metrics, ExperimentConfig, ExperimentResult};
use crate::scenario::StreamParams;
use crate::spec::{PropertySpec, MAX_SPEC_ATOMS};
use dlrv_automaton::MonitorAutomaton;
use dlrv_distsim::{initial_global_state, run_simulation, NullMonitor, SimConfig};
use dlrv_ltl::AtomRegistry;
use dlrv_monitor::{
    timestamp_order, verdict_name, FleetPropertyMetrics, MonitorOptions, RunMetrics,
};
use dlrv_stream::{
    encode_stream, encode_stream_binary, interleave_sessions, FleetMemberSpec, ReaderSource,
    SessionSpec, SessionStream, ShardedRuntime, StreamConfig, StreamReport,
};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// The fleet of properties a fleet scenario monitors in one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetParams {
    /// The monitored properties in fleet-member order; the property id carried
    /// by every wire token indexes into this list.  The first member is the
    /// *lead*: the workload generator shapes traces (initial channel values,
    /// goal tail) for it, exactly as `config.property` does elsewhere.
    pub properties: Vec<PropertySpec>,
}

impl FleetParams {
    /// A fleet over the given properties (at least one).
    pub fn new(properties: Vec<PropertySpec>) -> FleetParams {
        assert!(!properties.is_empty(), "a fleet needs at least one property");
        FleetParams { properties }
    }

    /// The fleet's display name: member names joined with `+` (`"A+B+C"`).
    pub fn joined_name(&self) -> String {
        self.properties
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Number of member properties.
    pub fn len(&self) -> usize {
        self.properties.len()
    }

    /// True when the fleet has no members (never constructible via [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.properties.is_empty()
    }
}

/// One fleet member compiled against the fleet's shared registry.
pub struct CompiledFleetMember {
    /// The member's display name (paper letter or custom spec name).
    pub name: String,
    /// The member's automaton, synthesized over the **shared** atom space.
    pub automaton: Arc<MonitorAutomaton>,
}

/// Compiles every member property into one shared atom registry.
///
/// Atom names dedup on intern (`P0.p` means the same bit to every member), so
/// the fleet's monitors can all interpret the assignments of one decoded event.
/// The combined registry must stay within [`MAX_SPEC_ATOMS`] — the same
/// synthesis ceiling a single wide property has.
pub fn compile_fleet(
    fleet: &FleetParams,
    n_processes: usize,
) -> (Arc<AtomRegistry>, Vec<CompiledFleetMember>) {
    let mut reg = AtomRegistry::new();
    let formulas: Vec<_> = fleet
        .properties
        .iter()
        .map(|spec| (spec.name().to_string(), spec.build_in(&mut reg, n_processes)))
        .collect();
    assert!(
        reg.len() <= MAX_SPEC_ATOMS,
        "fleet `{}` uses {} distinct atoms combined; the synthesis ceiling is {}",
        fleet.joined_name(),
        reg.len(),
        MAX_SPEC_ATOMS
    );
    let registry = Arc::new(reg);
    let members = formulas
        .into_iter()
        .map(|(name, formula)| CompiledFleetMember {
            name,
            automaton: Arc::new(MonitorAutomaton::synthesize(&formula, &registry)),
        })
        .collect();
    (registry, members)
}

/// Runs the fleet over `params.n_sessions` concurrent sessions, once per seed in
/// `config.seeds`, and averages the metrics like every other runner.
///
/// `config.property` should be the fleet's lead member (it shapes the workload);
/// the fleet itself comes from `fleet.properties`.
pub fn run_fleet(
    config: &ExperimentConfig,
    params: &StreamParams,
    fleet: &FleetParams,
    opts: MonitorOptions,
) -> ExperimentResult {
    let (registry, members) = compile_fleet(fleet, config.n_processes);

    let per_seed: Vec<RunMetrics> = config
        .seeds
        .iter()
        .map(|&seed| run_once(config, params, fleet, opts, seed, &registry, &members))
        .collect();

    let mut detected = BTreeSet::new();
    for metrics in &per_seed {
        detected.extend(metrics.detected_final_verdicts.iter().copied());
    }
    ExperimentResult {
        config: config.clone(),
        avg: average_metrics(&per_seed),
        per_seed,
        detected_verdicts: detected,
    }
}

/// Derives the workload seed of one session from the run seed (the throughput
/// runner's mixing, duplicated so the two families stay independently tweakable).
fn session_seed(run_seed: u64, session: u64) -> u64 {
    run_seed.wrapping_mul(0x100_0003).wrapping_add(session).wrapping_add(1)
}

/// Pumps `bytes` through a fresh sharded runtime; `open_spec` builds the
/// per-session spec.  Returns the shutdown report and the measured wall clock.
fn pump_stream(
    params: &StreamParams,
    bytes: &[u8],
    mut open_spec: impl FnMut(&dlrv_stream::OpenRequest) -> Arc<SessionSpec>,
) -> (StreamReport, f64) {
    let started = Instant::now();
    let runtime = ShardedRuntime::start(StreamConfig {
        n_shards: params.n_shards,
        mailbox_capacity: params.mailbox_capacity,
        batch_size: params.batch_size,
        use_rings: params.use_rings,
    });
    let mut source = ReaderSource::new(bytes);
    runtime
        .pump(&mut source, &mut |open| Ok(open_spec(open)))
        .expect("a freshly encoded stream must decode");
    let report = runtime.shutdown();
    (report, started.elapsed().as_secs_f64())
}

/// One fleet run: generate the shared workloads, measure each member's solo
/// baseline over the same bytes, run the fleet once, fold in the fleet metrics.
fn run_once(
    config: &ExperimentConfig,
    params: &StreamParams,
    fleet: &FleetParams,
    opts: MonitorOptions,
    seed: u64,
    registry: &Arc<AtomRegistry>,
    members: &[CompiledFleetMember],
) -> RunMetrics {
    // Phase 1: workload generation against the shared registry — one event
    // stream that every member (and every solo baseline) consumes verbatim.
    let mut inputs = Vec::with_capacity(params.n_sessions);
    let mut program_messages = 0usize;
    let mut program_time = 0.0f64;
    for s in 0..params.n_sessions {
        let workload = generate_workload_for(config, session_seed(seed, s as u64));
        let report = run_simulation(&workload, registry, &SimConfig::default(), |_| {
            NullMonitor::default()
        });
        program_messages += report.program_messages;
        program_time = program_time.max(report.program_end_time);
        let events = timestamp_order(&report.computation)
            .into_iter()
            .map(|(_, p, sn)| report.computation.events[p][(sn - 1) as usize].clone())
            .collect();
        inputs.push(SessionStream {
            session: s as u64,
            property: fleet.joined_name(),
            n_processes: config.n_processes,
            initial_state: initial_global_state(&workload, registry).0,
            events,
        });
    }

    // Phase 2: one canonical wire stream shared by the fleet run and every solo
    // baseline — the bytes, and therefore the decode work, are identical.
    let records = interleave_sessions(&inputs);
    let bytes = if params.binary_wire {
        encode_stream_binary(&records)
    } else {
        encode_stream(&records)
    };

    // Phase 3: the fleet run first (it pays any first-run warmup, keeping the
    // amortization claim conservative), then one solo baseline per member.
    let (fleet_report, wall_clock_secs) = pump_stream(params, &bytes, |open| {
        Arc::new(SessionSpec {
            n_processes: open.n_processes,
            automaton: members[0].automaton.clone(),
            registry: registry.clone(),
            initial_state: open.initial_state,
            options: opts,
            fleet: members
                .iter()
                .map(|m| FleetMemberSpec {
                    property: m.name.clone(),
                    automaton: m.automaton.clone(),
                    registry: registry.clone(),
                    initial_state: open.initial_state,
                })
                .collect(),
        })
    });

    let mut solo_wall_clock = 0.0f64;
    let mut solo_reports = Vec::with_capacity(members.len());
    for member in members {
        let (report, secs) = pump_stream(params, &bytes, |open| {
            Arc::new(SessionSpec {
                n_processes: open.n_processes,
                automaton: member.automaton.clone(),
                registry: registry.clone(),
                initial_state: open.initial_state,
                options: opts,
                fleet: Vec::new(),
            })
        });
        solo_wall_clock += secs;
        solo_reports.push(report);
    }

    // Fleet soundness guard: member for member, session for session, the fleet
    // must report exactly the solo verdicts and token counts.  The release-mode
    // pin lives in `tests/fleet_equivalence.rs`.
    #[cfg(debug_assertions)]
    for (k, solo) in solo_reports.iter().enumerate() {
        for (session, outcome) in &solo.sessions {
            let fleet_outcome = &fleet_report.sessions[session].per_property[k];
            debug_assert_eq!(
                outcome.detected_verdicts, fleet_outcome.detected_verdicts,
                "fleet member {k} diverged from its solo run in session {session}"
            );
            debug_assert_eq!(
                outcome.monitor_tokens, fleet_outcome.monitor_tokens,
                "fleet member {k} sent different tokens than its solo run in session {session}"
            );
        }
    }

    // Phase 4: fold the *fleet* report into RunMetrics (the solos only
    // contribute their wall clock) and attach the per-property slice.
    debug_assert_eq!(fleet_report.sessions.len(), params.n_sessions);
    let n = members.len();
    let solo_single = solo_wall_clock / n as f64;
    let mut metrics = RunMetrics {
        n_processes: config.n_processes,
        total_events: fleet_report.total_events,
        program_messages,
        program_time,
        wall_clock_secs,
        events_per_sec: if wall_clock_secs > 0.0 {
            fleet_report.total_events as f64 / wall_clock_secs
        } else {
            0.0
        },
        per_shard: fleet_report.per_shard.clone(),
        peak_rss_bytes: dlrv_obs::peak_rss_bytes().unwrap_or(0),
        fleet_size: n,
        fleet_solo_wall_clock_secs: solo_wall_clock,
        fleet_marginal_cost_secs: if n > 1 {
            ((wall_clock_secs - solo_single) / (n - 1) as f64).max(0.0)
        } else {
            0.0
        },
        ..RunMetrics::default()
    };
    let mut per_property = vec![FleetPropertyMetrics::default(); n];
    for (k, member) in members.iter().enumerate() {
        per_property[k].property = member.name.clone();
    }
    for outcome in fleet_report.sessions.values() {
        metrics.monitor_messages += outcome.monitor_messages;
        metrics.monitor_tokens += outcome.monitor_tokens;
        metrics.total_global_views += outcome.global_views;
        metrics.peak_global_views += outcome.peak_global_views;
        metrics
            .detected_final_verdicts
            .extend(outcome.detected_verdicts.iter().copied());
        metrics
            .possible_verdicts
            .extend(outcome.possible_verdicts.iter().copied());
        for (k, slice) in outcome.per_property.iter().enumerate() {
            let agg = &mut per_property[k];
            agg.monitor_tokens += slice.monitor_tokens;
            agg.global_views += slice.global_views;
            agg.peak_global_views += slice.peak_global_views;
            agg.detected_final_verdicts
                .extend(slice.detected_verdicts.iter().copied());
            agg.possible_verdicts
                .extend(slice.possible_verdicts.iter().copied());
        }
    }
    for agg in &mut per_property {
        agg.verdict = verdict_name(combined_of(&agg.detected_final_verdicts)).to_string();
    }
    metrics.fleet_per_property = per_property;
    metrics
}

/// The combined verdict of a detected set (False dominates, then True).
fn combined_of(detected: &BTreeSet<dlrv_ltl::Verdict>) -> dlrv_ltl::Verdict {
    if detected.contains(&dlrv_ltl::Verdict::False) {
        dlrv_ltl::Verdict::False
    } else if detected.contains(&dlrv_ltl::Verdict::True) {
        dlrv_ltl::Verdict::True
    } else {
        dlrv_ltl::Verdict::Unknown
    }
}

/// Generates one session's workload from the experiment config (lead property's
/// initial channels, the standard goal tail).
fn generate_workload_for(config: &ExperimentConfig, seed: u64) -> dlrv_trace::Workload {
    dlrv_trace::generate_workload(&config.workload_config(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::PaperProperty;

    fn small_fleet_config(lead: PaperProperty) -> ExperimentConfig {
        ExperimentConfig {
            events_per_process: 5,
            seeds: vec![1],
            ..ExperimentConfig::paper_default(lead, 2)
        }
    }

    fn paper_fleet(letters: &[PaperProperty]) -> FleetParams {
        FleetParams::new(letters.iter().map(|&p| PropertySpec::from(p)).collect())
    }

    #[test]
    fn fleet_compilation_shares_the_atom_space() {
        let fleet = paper_fleet(&[PaperProperty::A, PaperProperty::D]);
        let (registry, members) = compile_fleet(&fleet, 3);
        // A uses P0..2.p; D adds the q side.  Shared: 6 atoms, not 3 + 6.
        assert_eq!(registry.len(), 6);
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].name, "A");
        assert_eq!(members[1].name, "D");
    }

    #[test]
    fn fleet_run_produces_fleet_metrics() {
        let fleet = paper_fleet(&[PaperProperty::B, PaperProperty::C]);
        let params = StreamParams {
            mailbox_capacity: 64,
            batch_size: 8,
            ..StreamParams::sized(12, 2)
        };
        let result = run_fleet(
            &small_fleet_config(PaperProperty::B),
            &params,
            &fleet,
            MonitorOptions::default(),
        );
        let m = &result.avg;
        assert_eq!(m.fleet_size, 2);
        assert!(m.total_events > 0);
        assert!(m.wall_clock_secs > 0.0);
        assert!(m.fleet_solo_wall_clock_secs > 0.0);
        assert_eq!(m.fleet_per_property.len(), 2);
        assert_eq!(m.fleet_per_property[0].property, "B");
        assert_eq!(m.fleet_per_property[1].property, "C");
        // The goal tail drives all p true concurrently: reachability member B
        // must be satisfied in every session.
        assert_eq!(m.fleet_per_property[0].verdict, "true");
        assert!(m.fleet_per_property.iter().any(|p| p.monitor_tokens > 0));
    }

    #[test]
    fn joined_name_concatenates_members() {
        let fleet = paper_fleet(&[PaperProperty::A, PaperProperty::B, PaperProperty::F]);
        assert_eq!(fleet.joined_name(), "A+B+F");
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one property")]
    fn empty_fleets_are_rejected() {
        FleetParams::new(Vec::new());
    }
}
