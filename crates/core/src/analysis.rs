//! Spec-level entry points into the static analyzer (`dlrv-analyze`).
//!
//! The analyzer itself sits below this crate (it knows formulas, automata and atom
//! ownership, not [`PropertySpec`]s), so this module does the elaboration it cannot:
//! building the spec at a *safe* process count even when the configured count is too
//! small (that misconfiguration must become lint `DLRV-C001`, not a panic), deriving
//! the initial global state from the spec's initial channel values, and joining the
//! predicted decentralization cost against measured benchmark records.

use crate::results::ScenarioRecord;
use crate::spec::{CompiledProperty, PropertySpec};
use dlrv_analyze::{
    analyze, to_dot_annotated, AnalysisInput, Budget, MeasuredOverhead, PropertyAnalysis,
};
use dlrv_automaton::MonitorAutomaton;
use dlrv_ltl::{Assignment, AtomLayout, AtomRegistry};

/// Derives the initial global state a run of `spec` would start from: the spec's
/// initial channel values applied to every process's channel-bound atoms.
pub fn initial_global_state_for(
    spec: &PropertySpec,
    registry: &AtomRegistry,
    n_processes: usize,
) -> Assignment {
    let layout = AtomLayout::from_registry(registry, n_processes);
    let (p0, q0) = spec.initial_channels();
    let mut state = Assignment::ALL_FALSE;
    for process in 0..n_processes {
        layout.apply_channels(process, p0, q0, &mut state);
    }
    state
}

/// Statically analyzes `spec` as configured for `n_processes` processes.
///
/// Unlike [`PropertySpec::build`], this never panics on a too-small process count:
/// the spec is elaborated at `max(n_processes, min_processes)` and the analyzer
/// reports the mismatch as `DLRV-C001`.
pub fn analyze_spec(
    spec: &PropertySpec,
    n_processes: usize,
    budget: Budget,
) -> PropertyAnalysis {
    let effective = n_processes.max(spec.min_processes());
    let (formula, registry) = spec.build(effective);
    let (automaton, synthesis) = MonitorAutomaton::synthesize_with_report(&formula, &registry);
    let initial_gstate = initial_global_state_for(spec, &registry, effective);
    analyze(&AnalysisInput {
        name: spec.name(),
        ltl_source: spec.ltl_source(),
        formula: &formula,
        registry: &registry,
        automaton: &automaton,
        synthesis,
        n_processes,
        initial_gstate,
        budget,
    })
}

/// Analyzes `spec` and renders the annotated DOT export in one go.
///
/// This is the `--emit-dot` path: same digraph as [`CompiledProperty::to_dot`], plus
/// verdict-reachability colors, dashed unreachable states and `(trap)` markers.
pub fn analyze_to_dot(spec: &PropertySpec, n_processes: usize) -> String {
    let effective = n_processes.max(spec.min_processes());
    let (formula, registry) = spec.build(effective);
    let (automaton, synthesis) = MonitorAutomaton::synthesize_with_report(&formula, &registry);
    let initial_gstate = initial_global_state_for(spec, &registry, effective);
    let analysis = analyze(&AnalysisInput {
        name: spec.name(),
        ltl_source: spec.ltl_source(),
        formula: &formula,
        registry: &registry,
        automaton: &automaton,
        synthesis,
        n_processes,
        initial_gstate,
        budget: Budget::default(),
    });
    to_dot_annotated(
        &automaton,
        &registry,
        &analysis,
        &format!("{} ({} procs)", spec.name(), effective),
    )
}

impl CompiledProperty {
    /// Statically analyzes this compiled property (default [`Budget`]).
    pub fn analyze(&self) -> PropertyAnalysis {
        analyze_spec(&self.spec, self.n_processes, Budget::default())
    }
}

/// Finds the measured decentralization cost matching `analysis` in benchmark
/// records: the first record with the same property name and process count that
/// actually moved events.  Offline families measure real monitor messages, so
/// throughput records (which do not exchange tokens) are skipped.
pub fn measured_overhead_for(
    analysis: &PropertyAnalysis,
    records: &[ScenarioRecord],
) -> Option<MeasuredOverhead> {
    records
        .iter()
        .filter(|r| r.scenario.stream.is_none())
        .filter(|r| {
            r.scenario.config.property.name() == analysis.name
                && r.scenario.config.n_processes == analysis.n_processes.max(1)
                && r.avg.total_events > 0
        })
        .map(|r| MeasuredOverhead {
            scenario: r.scenario.name.clone(),
            msgs_per_event: r.avg.monitor_messages as f64 / r.avg.total_events as f64,
        })
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::PaperProperty;
    use crate::scenario::ScenarioRegistry;
    use dlrv_analyze::{MonitorabilityClass, Severity};

    #[test]
    fn every_registry_scenario_analyzes_without_errors() {
        // The acceptance gate of `--target analyze --deny error`: the shipped
        // registry must be clean at error severity (warn/info findings are fine —
        // e.g. the request-response custom property is legitimately
        // non-monitorable and the analyzer must say so).
        //
        // Scenario families reuse (property, process-count) pairs, so analyze each
        // pair once; debug builds additionally skip the 10-atom five-process
        // giants (1024-symbol synthesis is minutes unoptimized) — CI's release
        // `--target analyze` run covers the full registry.
        let mut seen = std::collections::BTreeSet::new();
        for scenario in ScenarioRegistry::standard().iter() {
            let key = (
                scenario.config.property.name().to_string(),
                scenario.config.n_processes,
            );
            if !seen.insert(key) {
                continue;
            }
            if cfg!(debug_assertions) && scenario.config.n_processes >= 5 {
                continue;
            }
            let analysis = analyze_spec(
                &scenario.config.property,
                scenario.config.n_processes,
                Budget::default(),
            );
            let errors: Vec<_> = analysis
                .findings
                .iter()
                .filter(|f| f.severity >= Severity::Error)
                .collect();
            assert!(
                errors.is_empty(),
                "scenario {} has error findings: {errors:?}",
                scenario.name
            );
            assert!(
                !analysis.classification.is_trivial(),
                "scenario {} property is trivial: {:?}",
                scenario.name,
                analysis.classification
            );
        }
    }

    #[test]
    fn paper_properties_classify_sensibly() {
        // Property B is the rendezvous reachability property F(p0 && ... && pn):
        // co-safety.  Property A is an until-invariant: its violation is
        // detectable, ⊤ never is (safety).
        let b = analyze_spec(&PropertySpec::paper(PaperProperty::B), 2, Budget::default());
        assert_eq!(b.classification, MonitorabilityClass::CoSafety);
        let a = analyze_spec(&PropertySpec::paper(PaperProperty::A), 2, Budget::default());
        assert!(
            matches!(
                a.classification,
                MonitorabilityClass::Safety | MonitorabilityClass::Monitorable
            ),
            "{:?}",
            a.classification
        );
    }

    #[test]
    fn compiled_property_analyze_matches_free_function() {
        let spec = PropertySpec::parse("F (P0.p && P1.p)").expect("valid LTL");
        let compiled = CompiledProperty::compile(&spec, 2);
        assert_eq!(compiled.analyze(), analyze_spec(&spec, 2, Budget::default()));
    }

    #[test]
    fn too_few_processes_lints_instead_of_panicking() {
        let spec = PropertySpec::parse("F (P2.p)").expect("valid LTL");
        let analysis = analyze_spec(&spec, 2, Budget::default());
        assert_eq!(analysis.n_processes, 2);
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.lint.id() == "DLRV-C001"));
    }

    #[test]
    fn annotated_dot_is_a_digraph_with_named_guards() {
        let spec = PropertySpec::paper(PaperProperty::B);
        let dot = analyze_to_dot(&spec, 2);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("P0.p"));
        assert!(dot.contains("q_top"));
        assert!(dot.contains("classification: co_safety"), "{dot}");
    }

    #[test]
    fn measured_overhead_joins_on_property_and_process_count() {
        let registry = ScenarioRegistry::standard();
        let scenario = registry.get("paper-B-n2").expect("registered").clone();
        let mut record = ScenarioRecord {
            scenario,
            avg: Default::default(),
            per_seed: Vec::new(),
            detected_verdicts: Default::default(),
        };
        record.avg.total_events = 100;
        record.avg.monitor_messages = 250;
        let analysis =
            analyze_spec(&PropertySpec::paper(PaperProperty::B), 2, Budget::default());
        let measured =
            measured_overhead_for(&analysis, std::slice::from_ref(&record)).expect("joined");
        assert_eq!(measured.scenario, "paper-B-n2");
        assert!((measured.msgs_per_event - 2.5).abs() < 1e-12);
        // A different process count must not join.
        let analysis5 =
            analyze_spec(&PropertySpec::paper(PaperProperty::B), 5, Budget::default());
        assert!(measured_overhead_for(&analysis5, std::slice::from_ref(&record)).is_none());
    }
}
