//! The throughput runner: drives hundreds–thousands of concurrent monitored sessions
//! through the online [`ShardedRuntime`] and measures ingestion throughput.
//!
//! One throughput run works end-to-end over the wire path:
//!
//! 1. For every session, a seeded workload is generated and executed under the
//!    deterministic simulator (with no-op monitors) to obtain its vector-clocked
//!    event sequence — the stand-in for a live distributed program emitting events.
//! 2. All sessions' records (open, events in round-robin interleaving across
//!    sessions, close) are **encoded into one framed byte stream** with the
//!    `dlrv-stream` codec.
//! 3. The byte stream is pumped through a [`ReaderSource`] into the sharded runtime:
//!    frames are decoded, hash-routed to shards, applied in batches by the
//!    per-session decentralized monitors.
//! 4. The shutdown report is folded into [`RunMetrics`]: aggregate events/sec,
//!    wall-clock duration and per-shard measurements next to the usual monitoring
//!    metrics (messages, global views, verdicts).
//!
//! Because each session's events are fed in timestamp order, every session's
//! verdicts equal the offline replay of the same trace (pinned by the
//! `stream_equivalence` integration test) — the throughput family measures the
//! online engine, it does not change what is detected.

use crate::experiment::{average_metrics, ExperimentConfig, ExperimentResult};
use crate::scenario::StreamParams;
use crate::spec::CompiledProperty;
use dlrv_automaton::MonitorAutomaton;
use dlrv_distsim::{initial_global_state, run_simulation, NullMonitor, SimConfig};
use dlrv_ltl::{AtomRegistry, Verdict};
use dlrv_monitor::{timestamp_order, MonitorOptions, RunMetrics};
use dlrv_stream::{
    encode_stream, encode_stream_binary, interleave_sessions, ReaderSource, SessionSpec,
    SessionStream, ShardedRuntime, StreamConfig,
};
use dlrv_trace::generate_workload;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Derives the workload seed of one session from the run seed; sessions must not
/// share traces, and the mixing keeps run seeds 1, 2, 3 … from overlapping.
fn session_seed(run_seed: u64, session: u64) -> u64 {
    run_seed.wrapping_mul(0x100_0003).wrapping_add(session).wrapping_add(1)
}


/// Runs `params.n_sessions` concurrent sessions of `config`'s workload through the
/// sharded streaming runtime, once per seed in `config.seeds`, and averages the
/// metrics exactly like the offline experiment runner.
pub fn run_throughput(
    config: &ExperimentConfig,
    params: &StreamParams,
    opts: MonitorOptions,
) -> ExperimentResult {
    let compiled = CompiledProperty::compile(&config.property, config.n_processes);

    let per_seed: Vec<RunMetrics> = config
        .seeds
        .iter()
        .map(|&seed| run_once(config, params, opts, seed, &compiled.automaton, &compiled.registry))
        .collect();

    let mut detected = BTreeSet::new();
    for metrics in &per_seed {
        detected.extend(metrics.detected_final_verdicts.iter().copied());
    }
    ExperimentResult {
        config: config.clone(),
        avg: average_metrics(&per_seed),
        per_seed,
        detected_verdicts: detected,
    }
}

/// One streaming run: generate all session inputs, encode the wire stream, pump it
/// through a fresh runtime, fold the report into [`RunMetrics`].
fn run_once(
    config: &ExperimentConfig,
    params: &StreamParams,
    opts: MonitorOptions,
    seed: u64,
    automaton: &Arc<MonitorAutomaton>,
    registry: &Arc<AtomRegistry>,
) -> RunMetrics {
    // Phase 1: workload generation (the simulated "live programs").  Not measured:
    // the scenario times the ingestion engine, not the trace generator.
    let mut inputs = Vec::with_capacity(params.n_sessions);
    let mut program_messages = 0usize;
    let mut program_time = 0.0f64;
    for s in 0..params.n_sessions {
        let workload = generate_workload(&config.workload_config(session_seed(seed, s as u64)));
        let report = run_simulation(&workload, registry, &SimConfig::default(), |_| {
            NullMonitor::default()
        });
        program_messages += report.program_messages;
        program_time = program_time.max(report.program_end_time);
        let events = timestamp_order(&report.computation)
            .into_iter()
            .map(|(_, p, sn)| report.computation.events[p][(sn - 1) as usize].clone())
            .collect();
        inputs.push(SessionStream {
            session: s as u64,
            property: config.property.name().to_string(),
            n_processes: config.n_processes,
            initial_state: initial_global_state(&workload, registry).0,
            events,
        });
    }

    // Phase 2: the canonical interleaved wire stream, in the scenario's wire
    // format — the decoder autodetects, so this purely changes the bytes pumped.
    let records = interleave_sessions(&inputs);
    let bytes = if params.binary_wire {
        encode_stream_binary(&records)
    } else {
        encode_stream(&records)
    };

    // Phase 3: pump the bytes through the runtime (decode + route + monitor).
    let started = Instant::now();
    let runtime = ShardedRuntime::start(StreamConfig {
        n_shards: params.n_shards,
        mailbox_capacity: params.mailbox_capacity,
        batch_size: params.batch_size,
        use_rings: params.use_rings,
    });
    let spec = Arc::new(SessionSpec {
        n_processes: config.n_processes,
        automaton: automaton.clone(),
        registry: registry.clone(),
        initial_state: dlrv_ltl::Assignment::ALL_FALSE, // replaced per session below
        options: opts,
        fleet: Vec::new(),
    });
    let mut source = ReaderSource::new(&bytes[..]);
    runtime
        .pump(&mut source, &mut |open| {
            // Sessions share automaton and registry; only the initial state differs.
            Ok(Arc::new(SessionSpec {
                n_processes: open.n_processes,
                automaton: spec.automaton.clone(),
                registry: spec.registry.clone(),
                initial_state: open.initial_state,
                options: spec.options,
                fleet: Vec::new(),
            }))
        })
        .expect("a freshly encoded stream must decode");
    let report = runtime.shutdown();
    let wall_clock_secs = started.elapsed().as_secs_f64();

    // Phase 4: fold into RunMetrics.
    debug_assert_eq!(report.sessions.len(), params.n_sessions);
    debug_assert!(
        report.per_shard.iter().all(|m| m.routing_errors == 0),
        "a well-formed generated stream must not misroute"
    );
    let mut metrics = RunMetrics {
        n_processes: config.n_processes,
        total_events: report.total_events,
        program_messages,
        program_time,
        wall_clock_secs,
        events_per_sec: if wall_clock_secs > 0.0 {
            report.total_events as f64 / wall_clock_secs
        } else {
            0.0
        },
        per_shard: report.per_shard,
        peak_rss_bytes: dlrv_obs::peak_rss_bytes().unwrap_or(0),
        ..RunMetrics::default()
    };
    for outcome in report.sessions.values() {
        metrics.monitor_messages += outcome.monitor_messages;
        metrics.monitor_tokens += outcome.monitor_tokens;
        metrics.total_global_views += outcome.global_views;
        metrics.peak_global_views += outcome.peak_global_views;
        metrics
            .detected_final_verdicts
            .extend(outcome.detected_verdicts.iter().copied());
        metrics
            .possible_verdicts
            .extend(outcome.possible_verdicts.iter().copied());
    }
    metrics
}

/// True when every session of a throughput run reached a conclusive or consistent
/// verdict set — a cheap structural sanity check used by tests.
pub fn verdicts_nonempty(metrics: &RunMetrics) -> bool {
    !metrics.possible_verdicts.is_empty() || metrics.detected_final_verdicts.contains(&Verdict::True)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::PaperProperty;
    use crate::scenario::StreamParams;

    fn small_config(property: PaperProperty) -> ExperimentConfig {
        ExperimentConfig {
            events_per_process: 5,
            seeds: vec![1],
            ..ExperimentConfig::paper_default(property, 2)
        }
    }

    #[test]
    fn throughput_run_produces_streaming_metrics() {
        // Both the optimized (binary + rings) and the classic (JSON + channels)
        // engine must produce structurally identical streaming metrics.
        for params in [
            StreamParams {
                mailbox_capacity: 64,
                batch_size: 8,
                ..StreamParams::sized(20, 3)
            },
            StreamParams {
                mailbox_capacity: 64,
                batch_size: 8,
                ..StreamParams::classic(20, 3)
            },
        ] {
            let result = run_throughput(
                &small_config(PaperProperty::B),
                &params,
                MonitorOptions::default(),
            );
            let m = &result.avg;
            assert!(m.total_events > 0);
            assert!(m.wall_clock_secs > 0.0);
            assert!(m.events_per_sec > 0.0);
            assert_eq!(m.per_shard.len(), 3);
            let shard_events: usize = m.per_shard.iter().map(|s| s.events_processed).sum();
            assert_eq!(shard_events, m.total_events);
            let opened: usize = m.per_shard.iter().map(|s| s.sessions_opened).sum();
            assert_eq!(opened, params.n_sessions);
            // The workload's goal tail satisfies reachability property B in
            // every session.
            assert!(result.detected_verdicts.contains(&Verdict::True));
            assert!(verdicts_nonempty(m));
        }
    }

    #[test]
    fn session_seeds_do_not_collide_across_runs() {
        let mut seen = std::collections::BTreeSet::new();
        for run_seed in 1..=3u64 {
            for s in 0..100u64 {
                assert!(
                    seen.insert(session_seed(run_seed, s)),
                    "collision at run {run_seed}, session {s}"
                );
            }
        }
    }
}
