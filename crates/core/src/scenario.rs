//! The scenario registry: every experiment this repository knows how to run, by name.
//!
//! A [`Scenario`] bundles everything one data point needs — the monitored
//! [`PaperProperty`], the process count, the workload shape
//! ([`ArrivalModel`] / [`CommTopology`] via [`ExperimentConfig`]) and the
//! [`MonitorOptions`] — under a stable name.  The [`ScenarioRegistry`] is the single
//! source of truth consumed by the `experiments` binary (`--target sweep`,
//! `--list-scenarios`), the criterion benches and the JSON results pipeline
//! ([`crate::results`]), so a new workload shape added here is immediately
//! measurable everywhere.
//!
//! [`ScenarioRegistry::standard`] covers the paper's evaluation (Chapter 5: six
//! properties × 2–5 processes under normally-distributed workloads, plus the
//! communication-frequency sweep of Fig. 5.9) and extends it with shapes the paper
//! does not measure: bursty event arrivals, hotspot / ring / pipeline communication
//! topologies, and large-N runs up to 8 processes.

use crate::experiment::{run_experiment_with_options, ExperimentConfig, ExperimentResult};
use crate::properties::PaperProperty;
use dlrv_monitor::MonitorOptions;
use dlrv_trace::{ArrivalModel, CommTopology};
use std::fmt;

/// Which part of the evaluation a scenario belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioFamily {
    /// The paper's main sweep (Figures 5.4–5.8): every property × process count under
    /// the default workload.
    Paper,
    /// The communication-frequency sweep of Fig. 5.9.
    CommFrequency,
    /// Workload shapes beyond the paper: bursty arrivals, non-broadcast topologies,
    /// large process counts.
    Extended,
}

impl ScenarioFamily {
    /// Stable lowercase name used in listings and the JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioFamily::Paper => "paper",
            ScenarioFamily::CommFrequency => "comm-frequency",
            ScenarioFamily::Extended => "extended",
        }
    }

    /// The family with the given [`name`](Self::name), if any.
    pub fn from_name(name: &str) -> Option<ScenarioFamily> {
        [
            ScenarioFamily::Paper,
            ScenarioFamily::CommFrequency,
            ScenarioFamily::Extended,
        ]
        .into_iter()
        .find(|f| f.name() == name)
    }
}

impl fmt::Display for ScenarioFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, reusable experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable name (`paper-A-n2`, `bursty-C-n4`, …), unique within a registry.
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Which part of the evaluation it belongs to.
    pub family: ScenarioFamily,
    /// Property, process count, workload shape and seeds.
    pub config: ExperimentConfig,
    /// Monitor-optimization switches (§4.3).
    pub options: MonitorOptions,
}

impl Scenario {
    /// Runs the scenario: one simulation per seed, metrics averaged.
    pub fn run(&self) -> ExperimentResult {
        run_experiment_with_options(&self.config, self.options)
    }
}

/// An ordered, name-addressable collection of scenarios.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// The empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// The standard registry: the paper's sweeps plus the extended workload shapes.
    ///
    /// Names are stable; `BENCH_results.json` files produced by different commits are
    /// diffed scenario-by-scenario against them.
    pub fn standard() -> Self {
        let mut registry = ScenarioRegistry::new();

        // The paper's main sweep: Figures 5.4–5.8 report the same runs through
        // different metrics, so one scenario per (property, process count) suffices.
        for property in PaperProperty::ALL {
            for n in [2usize, 3, 4, 5] {
                registry.push(Scenario {
                    name: format!("paper-{}-n{}", property.name(), n),
                    description: format!(
                        "Paper sweep (Figs 5.4-5.8): property {}, {} processes, \
                         N(3,1) arrivals, broadcast communication",
                        property.name(),
                        n
                    ),
                    family: ScenarioFamily::Paper,
                    config: ExperimentConfig::paper_default(property, n),
                    options: MonitorOptions::default(),
                });
            }
        }

        // The communication-frequency sweep of Fig. 5.9 (4 processes, property C).
        for comm_mu in [Some(3.0), Some(6.0), Some(9.0), Some(15.0), None] {
            let (suffix, label) = match comm_mu {
                Some(mu) => (format!("mu{}", mu as u64), format!("Commmu = {mu} s")),
                None => ("nocomm".to_string(), "no communication".to_string()),
            };
            registry.push(Scenario {
                name: format!("commfreq-{suffix}"),
                description: format!(
                    "Communication-frequency sweep (Fig 5.9): property C, 4 processes, {label}"
                ),
                family: ScenarioFamily::CommFrequency,
                config: ExperimentConfig {
                    comm_mu,
                    ..ExperimentConfig::paper_default(PaperProperty::C, 4)
                },
                options: MonitorOptions::default(),
            });
        }

        // Extended shapes the paper does not measure.
        registry.push(Scenario {
            name: "bursty-C-n4".to_string(),
            description: "Bursty event arrivals: property C, 4 processes, bursts of 4 \
                          rapid events separated by long gaps"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                arrival: ArrivalModel::Bursty {
                    burst_len: 4,
                    intra_scale: 0.2,
                    gap_scale: 3.0,
                },
                ..ExperimentConfig::paper_default(PaperProperty::C, 4)
            },
            options: MonitorOptions::default(),
        });
        registry.push(Scenario {
            name: "hotspot-D-n4".to_string(),
            description: "Hotspot communication: property D, 4 processes, all messages \
                          funnel through process 0"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                topology: CommTopology::Hotspot { hub: 0 },
                ..ExperimentConfig::paper_default(PaperProperty::D, 4)
            },
            options: MonitorOptions::default(),
        });
        registry.push(Scenario {
            name: "ring-B-n4".to_string(),
            description: "Ring topology: property B, 4 processes, each process sends \
                          only to its ring successor"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                topology: CommTopology::Ring,
                ..ExperimentConfig::paper_default(PaperProperty::B, 4)
            },
            options: MonitorOptions::default(),
        });
        registry.push(Scenario {
            name: "pipeline-A-n4".to_string(),
            description: "Pipeline topology: property A, 4 processes, messages flow \
                          P0 -> P1 -> P2 -> P3"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                topology: CommTopology::Pipeline,
                ..ExperimentConfig::paper_default(PaperProperty::A, 4)
            },
            options: MonitorOptions::default(),
        });
        for n in [6usize, 8] {
            registry.push(Scenario {
                name: format!("large-B-n{n}"),
                description: format!(
                    "Large-N run: property B, {n} processes (beyond the paper's 5), \
                     broadcast communication"
                ),
                family: ScenarioFamily::Extended,
                config: ExperimentConfig::paper_default(PaperProperty::B, n),
                options: MonitorOptions::default(),
            });
        }
        registry.push(Scenario {
            name: "large-A-n6-ring".to_string(),
            description: "Large-N run: property A, 6 processes over a ring (bounded \
                          per-process fan-out at scale)"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                topology: CommTopology::Ring,
                ..ExperimentConfig::paper_default(PaperProperty::A, 6)
            },
            options: MonitorOptions::default(),
        });

        registry
    }

    /// Adds a scenario.
    ///
    /// Panics if a scenario with the same name is already registered — names are the
    /// stable keys of the results pipeline, so a silent overwrite would corrupt
    /// cross-commit diffs.
    pub fn push(&mut self, scenario: Scenario) {
        assert!(
            self.get(&scenario.name).is_none(),
            "duplicate scenario name `{}`",
            scenario.name
        );
        self.scenarios.push(scenario);
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// The scenarios of one family, in registration order.
    pub fn family(&self, family: ScenarioFamily) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter().filter(move |s| s.family == family)
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenarios are registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl<'a> IntoIterator for &'a ScenarioRegistry {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;

    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_the_paper_sweep() {
        let registry = ScenarioRegistry::standard();
        for property in PaperProperty::ALL {
            for n in [2usize, 3, 4, 5] {
                let name = format!("paper-{}-n{}", property.name(), n);
                let s = registry.get(&name).unwrap_or_else(|| panic!("missing {name}"));
                assert_eq!(s.config.property, property);
                assert_eq!(s.config.n_processes, n);
                assert_eq!(s.family, ScenarioFamily::Paper);
            }
        }
        assert_eq!(registry.family(ScenarioFamily::Paper).count(), 24);
        assert_eq!(registry.family(ScenarioFamily::CommFrequency).count(), 5);
        assert!(
            registry.family(ScenarioFamily::Extended).count() >= 3,
            "at least three non-paper scenarios are required"
        );
    }

    #[test]
    fn scenario_names_are_unique() {
        let registry = ScenarioRegistry::standard();
        let mut names: Vec<_> = registry.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "scenario names must be unique");
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_names_are_rejected() {
        let mut registry = ScenarioRegistry::standard();
        let clone = registry.iter().next().unwrap().clone();
        registry.push(clone);
    }

    #[test]
    fn extended_scenarios_run_and_produce_metrics() {
        // Scaled-down copies of the extended shapes: the point is that every new
        // workload shape actually executes end-to-end, not the absolute numbers.
        let registry = ScenarioRegistry::standard();
        for name in ["bursty-C-n4", "hotspot-D-n4", "ring-B-n4", "pipeline-A-n4"] {
            let mut scenario = registry.get(name).expect(name).clone();
            scenario.config.events_per_process = 6;
            scenario.config.seeds = vec![1];
            let result = scenario.run();
            assert!(result.avg.total_events > 0, "{name} must simulate events");
            assert!(result.avg.program_time > 0.0);
        }
    }

    #[test]
    fn family_names_round_trip() {
        for family in [
            ScenarioFamily::Paper,
            ScenarioFamily::CommFrequency,
            ScenarioFamily::Extended,
        ] {
            assert_eq!(ScenarioFamily::from_name(family.name()), Some(family));
        }
        assert_eq!(ScenarioFamily::from_name("nope"), None);
    }
}
