//! The scenario registry: every experiment this repository knows how to run, by name.
//!
//! A [`Scenario`] bundles everything one data point needs — the monitored
//! [`PaperProperty`], the process count, the workload shape
//! ([`ArrivalModel`] / [`CommTopology`] via [`ExperimentConfig`]) and the
//! [`MonitorOptions`] — under a stable name.  The [`ScenarioRegistry`] is the single
//! source of truth consumed by the `experiments` binary (`--target sweep`,
//! `--list-scenarios`), the criterion benches and the JSON results pipeline
//! ([`crate::results`]), so a new workload shape added here is immediately
//! measurable everywhere.
//!
//! [`ScenarioRegistry::standard`] covers the paper's evaluation (Chapter 5: six
//! properties × 2–5 processes under normally-distributed workloads, plus the
//! communication-frequency sweep of Fig. 5.9) and extends it with shapes the paper
//! does not measure: bursty event arrivals, hotspot / ring / pipeline communication
//! topologies, large-N runs up to 8 processes — the **throughput family**
//! ([`ScenarioFamily::Throughput`]): hundreds to a thousand concurrent sessions
//! streamed through the online sharded `dlrv-stream` runtime, sized by
//! [`StreamParams`] and run by `experiments --target throughput` — and the
//! **overhead family** ([`ScenarioFamily::Overhead`]): every property as an A/B pair
//! with the §4.3 optimization suite on vs. off, run by `experiments --target
//! overhead` to reproduce the paper's message/queueing/memory overhead trends.

use crate::deploy::{run_deploy, DeployParams, DeployTransport};
use crate::experiment::{run_experiment_with_options, ExperimentConfig, ExperimentResult};
use crate::fleet::{run_fleet, FleetParams};
use crate::properties::PaperProperty;
use crate::spec::PropertySpec;
use crate::throughput::run_throughput;
use dlrv_monitor::MonitorOptions;
use dlrv_net::FaultSpec;
use dlrv_trace::{ArrivalModel, CommTopology};
use std::fmt;

/// Which part of the evaluation a scenario belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioFamily {
    /// The paper's main sweep (Figures 5.4–5.8): every property × process count under
    /// the default workload.
    Paper,
    /// The communication-frequency sweep of Fig. 5.9.
    CommFrequency,
    /// Workload shapes beyond the paper: bursty arrivals, non-broadcast topologies,
    /// large process counts.
    Extended,
    /// Online ingestion benchmarks: many concurrent sessions streamed through the
    /// sharded `dlrv-stream` runtime (`--target throughput`).
    Throughput,
    /// §4.3 overhead A/B pairs: every property with the optimization suite on and
    /// off, so `--target overhead` reproduces the paper's message/queueing/memory
    /// trends (`--target overhead`).
    Overhead,
    /// User-style LTL properties beyond the paper's six: request–response, mutual
    /// exclusion, precedence, nested until, and multi-process stress formulas, all
    /// specified as [`PropertySpec`] LTL text (`--target custom`).
    Custom,
    /// Real-socket multi-process deployments: one `monitord` OS process per
    /// monitor, tokens over TCP/Unix sockets, optionally through the
    /// deterministic fault-injection shim (`--target deploy`).
    Deploy,
    /// Hot-path A/B ablation: one streaming workload run with each hot-path
    /// optimization (binary wire, view arenas, SPSC rings) individually on,
    /// all on, and all off, so `--target hotpath` attributes the throughput
    /// gain switch by switch (`--target hotpath`).
    Hotpath,
    /// Fleet monitoring: N properties monitored in one pass over a shared
    /// stream — each event decoded once, clocks interned once, tokens of all
    /// members batched onto shared monitoring messages — with solo baselines
    /// measured back-to-back for the marginal-cost metric (`--target fleet`).
    Fleet,
}

impl ScenarioFamily {
    /// Stable lowercase name used in listings and the JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioFamily::Paper => "paper",
            ScenarioFamily::CommFrequency => "comm-frequency",
            ScenarioFamily::Extended => "extended",
            ScenarioFamily::Throughput => "throughput",
            ScenarioFamily::Overhead => "overhead",
            ScenarioFamily::Custom => "custom",
            ScenarioFamily::Deploy => "deploy",
            ScenarioFamily::Hotpath => "hotpath",
            ScenarioFamily::Fleet => "fleet",
        }
    }

    /// The family with the given [`name`](Self::name), if any.
    pub fn from_name(name: &str) -> Option<ScenarioFamily> {
        [
            ScenarioFamily::Paper,
            ScenarioFamily::CommFrequency,
            ScenarioFamily::Extended,
            ScenarioFamily::Throughput,
            ScenarioFamily::Overhead,
            ScenarioFamily::Custom,
            ScenarioFamily::Deploy,
            ScenarioFamily::Hotpath,
            ScenarioFamily::Fleet,
        ]
        .into_iter()
        .find(|f| f.name() == name)
    }
}

/// Streaming-engine parameters of a throughput scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamParams {
    /// Number of concurrent monitored sessions.
    pub n_sessions: usize,
    /// Number of worker shards.
    pub n_shards: usize,
    /// Bound of each shard's mailbox (backpressure threshold).
    pub mailbox_capacity: usize,
    /// Maximum records a shard applies per wakeup.
    pub batch_size: usize,
    /// Encode the wire stream with the compact binary codec instead of JSON
    /// frames (hot-path optimization 1; the decoder handles either).
    pub binary_wire: bool,
    /// Route records through SPSC ring mailboxes instead of `sync_channel`s
    /// (hot-path optimization 3).
    pub use_rings: bool,
}

impl StreamParams {
    /// The registry's default engine sizing: deep-enough mailboxes to keep shards
    /// busy, small batches to keep queue latency bounded, and the (equivalence-
    /// pinned) hot-path wire/mailbox optimizations on.
    pub fn sized(n_sessions: usize, n_shards: usize) -> Self {
        StreamParams {
            n_sessions,
            n_shards,
            mailbox_capacity: 1024,
            batch_size: 32,
            binary_wire: true,
            use_rings: true,
        }
    }

    /// The pre-optimization engine: JSON frames and `sync_channel` mailboxes.
    /// The `hotpath` A/B family measures [`sized`](Self::sized) against this.
    pub fn classic(n_sessions: usize, n_shards: usize) -> Self {
        StreamParams {
            binary_wire: false,
            use_rings: false,
            ..StreamParams::sized(n_sessions, n_shards)
        }
    }
}

impl fmt::Display for ScenarioFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, reusable experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable name (`paper-A-n2`, `bursty-C-n4`, …), unique within a registry.
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Which part of the evaluation it belongs to.
    pub family: ScenarioFamily,
    /// Property, process count, workload shape and seeds.
    pub config: ExperimentConfig,
    /// Monitor-optimization switches (§4.3).
    pub options: MonitorOptions,
    /// `Some` for throughput scenarios: how many concurrent sessions to stream
    /// through the sharded runtime and how the engine is sized.  `None` runs the
    /// classic offline experiment.
    pub stream: Option<StreamParams>,
    /// `Some` for deploy scenarios: which socket transport carries the monitors
    /// and the (optional) fault spec on every channel.  `None` runs in-process.
    pub deploy: Option<DeployParams>,
    /// `Some` for fleet scenarios: the member properties monitored in one pass.
    /// Fleet scenarios also carry [`stream`](Self::stream) params (the fleet
    /// rides the sharded streaming runtime); `config.property` is the lead
    /// member, used only to shape the workload.
    pub fleet: Option<FleetParams>,
}

impl Scenario {
    /// Runs the scenario — offline experiment or streamed throughput run, one
    /// simulation per seed, metrics averaged.
    ///
    /// Every family measures real elapsed time per seed (`wall_clock_secs`,
    /// `events_per_sec`, `peak_rss_bytes`) — offline runs inside
    /// `run_single`, throughput runs inside the engine (workload generation
    /// excluded), deploy runs across the whole fleet round trip — and the
    /// averaged metrics fold them like every other field.  These are the only
    /// run-to-run-varying fields of the results document.
    /// Panics when a deploy scenario's process fleet fails (daemon spawn,
    /// handshake or barrier errors); use [`run_deploy`] directly for a `Result`.
    pub fn run(&self) -> ExperimentResult {
        if let Some(fleet) = &self.fleet {
            let params = self
                .stream
                .as_ref()
                .expect("fleet scenarios carry stream params");
            return run_fleet(&self.config, params, fleet, self.options);
        }
        match (&self.stream, &self.deploy) {
            (Some(params), _) => run_throughput(&self.config, params, self.options),
            (None, Some(params)) => run_deploy(&self.config, self.options, params)
                .unwrap_or_else(|e| panic!("deploy scenario `{}` failed: {e}", self.name))
                .result,
            (None, None) => run_experiment_with_options(&self.config, self.options),
        }
    }
}

/// An ordered, name-addressable collection of scenarios.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// The empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// The standard registry: the paper's sweeps plus the extended workload shapes.
    ///
    /// Names are stable; `BENCH_results.json` files produced by different commits are
    /// diffed scenario-by-scenario against them.
    pub fn standard() -> Self {
        let mut registry = ScenarioRegistry::new();

        // The paper's main sweep: Figures 5.4–5.8 report the same runs through
        // different metrics, so one scenario per (property, process count) suffices.
        for property in PaperProperty::ALL {
            for n in [2usize, 3, 4, 5] {
                registry.push(Scenario {
                    name: format!("paper-{}-n{}", property.name(), n),
                    description: format!(
                        "Paper sweep (Figs 5.4-5.8): property {}, {} processes, \
                         N(3,1) arrivals, broadcast communication",
                        property.name(),
                        n
                    ),
                    family: ScenarioFamily::Paper,
                    config: ExperimentConfig::paper_default(property, n),
                    options: MonitorOptions::default(),
                    stream: None,
                    deploy: None,
                    fleet: None,
                });
            }
        }

        // The communication-frequency sweep of Fig. 5.9 (4 processes, property C).
        for comm_mu in [Some(3.0), Some(6.0), Some(9.0), Some(15.0), None] {
            let (suffix, label) = match comm_mu {
                Some(mu) => (format!("mu{}", mu as u64), format!("Commmu = {mu} s")),
                None => ("nocomm".to_string(), "no communication".to_string()),
            };
            registry.push(Scenario {
                name: format!("commfreq-{suffix}"),
                description: format!(
                    "Communication-frequency sweep (Fig 5.9): property C, 4 processes, {label}"
                ),
                family: ScenarioFamily::CommFrequency,
                config: ExperimentConfig {
                    comm_mu,
                    ..ExperimentConfig::paper_default(PaperProperty::C, 4)
                },
                options: MonitorOptions::default(),
                stream: None,
                deploy: None,
                fleet: None,
            });
        }

        // Extended shapes the paper does not measure.
        registry.push(Scenario {
            name: "bursty-C-n4".to_string(),
            description: "Bursty event arrivals: property C, 4 processes, bursts of 4 \
                          rapid events separated by long gaps"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                arrival: ArrivalModel::Bursty {
                    burst_len: 4,
                    intra_scale: 0.2,
                    gap_scale: 3.0,
                },
                ..ExperimentConfig::paper_default(PaperProperty::C, 4)
            },
            options: MonitorOptions::default(),
            stream: None,
            deploy: None,
            fleet: None,
        });
        registry.push(Scenario {
            name: "hotspot-D-n4".to_string(),
            description: "Hotspot communication: property D, 4 processes, all messages \
                          funnel through process 0"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                topology: CommTopology::Hotspot { hub: 0 },
                ..ExperimentConfig::paper_default(PaperProperty::D, 4)
            },
            options: MonitorOptions::default(),
            stream: None,
            deploy: None,
            fleet: None,
        });
        registry.push(Scenario {
            name: "ring-B-n4".to_string(),
            description: "Ring topology: property B, 4 processes, each process sends \
                          only to its ring successor"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                topology: CommTopology::Ring,
                ..ExperimentConfig::paper_default(PaperProperty::B, 4)
            },
            options: MonitorOptions::default(),
            stream: None,
            deploy: None,
            fleet: None,
        });
        registry.push(Scenario {
            name: "pipeline-A-n4".to_string(),
            description: "Pipeline topology: property A, 4 processes, messages flow \
                          P0 -> P1 -> P2 -> P3"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                topology: CommTopology::Pipeline,
                ..ExperimentConfig::paper_default(PaperProperty::A, 4)
            },
            options: MonitorOptions::default(),
            stream: None,
            deploy: None,
            fleet: None,
        });
        for n in [6usize, 8] {
            registry.push(Scenario {
                name: format!("large-B-n{n}"),
                description: format!(
                    "Large-N run: property B, {n} processes (beyond the paper's 5), \
                     broadcast communication"
                ),
                family: ScenarioFamily::Extended,
                config: ExperimentConfig::paper_default(PaperProperty::B, n),
                options: MonitorOptions::default(),
                stream: None,
                deploy: None,
                fleet: None,
            });
        }
        registry.push(Scenario {
            name: "large-A-n6-ring".to_string(),
            description: "Large-N run: property A, 6 processes over a ring (bounded \
                          per-process fan-out at scale)"
                .to_string(),
            family: ScenarioFamily::Extended,
            config: ExperimentConfig {
                topology: CommTopology::Ring,
                ..ExperimentConfig::paper_default(PaperProperty::A, 6)
            },
            options: MonitorOptions::default(),
            stream: None,
            deploy: None,
            fleet: None,
        });

        // The throughput family: online ingestion through the sharded streaming
        // runtime (`--target throughput`).  Sessions are deliberately small (few
        // processes, short traces) — the measured quantity is how many concurrent
        // sessions the engine sustains, not per-session lattice exploration.
        let stream_config = |property, n_processes, events| ExperimentConfig {
            events_per_process: events,
            seeds: vec![1],
            ..ExperimentConfig::paper_default(property, n_processes)
        };

        // Every property at a fixed engine size: ingestion cost per property shape.
        for property in PaperProperty::ALL {
            registry.push(Scenario {
                name: format!("throughput-{}-s200-sh4", property.name()),
                description: format!(
                    "Streaming ingestion: 200 concurrent sessions of property {}, \
                     3 processes, 4 shards",
                    property.name()
                ),
                family: ScenarioFamily::Throughput,
                config: stream_config(property, 3, 6),
                options: MonitorOptions::default(),
                stream: Some(StreamParams::sized(200, 4)),
                deploy: None,
                fleet: None,
            });
        }

        // Shard-count scaling at a fixed workload: the engine's speedup curve.
        for n_shards in [1usize, 2, 4, 8] {
            registry.push(Scenario {
                name: format!("throughput-C-s400-sh{n_shards}"),
                description: format!(
                    "Shard scaling: 400 concurrent sessions of property C, \
                     2 processes, {n_shards} shard(s)"
                ),
                family: ScenarioFamily::Throughput,
                config: stream_config(PaperProperty::C, 2, 8),
                options: MonitorOptions::default(),
                stream: Some(StreamParams::sized(400, n_shards)),
                deploy: None,
                fleet: None,
            });
        }

        // Workload shapes over the wire: bursty arrivals and a ring topology.
        registry.push(Scenario {
            name: "throughput-C-s200-sh4-bursty".to_string(),
            description: "Streaming ingestion under bursty arrivals: 200 sessions, \
                          property C, 4 shards"
                .to_string(),
            family: ScenarioFamily::Throughput,
            config: ExperimentConfig {
                arrival: ArrivalModel::Bursty {
                    burst_len: 4,
                    intra_scale: 0.2,
                    gap_scale: 3.0,
                },
                ..stream_config(PaperProperty::C, 3, 6)
            },
            options: MonitorOptions::default(),
            stream: Some(StreamParams::sized(200, 4)),
            deploy: None,
            fleet: None,
        });
        registry.push(Scenario {
            name: "throughput-B-s200-sh4-ring".to_string(),
            description: "Streaming ingestion over a ring topology: 200 sessions, \
                          property B, 4 shards"
                .to_string(),
            family: ScenarioFamily::Throughput,
            config: ExperimentConfig {
                topology: CommTopology::Ring,
                ..stream_config(PaperProperty::B, 3, 6)
            },
            options: MonitorOptions::default(),
            stream: Some(StreamParams::sized(200, 4)),
            deploy: None,
            fleet: None,
        });

        // The load test: a thousand concurrent sessions on eight shards.
        registry.push(Scenario {
            name: "throughput-B-s1000-sh8".to_string(),
            description: "Load test: 1000 concurrent sessions of property B, \
                          2 processes, 8 shards"
                .to_string(),
            family: ScenarioFamily::Throughput,
            config: stream_config(PaperProperty::B, 2, 6),
            options: MonitorOptions::default(),
            stream: Some(StreamParams::sized(1000, 8)),
            deploy: None,
            fleet: None,
        });

        // The hotpath family: the shard-scaling workload (property C, 400
        // sessions) run under a one-switch-at-a-time ablation of the hot-path
        // optimizations.  Every variant of one shard count shares the same
        // config and seeds, so within a group any events/sec difference is the
        // named switch — the streaming sibling of the §4.3 overhead A/B pairs.
        // Verdict equality across variants is separately pinned by
        // `tests/stream_equivalence.rs`; this family measures the speed side.
        let arena_off = MonitorOptions {
            arena_recycling: false,
            ..MonitorOptions::default()
        };
        for n_shards in [1usize, 4] {
            let variants: [(&str, &str, StreamParams, MonitorOptions); 5] = [
                ("off", "every hot-path switch off", StreamParams::classic(400, n_shards), arena_off),
                (
                    "binary",
                    "binary wire frames only",
                    StreamParams {
                        binary_wire: true,
                        ..StreamParams::classic(400, n_shards)
                    },
                    arena_off,
                ),
                (
                    "arena",
                    "view/token arena recycling only",
                    StreamParams::classic(400, n_shards),
                    MonitorOptions::default(),
                ),
                (
                    "rings",
                    "SPSC ring mailboxes only",
                    StreamParams {
                        use_rings: true,
                        ..StreamParams::classic(400, n_shards)
                    },
                    arena_off,
                ),
                ("all", "every hot-path switch on", StreamParams::sized(400, n_shards), MonitorOptions::default()),
            ];
            for (suffix, label, stream, options) in variants {
                registry.push(Scenario {
                    name: format!("hotpath-C-s400-sh{n_shards}-{suffix}"),
                    description: format!(
                        "Hot-path A/B: 400 concurrent sessions of property C, \
                         2 processes, {n_shards} shard(s), {label}"
                    ),
                    family: ScenarioFamily::Hotpath,
                    config: stream_config(PaperProperty::C, 2, 8),
                    options,
                    stream: Some(stream),
                    deploy: None,
                    fleet: None,
                });
            }
        }

        // The §4.3 overhead family: every property at the paper's 4-process point,
        // once with the full optimization suite (the defaults) and once with every
        // switch off (the `--no-opt` baseline).  `--target overhead` prints the pairs
        // side by side; the JSON document carries one record per member, each
        // self-describing via its `options` object.  The workload is the paper
        // default scaled to an A/B-measurable size — both members of a pair always
        // use the *same* traces (same seeds), so any difference is the optimizations.
        for property in PaperProperty::ALL {
            for (suffix, options, label) in [
                ("opts", MonitorOptions::default(), "on"),
                ("noopt", MonitorOptions::ALL_OFF, "off"),
            ] {
                registry.push(Scenario {
                    name: format!("overhead-{}-{}", property.name(), suffix),
                    description: format!(
                        "§4.3 overhead A/B: property {}, 4 processes, N(3,1) arrivals, \
                         broadcast communication, optimizations {label}",
                        property.name()
                    ),
                    family: ScenarioFamily::Overhead,
                    config: ExperimentConfig {
                        events_per_process: 12,
                        ..ExperimentConfig::paper_default(property, 4)
                    },
                    options,
                    stream: None,
                    deploy: None,
                    fleet: None,
                });
            }
        }

        // The custom family: user-style LTL specs routed through the same pipeline
        // as everything else (`--target custom`).  Each entry is a classic pattern
        // from the runtime-verification literature over free-form atom names, plus
        // a multi-process stress formula; the `PropertySpec` layer binds the atoms
        // to the two-channel workloads via the registry-derived `AtomLayout`.
        let custom = |suffix: &str, ltl: &str, n: usize, events: usize, desc: &str| Scenario {
            name: format!("custom-{suffix}"),
            description: format!("Custom LTL property: {desc} — `{ltl}`"),
            family: ScenarioFamily::Custom,
            config: ExperimentConfig {
                events_per_process: events,
                ..ExperimentConfig::paper_default(
                    PropertySpec::parse_named(suffix, ltl)
                        .expect("registry formulas are valid LTL"),
                    n,
                )
            },
            options: MonitorOptions::default(),
            stream: None,
            deploy: None,
            fleet: None,
        };
        registry.push(custom(
            "reqack-n2",
            "G(P0.req -> F P1.ack)",
            2,
            12,
            "request-response: every request of P0 is eventually acknowledged by P1",
        ));
        registry.push(custom(
            "reqack-all-n3",
            "G(P0.req -> F (P1.ack && P2.ack))",
            3,
            12,
            "fan-out request-response: both replicas must acknowledge",
        ));
        registry.push(custom(
            "mutex-n2",
            "G(!(P0.cs && P1.cs))",
            2,
            12,
            "mutual exclusion: the two critical sections are never concurrent",
        ));
        registry.push(custom(
            "precedence-n2",
            "(!P1.done) W P0.init",
            2,
            12,
            "precedence: P1 does not finish before P0 initialized",
        ));
        registry.push(custom(
            "nested-until-n3",
            "G(P0.p U (P1.p U P2.p))",
            3,
            10,
            "nested until obligations across three processes",
        ));
        registry.push(custom(
            "release-n2",
            "P1.ok R (!P0.stop)",
            2,
            12,
            "release: P0 may not stop until P1 signals ok",
        ));
        registry.push(custom(
            "mixed-n4",
            "F(P0.p && P1.p && P2.p && P3.p) && G(P0.q U P1.q)",
            4,
            10,
            "reachability goal combined with an until obligation",
        ));
        registry.push(custom(
            "stress-n8",
            "G((P0.p || P1.p) U (P6.p && P7.p))",
            8,
            8,
            "eight-process stress: disjunctive until at the repository's largest scale",
        ));

        // The deploy family: the same monitors as everywhere else, but one
        // `monitord` OS process each, exchanging tokens over real sockets
        // (`--target deploy`).  Traces are deliberately short — every fed event
        // pays a full quiescence barrier (status round-trips to every daemon), so
        // the family measures deployment mechanics, not lattice exploration.
        // Unix sockets by default; `deploy-B-n3` runs over TCP loopback so both
        // transports stay exercised.
        let deploy_config = |property: PropertySpec, n: usize| ExperimentConfig {
            events_per_process: 10,
            seeds: vec![1],
            ..ExperimentConfig::paper_default(property, n)
        };
        for property in PaperProperty::ALL {
            let transport = if property == PaperProperty::B {
                DeployTransport::Tcp
            } else {
                DeployTransport::Unix
            };
            registry.push(Scenario {
                name: format!("deploy-{}-n3", property.name()),
                description: format!(
                    "Real-socket deployment: property {}, 3 monitor processes over \
                     {} sockets, fault-free",
                    property.name(),
                    transport.name()
                ),
                family: ScenarioFamily::Deploy,
                config: deploy_config(property.into(), 3),
                options: MonitorOptions::default(),
                stream: None,
                deploy: Some(DeployParams::clean(transport)),
                fleet: None,
            });
        }
        registry.push(Scenario {
            name: "deploy-reqack-n2".to_string(),
            description: "Real-socket deployment of a custom LTL spec: \
                          request-response over 2 monitor processes, Unix sockets"
                .to_string(),
            family: ScenarioFamily::Deploy,
            config: deploy_config(
                PropertySpec::parse_named("reqack-n2", "G(P0.req -> F P1.ack)")
                    .expect("registry formulas are valid LTL"),
                2,
            ),
            options: MonitorOptions::default(),
            stream: None,
            deploy: Some(DeployParams::clean(DeployTransport::Unix)),
            fleet: None,
        });
        registry.push(Scenario {
            name: "deploy-C-n3-faulty".to_string(),
            description: "Real-socket deployment under sound faults: property C, \
                          3 monitor processes, every channel delayed 1 ms with 20% \
                          duplication and 20% reordering"
                .to_string(),
            family: ScenarioFamily::Deploy,
            config: deploy_config(PaperProperty::C.into(), 3),
            options: MonitorOptions::default(),
            stream: None,
            deploy: Some(DeployParams {
                transport: DeployTransport::Unix,
                fault: Some(
                    FaultSpec::parse("delay=1,dup=0.2,reorder=0.2,seed=7")
                        .expect("registry fault specs are valid"),
                ),
                binary_wire: true,
            }),
            fleet: None,
        });

        // The fleet family: N properties monitored in one pass over a shared
        // stream (`--target fleet`).  Each scenario runs the fleet once and one
        // solo baseline per member over the *same* bytes, so the amortization
        // ratio and the marginal cost per added property are measured, not
        // inferred.  The lead (first) member shapes the workload; sessions stay
        // small like the throughput family — the measured quantity is how much
        // of the pipeline N properties share, not per-property lattice depth.
        let fleet_scenario = |letters: &[PaperProperty],
                              n_shards: usize,
                              suffix: &str,
                              options: MonitorOptions,
                              label: &str| {
            let tag: String = letters.iter().map(|p| p.name()).collect();
            let fleet = FleetParams::new(letters.iter().map(|&p| p.into()).collect());
            Scenario {
                name: format!("fleet-{tag}-sh{n_shards}{suffix}"),
                description: format!(
                    "Fleet monitoring: properties {} in one pass, 100 sessions, \
                     3 processes, {n_shards} shard(s){label}",
                    fleet.joined_name()
                ),
                family: ScenarioFamily::Fleet,
                config: stream_config(letters[0], 3, 6),
                options,
                stream: Some(StreamParams::sized(100, n_shards)),
                deploy: None,
                fleet: Some(fleet),
            }
        };
        use PaperProperty::{A, B, C, D, E, F};
        let on = MonitorOptions::default;
        registry.push(fleet_scenario(&[A, B], 4, "", on(), ""));
        registry.push(fleet_scenario(&[A, B], 1, "", on(), ""));
        registry.push(fleet_scenario(&[C, D], 4, "", on(), ""));
        registry.push(fleet_scenario(&[A, B, C], 4, "", on(), ""));
        registry.push(fleet_scenario(&[D, E, F], 4, "", on(), ""));
        registry.push(fleet_scenario(&[A, B, C, D], 4, "", on(), ""));
        registry.push(fleet_scenario(&[A, B, C, D, E, F], 4, "", on(), ""));
        registry.push(fleet_scenario(&[A, B, C, D, E, F], 1, "", on(), ""));
        registry.push(fleet_scenario(
            &[A, B, C, D, E, F],
            4,
            "-noopt",
            MonitorOptions::ALL_OFF,
            ", §4.3 optimizations off",
        ));

        registry
    }

    /// Adds a scenario.
    ///
    /// Panics if a scenario with the same name is already registered — names are the
    /// stable keys of the results pipeline, so a silent overwrite would corrupt
    /// cross-commit diffs.
    pub fn push(&mut self, scenario: Scenario) {
        assert!(
            self.get(&scenario.name).is_none(),
            "duplicate scenario name `{}`",
            scenario.name
        );
        self.scenarios.push(scenario);
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// The scenarios of one family, in registration order.
    pub fn family(&self, family: ScenarioFamily) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter().filter(move |s| s.family == family)
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenarios are registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl<'a> IntoIterator for &'a ScenarioRegistry {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;

    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_the_paper_sweep() {
        let registry = ScenarioRegistry::standard();
        for property in PaperProperty::ALL {
            for n in [2usize, 3, 4, 5] {
                let name = format!("paper-{}-n{}", property.name(), n);
                let s = registry.get(&name).unwrap_or_else(|| panic!("missing {name}"));
                assert_eq!(s.config.property, property);
                assert_eq!(s.config.n_processes, n);
                assert_eq!(s.family, ScenarioFamily::Paper);
            }
        }
        assert_eq!(registry.family(ScenarioFamily::Paper).count(), 24);
        assert_eq!(registry.family(ScenarioFamily::CommFrequency).count(), 5);
        assert!(
            registry.family(ScenarioFamily::Extended).count() >= 3,
            "at least three non-paper scenarios are required"
        );
    }

    #[test]
    fn throughput_family_covers_properties_and_shard_counts() {
        let registry = ScenarioRegistry::standard();
        // Every paper property is streamed …
        for property in PaperProperty::ALL {
            let name = format!("throughput-{}-s200-sh4", property.name());
            let s = registry.get(&name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.family, ScenarioFamily::Throughput);
            assert_eq!(s.stream.unwrap().n_sessions, 200);
        }
        // … and at least three distinct shard counts are measured (the engine's
        // scaling curve needs ≥ 3 points).
        let shard_counts: std::collections::BTreeSet<usize> = registry
            .family(ScenarioFamily::Throughput)
            .map(|s| s.stream.unwrap().n_shards)
            .collect();
        assert!(
            shard_counts.len() >= 3,
            "need ≥ 3 shard counts, got {shard_counts:?}"
        );
        // Offline scenarios never carry stream params; the three streaming
        // families always do.
        for s in &registry {
            assert_eq!(
                s.stream.is_some(),
                matches!(
                    s.family,
                    ScenarioFamily::Throughput
                        | ScenarioFamily::Hotpath
                        | ScenarioFamily::Fleet
                ),
                "{}",
                s.name
            );
        }
        // And fleet members are exactly the fleet family's scenarios.
        for s in &registry {
            assert_eq!(s.fleet.is_some(), s.family == ScenarioFamily::Fleet, "{}", s.name);
        }
    }

    #[test]
    fn hotpath_family_ablates_one_switch_at_a_time() {
        let registry = ScenarioRegistry::standard();
        for n_shards in [1usize, 4] {
            // (suffix, binary_wire, use_rings, arena_recycling)
            let expect = [
                ("off", false, false, false),
                ("binary", true, false, false),
                ("arena", false, false, true),
                ("rings", false, true, false),
                ("all", true, true, true),
            ];
            let baseline = registry
                .get(&format!("hotpath-C-s400-sh{n_shards}-off"))
                .expect("baseline variant");
            for (suffix, binary, rings, arena) in expect {
                let name = format!("hotpath-C-s400-sh{n_shards}-{suffix}");
                let s = registry.get(&name).unwrap_or_else(|| panic!("missing {name}"));
                assert_eq!(s.family, ScenarioFamily::Hotpath);
                // All variants of a shard count share the same workload …
                assert_eq!(s.config, baseline.config, "{name}: must share traces");
                let stream = s.stream.expect("hotpath scenarios stream");
                assert_eq!(stream.n_sessions, 400, "{name}");
                assert_eq!(stream.n_shards, n_shards, "{name}");
                assert_eq!(
                    (stream.mailbox_capacity, stream.batch_size),
                    {
                        let b = baseline.stream.unwrap();
                        (b.mailbox_capacity, b.batch_size)
                    },
                    "{name}: engine sizing must match the baseline"
                );
                // … and differ only in the advertised switches.
                assert_eq!(stream.binary_wire, binary, "{name}");
                assert_eq!(stream.use_rings, rings, "{name}");
                assert_eq!(s.options.arena_recycling, arena, "{name}");
            }
        }
        assert_eq!(registry.family(ScenarioFamily::Hotpath).count(), 10);
    }

    #[test]
    fn small_throughput_scenario_runs_end_to_end() {
        let registry = ScenarioRegistry::standard();
        let mut scenario = registry.get("throughput-B-s200-sh4").expect("registered").clone();
        scenario.config.events_per_process = 4;
        scenario.stream = Some(StreamParams::sized(12, 2));
        let result = scenario.run();
        assert_eq!(result.avg.per_shard.len(), 2);
        assert!(result.avg.events_per_sec > 0.0);
        assert!(result.avg.wall_clock_secs > 0.0);
        assert!(result.detected_verdicts.contains(&dlrv_ltl::Verdict::True));
    }

    #[test]
    fn offline_scenarios_report_wall_clock_duration() {
        let registry = ScenarioRegistry::standard();
        let mut scenario = registry.get("paper-B-n2").expect("registered").clone();
        scenario.config.events_per_process = 4;
        scenario.config.seeds = vec![1];
        let result = scenario.run();
        assert!(result.avg.wall_clock_secs > 0.0, "scenario duration must be measured");
        assert!(
            result.avg.events_per_sec > 0.0,
            "offline runs report simulator throughput since PR 8"
        );
        assert!(result.per_seed.iter().all(|m| m.wall_clock_secs > 0.0));
        assert!(result.avg.per_shard.is_empty());
    }

    #[test]
    fn scenario_names_are_unique() {
        let registry = ScenarioRegistry::standard();
        let mut names: Vec<_> = registry.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "scenario names must be unique");
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_names_are_rejected() {
        let mut registry = ScenarioRegistry::standard();
        let clone = registry.iter().next().unwrap().clone();
        registry.push(clone);
    }

    #[test]
    fn extended_scenarios_run_and_produce_metrics() {
        // Scaled-down copies of the extended shapes: the point is that every new
        // workload shape actually executes end-to-end, not the absolute numbers.
        let registry = ScenarioRegistry::standard();
        for name in ["bursty-C-n4", "hotspot-D-n4", "ring-B-n4", "pipeline-A-n4"] {
            let mut scenario = registry.get(name).expect(name).clone();
            scenario.config.events_per_process = 6;
            scenario.config.seeds = vec![1];
            let result = scenario.run();
            assert!(result.avg.total_events > 0, "{name} must simulate events");
            assert!(result.avg.program_time > 0.0);
        }
    }

    #[test]
    fn family_names_round_trip() {
        for family in [
            ScenarioFamily::Paper,
            ScenarioFamily::CommFrequency,
            ScenarioFamily::Extended,
            ScenarioFamily::Throughput,
            ScenarioFamily::Overhead,
            ScenarioFamily::Custom,
            ScenarioFamily::Deploy,
            ScenarioFamily::Hotpath,
            ScenarioFamily::Fleet,
        ] {
            assert_eq!(ScenarioFamily::from_name(family.name()), Some(family));
        }
        assert_eq!(ScenarioFamily::from_name("nope"), None);
    }

    #[test]
    fn fleet_family_covers_the_advertised_shapes() {
        let registry = ScenarioRegistry::standard();
        assert!(
            registry.family(ScenarioFamily::Fleet).count() >= 8,
            "the fleet family must ship at least eight scenarios"
        );
        // The headline fleet (all six properties) is measured at 1 AND 4 shards.
        for n_shards in [1usize, 4] {
            let name = format!("fleet-ABCDEF-sh{n_shards}");
            let s = registry.get(&name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.family, ScenarioFamily::Fleet);
            let fleet = s.fleet.as_ref().expect("fleet scenarios carry members");
            assert_eq!(fleet.len(), 6);
            assert_eq!(fleet.joined_name(), "A+B+C+D+E+F");
            assert_eq!(s.stream.unwrap().n_shards, n_shards);
            // The lead member shapes the workload.
            assert_eq!(s.config.property.name(), "A");
        }
        // A no-opt variant keeps the aggregation-off transport path measured.
        let noopt = registry.get("fleet-ABCDEF-sh4-noopt").expect("noopt fleet");
        assert_eq!(noopt.options, MonitorOptions::ALL_OFF);
        // Fleet sizes 2, 3, 4 and 6 are all present (the amortization curve
        // needs intermediate points).
        let sizes: std::collections::BTreeSet<usize> = registry
            .family(ScenarioFamily::Fleet)
            .map(|s| s.fleet.as_ref().unwrap().len())
            .collect();
        assert!(sizes.is_superset(&[2, 3, 4, 6].into()), "got {sizes:?}");
    }

    #[test]
    fn small_fleet_scenario_runs_end_to_end() {
        let registry = ScenarioRegistry::standard();
        let mut scenario = registry.get("fleet-AB-sh4").expect("registered").clone();
        scenario.config.events_per_process = 4;
        scenario.stream = Some(StreamParams::sized(8, 2));
        let result = scenario.run();
        assert_eq!(result.avg.fleet_size, 2);
        assert_eq!(result.avg.fleet_per_property.len(), 2);
        assert!(result.avg.wall_clock_secs > 0.0);
        assert!(result.avg.fleet_solo_wall_clock_secs > 0.0);
        assert!(result.avg.events_per_sec > 0.0);
        assert!(result.detected_verdicts.contains(&dlrv_ltl::Verdict::True));
    }

    #[test]
    fn custom_family_covers_the_advertised_patterns() {
        let registry = ScenarioRegistry::standard();
        assert!(
            registry.family(ScenarioFamily::Custom).count() >= 8,
            "the custom family must ship at least eight scenarios"
        );
        for scenario in registry.family(ScenarioFamily::Custom) {
            assert!(scenario.name.starts_with("custom-"), "{}", scenario.name);
            assert!(scenario.stream.is_none());
            let spec = &scenario.config.property;
            assert!(spec.paper_property().is_none(), "{}: must be an LTL spec", scenario.name);
            assert!(
                spec.min_processes() <= scenario.config.n_processes,
                "{}: process count too small for its atoms",
                scenario.name
            );
        }
        // The stress entry reaches the repository's largest process count.
        let stress = registry.get("custom-stress-n8").expect("stress scenario");
        assert_eq!(stress.config.n_processes, 8);
    }

    #[test]
    fn custom_scenarios_run_end_to_end() {
        // Scaled-down copies: every custom formula must drive workload generation,
        // simulation and decentralized monitoring to a deterministic conclusion.
        let registry = ScenarioRegistry::standard();
        for name in ["custom-reqack-n2", "custom-mutex-n2", "custom-nested-until-n3"] {
            let mut scenario = registry.get(name).expect(name).clone();
            scenario.config.events_per_process = 5;
            scenario.config.seeds = vec![1];
            let result = scenario.run();
            assert!(result.avg.total_events > 0, "{name} must simulate events");
            assert!(result.avg.program_time > 0.0, "{name}");
        }
        // The goal tail drives both critical sections true concurrently, so the
        // mutual-exclusion property must be detected as violated.
        let mut mutex = registry.get("custom-mutex-n2").expect("mutex").clone();
        mutex.config.events_per_process = 6;
        mutex.config.seeds = vec![1];
        let result = mutex.run();
        assert!(
            result.detected_verdicts.contains(&dlrv_ltl::Verdict::False),
            "goal tail must force a mutual-exclusion violation, got {:?}",
            result.detected_verdicts
        );
    }

    #[test]
    fn overhead_family_pairs_every_property() {
        // Each property has an opts-on and an opts-off member with identical
        // workloads (same config, same seeds) — the A/B contract of `--target
        // overhead`: any metric difference within a pair is due to the §4.3 switches.
        let registry = ScenarioRegistry::standard();
        for property in PaperProperty::ALL {
            let on = registry
                .get(&format!("overhead-{}-opts", property.name()))
                .expect("opts-on member");
            let off = registry
                .get(&format!("overhead-{}-noopt", property.name()))
                .expect("opts-off member");
            assert_eq!(on.family, ScenarioFamily::Overhead);
            assert_eq!(off.family, ScenarioFamily::Overhead);
            assert_eq!(on.config, off.config, "{property}: pair must share traces");
            assert_eq!(on.config.n_processes, 4);
            assert_eq!(on.options, MonitorOptions::default());
            assert_eq!(off.options, MonitorOptions::ALL_OFF);
            assert!(on.stream.is_none() && off.stream.is_none());
        }
        assert_eq!(registry.family(ScenarioFamily::Overhead).count(), 12);
    }
}
