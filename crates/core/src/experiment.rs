//! The experiment runner: one call per data point of the evaluation chapter.
//!
//! An [`ExperimentConfig`] fixes a property, a process count and the workload
//! parameters; [`run_experiment`] generates the traces (for each seed), runs the
//! decentralized monitors on the discrete-event simulator, aggregates the paper's
//! metrics and averages them over the seeds — exactly how the thesis reports its
//! figures ("we have replicated the experiments three times with different randomly
//! generated traces and averaged the results").

use crate::spec::{CompiledProperty, PropertySpec};
use dlrv_automaton::MonitorAutomaton;
use dlrv_distsim::{initial_global_state, run_simulation, SimConfig};
use dlrv_ltl::{AtomRegistry, Verdict};
use dlrv_monitor::{DecentralizedMonitor, MonitorOptions, RunMetrics};
use dlrv_trace::{generate_workload, ArrivalModel, CommTopology, WorkloadConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Global thread-count override for experiment fan-out; 0 means "auto".
static JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on threads spawned by [`parallel_map_indexed`]: nested fan-outs run
    /// sequentially so `--jobs N` caps *total* concurrency instead of multiplying
    /// at every nesting level (sweep × seeds).
    static IN_PARALLEL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Sets the number of worker threads used to fan out independent seeds and
/// configurations (the `--jobs` knob of the `experiments` binary).  `0` restores the
/// default: the `DLRV_JOBS` environment variable if set, otherwise all available cores.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// Resolves the effective worker-thread count: [`set_jobs`] override, then the
/// `DLRV_JOBS` environment variable, then `std::thread::available_parallelism`.
///
/// Returns 1 when called from inside a [`parallel_map_indexed`] worker, so nested
/// fan-outs never exceed the configured cap.
pub fn effective_jobs() -> usize {
    if IN_PARALLEL_WORKER.with(|flag| flag.get()) {
        return 1;
    }
    let explicit = JOBS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(jobs) = std::env::var("DLRV_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
    {
        return jobs;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every index in `0..n` on up to `jobs` scoped worker threads and
/// returns the results in index order.
///
/// Work items must be independent; each is computed exactly once, so for a
/// deterministic `f` the result vector is identical for every `jobs` value — parallel
/// runs are byte-identical to sequential ones.  With `jobs <= 1` (or a single item)
/// everything runs on the caller's thread.
pub fn parallel_map_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker left a slot empty")
        })
        .collect()
}

/// Configuration of one experiment data point.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// The monitored property (a paper property A–F or a custom LTL spec).
    pub property: PropertySpec,
    /// Number of processes (devices).
    pub n_processes: usize,
    /// Number of internal events per process.
    pub events_per_process: usize,
    /// Mean wait between internal events (`Evtµ`, seconds).
    pub evt_mu: f64,
    /// Standard deviation of the internal-event wait (`Evtσ`).
    pub evt_sigma: f64,
    /// Mean wait between communication events (`Commµ`); `None` disables
    /// communication.
    pub comm_mu: Option<f64>,
    /// Standard deviation of the communication wait (`Commσ`).
    pub comm_sigma: f64,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// How internal-event wait times are drawn (the paper uses [`ArrivalModel::Normal`]).
    pub arrival: ArrivalModel,
    /// Who communication events are addressed to (the paper uses
    /// [`CommTopology::Broadcast`]).
    pub topology: CommTopology,
}

impl ExperimentConfig {
    /// The paper's default setting (`Evtµ = Commµ = 3 s`, `σ = 1 s`, three seeds).
    pub fn paper_default(property: impl Into<PropertySpec>, n_processes: usize) -> Self {
        ExperimentConfig {
            property: property.into(),
            n_processes,
            events_per_process: 20,
            evt_mu: 3.0,
            evt_sigma: 1.0,
            comm_mu: Some(3.0),
            comm_sigma: 1.0,
            seeds: vec![1, 2, 3],
            arrival: ArrivalModel::Normal,
            topology: CommTopology::Broadcast,
        }
    }

    /// A scaled-down configuration for fast test/bench runs.
    pub fn small(property: impl Into<PropertySpec>, n_processes: usize) -> Self {
        ExperimentConfig {
            events_per_process: 8,
            seeds: vec![1],
            ..Self::paper_default(property, n_processes)
        }
    }

    /// The workload-generator parameters for one seed (also used by the throughput
    /// runner and the stream-equivalence test, which generate one workload per
    /// streamed session).
    pub fn workload_config(&self, seed: u64) -> WorkloadConfig {
        // Initial channel values are chosen per property so that the property is
        // neither trivially violated nor trivially satisfied at the initial global
        // state (the paper's traces encode this in the trace files): until-style
        // properties need their left-hand side to hold initially.  The rule lives in
        // [`PropertySpec::initial_channels`], which covers custom LTL specs too.
        let (initial_p, initial_q) = self.property.initial_channels();
        WorkloadConfig {
            n_processes: self.n_processes,
            events_per_process: self.events_per_process,
            evt_mu: self.evt_mu,
            evt_sigma: self.evt_sigma,
            comm_mu: self.comm_mu,
            comm_sigma: self.comm_sigma,
            seed,
            goal_tail_fraction: 0.2,
            initial_p,
            initial_q,
            arrival: self.arrival,
            topology: self.topology,
        }
    }
}

/// The averaged outcome of an experiment (one point of a paper figure).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// Metric averages over the seeds.
    pub avg: RunMetrics,
    /// Per-seed metrics.
    pub per_seed: Vec<RunMetrics>,
    /// Union of detected ⊤/⊥ verdicts over all seeds.
    pub detected_verdicts: BTreeSet<Verdict>,
}

/// Runs `config` once per seed with the given optimization options and averages the
/// metrics.
///
/// Seeds are independent, so they fan out across [`effective_jobs`] worker threads;
/// results are collected in seed order, making the output — including every per-seed
/// metric — byte-identical to a sequential run.
pub fn run_experiment_with_options(
    config: &ExperimentConfig,
    opts: MonitorOptions,
) -> ExperimentResult {
    let compiled = CompiledProperty::compile(&config.property, config.n_processes);
    let (automaton, registry) = (&compiled.automaton, &compiled.registry);

    let per_seed = parallel_map_indexed(config.seeds.len(), effective_jobs(), |i| {
        let workload = generate_workload(&config.workload_config(config.seeds[i]));
        run_single(&workload, registry, automaton, opts)
    });
    let mut detected = BTreeSet::new();
    for metrics in &per_seed {
        detected.extend(metrics.detected_final_verdicts.iter().copied());
    }

    let avg = average_metrics(&per_seed);
    ExperimentResult {
        config: config.clone(),
        avg,
        per_seed,
        detected_verdicts: detected,
    }
}

/// Runs `config` with the default optimizations.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    run_experiment_with_options(config, MonitorOptions::default())
}

/// Runs one workload under the simulator with decentralized monitors and collects the
/// run metrics.
pub fn run_single(
    workload: &dlrv_trace::Workload,
    registry: &Arc<AtomRegistry>,
    automaton: &Arc<MonitorAutomaton>,
    opts: MonitorOptions,
) -> RunMetrics {
    let started = std::time::Instant::now();
    let n = workload.config.n_processes;
    let initial_gstate = initial_global_state(workload, registry);
    let report = run_simulation(workload, registry, &SimConfig::default(), |i| {
        DecentralizedMonitor::new(i, n, automaton.clone(), registry.clone(), initial_gstate, opts)
    });
    let per_monitor: Vec<_> = report.monitors.iter().map(|m| m.metrics()).collect();
    let mut metrics = RunMetrics::aggregate(
        &per_monitor,
        report.program_events,
        report.program_messages,
        report.monitor_messages,
        report.program_end_time,
        report.monitoring_end_time,
    );
    // Real elapsed time of the run, so offline sweep/overhead/custom rows carry a
    // nonzero wall clock and throughput like the streamed families do (these are
    // the only fields of an offline record that vary run to run).
    metrics.wall_clock_secs = started.elapsed().as_secs_f64();
    if metrics.wall_clock_secs > 0.0 {
        metrics.events_per_sec = metrics.total_events as f64 / metrics.wall_clock_secs;
    }
    metrics.peak_rss_bytes = dlrv_obs::peak_rss_bytes().unwrap_or(0);
    metrics
}

/// Averages a slice of run metrics field-by-field (verdict sets are unioned).
///
/// Per-shard metrics average element-wise when every run used the same shard count
/// (the only configuration the registry produces); otherwise they are dropped.
pub fn average_metrics(runs: &[RunMetrics]) -> RunMetrics {
    if runs.is_empty() {
        return RunMetrics::default();
    }
    let k = runs.len() as f64;
    let mut avg = RunMetrics {
        n_processes: runs[0].n_processes,
        fleet_size: runs[0].fleet_size,
        ..RunMetrics::default()
    };
    for r in runs {
        avg.total_events += r.total_events;
        avg.monitor_messages += r.monitor_messages;
        avg.program_messages += r.program_messages;
        avg.total_global_views += r.total_global_views;
        avg.monitor_tokens += r.monitor_tokens;
        avg.peak_global_views += r.peak_global_views;
        avg.avg_delayed_events += r.avg_delayed_events;
        avg.delay_time_pct_per_gv += r.delay_time_pct_per_gv;
        avg.program_time += r.program_time;
        avg.monitor_extra_time += r.monitor_extra_time;
        avg.wall_clock_secs += r.wall_clock_secs;
        avg.events_per_sec += r.events_per_sec;
        avg.fleet_solo_wall_clock_secs += r.fleet_solo_wall_clock_secs;
        avg.fleet_marginal_cost_secs += r.fleet_marginal_cost_secs;
        // RSS is a high-water mark, not a rate: the max across runs, never a mean.
        avg.peak_rss_bytes = avg.peak_rss_bytes.max(r.peak_rss_bytes);
        avg.detected_final_verdicts
            .extend(r.detected_final_verdicts.iter().copied());
        avg.possible_verdicts.extend(r.possible_verdicts.iter().copied());
    }
    avg.total_events = (avg.total_events as f64 / k).round() as usize;
    avg.monitor_messages = (avg.monitor_messages as f64 / k).round() as usize;
    avg.program_messages = (avg.program_messages as f64 / k).round() as usize;
    avg.total_global_views = (avg.total_global_views as f64 / k).round() as usize;
    avg.monitor_tokens = (avg.monitor_tokens as f64 / k).round() as usize;
    avg.peak_global_views = (avg.peak_global_views as f64 / k).round() as usize;
    avg.avg_delayed_events /= k;
    avg.delay_time_pct_per_gv /= k;
    avg.program_time /= k;
    avg.monitor_extra_time /= k;
    avg.wall_clock_secs /= k;
    avg.events_per_sec /= k;
    avg.fleet_solo_wall_clock_secs /= k;
    avg.fleet_marginal_cost_secs /= k;
    avg.per_shard = average_shards(runs);
    avg.fleet_per_property = average_fleet_properties(runs);
    avg
}

/// Element-wise average of per-shard metrics across runs with identical shard counts.
fn average_shards(runs: &[RunMetrics]) -> Vec<dlrv_monitor::ShardMetrics> {
    let n_shards = runs[0].per_shard.len();
    if n_shards == 0 || runs.iter().any(|r| r.per_shard.len() != n_shards) {
        return Vec::new();
    }
    let k = runs.len() as f64;
    (0..n_shards)
        .map(|s| {
            let mut out = dlrv_monitor::ShardMetrics {
                shard: s,
                ..Default::default()
            };
            for r in runs {
                let m = &r.per_shard[s];
                out.sessions_opened += m.sessions_opened;
                out.sessions_closed += m.sessions_closed;
                out.events_processed += m.events_processed;
                out.batches += m.batches;
                out.max_batch_len = out.max_batch_len.max(m.max_batch_len);
                out.busy_secs += m.busy_secs;
                out.avg_queue_latency_secs += m.avg_queue_latency_secs;
                out.max_queue_latency_secs = out.max_queue_latency_secs.max(m.max_queue_latency_secs);
                out.backpressure_stalls += m.backpressure_stalls;
                out.routing_errors += m.routing_errors;
            }
            out.sessions_opened = (out.sessions_opened as f64 / k).round() as usize;
            out.sessions_closed = (out.sessions_closed as f64 / k).round() as usize;
            out.events_processed = (out.events_processed as f64 / k).round() as usize;
            out.batches = (out.batches as f64 / k).round() as usize;
            out.backpressure_stalls = (out.backpressure_stalls as f64 / k).round() as usize;
            out.routing_errors = (out.routing_errors as f64 / k).round() as usize;
            out.busy_secs /= k;
            out.avg_queue_latency_secs /= k;
            out
        })
        .collect()
}

/// Element-wise average of per-property fleet metrics across runs that monitored
/// the same fleet (same member names in the same order); otherwise dropped.
fn average_fleet_properties(runs: &[RunMetrics]) -> Vec<dlrv_monitor::FleetPropertyMetrics> {
    let first = &runs[0].fleet_per_property;
    if first.is_empty()
        || runs.iter().any(|r| {
            r.fleet_per_property.len() != first.len()
                || r.fleet_per_property
                    .iter()
                    .zip(first)
                    .any(|(a, b)| a.property != b.property)
        })
    {
        return Vec::new();
    }
    let k = runs.len() as f64;
    (0..first.len())
        .map(|p| {
            let mut out = dlrv_monitor::FleetPropertyMetrics {
                property: first[p].property.clone(),
                ..Default::default()
            };
            let mut detected = std::collections::BTreeSet::new();
            for r in runs {
                let m = &r.fleet_per_property[p];
                out.monitor_tokens += m.monitor_tokens;
                out.global_views += m.global_views;
                out.peak_global_views += m.peak_global_views;
                detected.extend(m.detected_final_verdicts.iter().copied());
                out.possible_verdicts.extend(m.possible_verdicts.iter().copied());
            }
            out.monitor_tokens = (out.monitor_tokens as f64 / k).round() as usize;
            out.global_views = (out.global_views as f64 / k).round() as usize;
            out.peak_global_views = (out.peak_global_views as f64 / k).round() as usize;
            // The averaged verdict is the combined verdict of the union, matching
            // how detected sets fold everywhere else (False > True > Unknown).
            out.verdict = dlrv_monitor::verdict_name(if detected.contains(&Verdict::False) {
                Verdict::False
            } else if detected.contains(&Verdict::True) {
                Verdict::True
            } else {
                Verdict::Unknown
            })
            .to_string();
            out.detected_final_verdicts = detected;
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::PaperProperty;

    #[test]
    fn small_experiment_produces_sane_metrics() {
        let cfg = ExperimentConfig::small(PaperProperty::B, 3);
        let result = run_experiment(&cfg);
        assert_eq!(result.per_seed.len(), 1);
        assert!(result.avg.total_events > 0);
        assert!(result.avg.program_time > 0.0);
        // The workload's goal tail makes all p true concurrently at the end, so the
        // reachability property B must be detected as satisfied.
        assert!(result.detected_verdicts.contains(&Verdict::True));
    }

    #[test]
    fn messages_grow_with_process_count() {
        let small = run_experiment(&ExperimentConfig::small(PaperProperty::C, 2));
        let large = run_experiment(&ExperimentConfig::small(PaperProperty::C, 4));
        assert!(
            large.avg.monitor_messages >= small.avg.monitor_messages,
            "more processes must not reduce monitoring messages ({} vs {})",
            large.avg.monitor_messages,
            small.avg.monitor_messages
        );
        assert!(large.avg.total_events > small.avg.total_events);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = parallel_map_indexed(17, jobs, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
        assert!(parallel_map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn nested_fan_out_runs_sequentially() {
        // Inside a worker thread the jobs budget is spent: nested parallel maps must
        // not multiply concurrency beyond the configured cap.
        let inner_jobs = parallel_map_indexed(4, 2, |_| effective_jobs());
        assert!(
            inner_jobs.iter().all(|&j| j == 1),
            "nested effective_jobs must be 1, got {inner_jobs:?}"
        );
    }

    // Single test for everything touching the global jobs knob, so concurrently
    // running tests never observe each other's overrides.
    #[test]
    fn jobs_knob_and_parallel_determinism() {
        assert!(effective_jobs() >= 1);
        set_jobs(3);
        assert_eq!(effective_jobs(), 3);

        let cfg = ExperimentConfig {
            seeds: vec![1, 2, 3, 4, 5, 6],
            events_per_process: 6,
            ..ExperimentConfig::paper_default(PaperProperty::C, 3)
        };
        set_jobs(1);
        let sequential = run_experiment(&cfg);
        set_jobs(4);
        let parallel = run_experiment(&cfg);
        set_jobs(0);
        // Full structural equality: every per-seed metric, the averages and the
        // detected verdicts are identical whatever the thread count.  Wall clock,
        // throughput and RSS are real machine measurements — the documented
        // run-to-run-varying fields — so they are scrubbed before comparing.
        fn scrubbed(mut r: ExperimentResult) -> ExperimentResult {
            let scrub = |m: &mut RunMetrics| {
                m.wall_clock_secs = 0.0;
                m.events_per_sec = 0.0;
                m.peak_rss_bytes = 0;
            };
            scrub(&mut r.avg);
            r.per_seed.iter_mut().for_each(scrub);
            r
        }
        assert_eq!(scrubbed(sequential), scrubbed(parallel));
    }

    #[test]
    fn average_metrics_is_elementwise() {
        let a = RunMetrics {
            monitor_messages: 10,
            avg_delayed_events: 2.0,
            program_time: 30.0,
            ..RunMetrics::default()
        };
        let b = RunMetrics {
            monitor_messages: 20,
            avg_delayed_events: 4.0,
            program_time: 50.0,
            ..RunMetrics::default()
        };
        let avg = average_metrics(&[a, b]);
        assert_eq!(avg.monitor_messages, 15);
        assert_eq!(avg.avg_delayed_events, 3.0);
        assert_eq!(avg.program_time, 40.0);
        assert_eq!(average_metrics(&[]), RunMetrics::default());
    }
}
