//! Named counters, gauges and log₂-bucketed histograms with JSON snapshots.
//!
//! Handles are interned by name in a global [`Registry`] and live for the
//! whole process (`Box::leak`); call sites cache the `&'static` handle in a
//! `OnceLock` via the `counter!` / `gauge!` / `histogram!` macros so the
//! registry mutex is taken once per call site, not per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use dlrv_json::{object, Json, JsonError};

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// values `v` with `2^(i-1) ≤ v < 2^i`, and the last bucket additionally
/// absorbs everything above.  64 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Monotonically increasing event count.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Adds 1 when observability is enabled; no-op (one relaxed load) otherwise.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` when observability is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (reads regardless of the enable gate).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The interned metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A last-written-wins instantaneous value (e.g. live view count, queue depth).
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge when observability is enabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to at least `v` (a high-water mark) when enabled.
    #[inline]
    pub fn raise_to(&self, v: i64) {
        if crate::enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The interned metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Log₂-bucketed histogram of `u64` samples (canonically: latency in
/// nanoseconds).  Recording is wait-free: one bucket `fetch_add` plus
/// count/sum/min/max updates, all `Relaxed`.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Index of the log₂ bucket holding `v`: 0 for 0, else `64 - leading_zeros`,
/// clamped into range (the top bucket absorbs the tail).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`0` for bucket 0, else `2^i - 1`;
/// `u64::MAX` for the top bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample when observability is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The interned metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, slot) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = slot.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: self.name.to_string(),
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`], mergeable and JSON-serializable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping add on overflow is acceptable for stats).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given name.
    pub fn empty(name: impl Into<String>) -> Self {
        HistogramSnapshot {
            name: name.into(),
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Value at quantile `q` in `[0, 1]`, estimated as the inclusive upper
    /// bound of the bucket containing the rank-`⌈q·count⌉` sample.  Returns 0
    /// for an empty histogram.  Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Element-wise merge: bucket-by-bucket addition, so merging is
    /// associative and commutative (pinned by proptest).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = self.buckets;
        for (b, o) in buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.wrapping_add(*o);
        }
        HistogramSnapshot {
            name: self.name.clone(),
            buckets,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: match (self.count, other.count) {
                (0, _) => other.min,
                (_, 0) => self.min,
                _ => self.min.min(other.min),
            },
            max: self.max.max(other.max),
        }
    }

    /// Serializes to JSON.  Buckets are stored sparsely as `[index, count]`
    /// pairs to keep snapshots compact.
    pub fn to_json(&self) -> Json {
        let sparse: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Array(vec![Json::from(i as u64), Json::from(c)]))
            .collect();
        object([
            ("name", Json::Str(self.name.clone())),
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("min", Json::from(self.min)),
            ("max", Json::from(self.max)),
            ("p50", Json::from(self.quantile(0.50))),
            ("p90", Json::from(self.quantile(0.90))),
            ("p99", Json::from(self.quantile(0.99))),
            ("buckets", Json::Array(sparse)),
        ])
    }

    /// Parses the [`to_json`](Self::to_json) form (the derived p50/p90/p99
    /// fields are recomputed, not trusted).
    pub fn from_json(v: &Json) -> Result<HistogramSnapshot, JsonError> {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for pair in v.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return Err(JsonError::msg("histogram bucket pair must be [index, count]"));
            }
            let i = pair[0].as_usize()?;
            if i >= HISTOGRAM_BUCKETS {
                return Err(JsonError::msg("histogram bucket index out of range"));
            }
            buckets[i] = pair[1].as_u64()?;
        }
        Ok(HistogramSnapshot {
            name: v.get("name")?.as_str()?.to_string(),
            buckets,
            count: v.get("count")?.as_u64()?,
            sum: v.get("sum")?.as_u64()?,
            min: v.get("min")?.as_u64()?,
            max: v.get("max")?.as_u64()?,
        })
    }
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Process-global metric registry; interns handles by name.
pub struct Registry {
    slots: Mutex<BTreeMap<&'static str, Slot>>,
}

impl Registry {
    fn new() -> Registry {
        Registry { slots: Mutex::new(BTreeMap::new()) }
    }

    // The registry is never left in a partial state, so a panic elsewhere while
    // the lock was held (e.g. in a test) does not invalidate it — recover from
    // poisoning instead of cascading.
    fn slots(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Slot>> {
        self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Interns (or retrieves) the counter named `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a programming error, caught on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let got = match self.slots().entry(name).or_insert_with(|| {
            Slot::Counter(Box::leak(Box::new(Counter { name, value: AtomicU64::new(0) })))
        }) {
            Slot::Counter(c) => Some(*c),
            _ => None,
        };
        got.unwrap_or_else(|| panic!("metric {name:?} already registered with a different kind"))
    }

    /// Interns (or retrieves) the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let got = match self.slots().entry(name).or_insert_with(|| {
            Slot::Gauge(Box::leak(Box::new(Gauge { name, value: AtomicI64::new(0) })))
        }) {
            Slot::Gauge(g) => Some(*g),
            _ => None,
        };
        got.unwrap_or_else(|| panic!("metric {name:?} already registered with a different kind"))
    }

    /// Interns (or retrieves) the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let got = match self.slots().entry(name).or_insert_with(|| {
            Slot::Histogram(Box::leak(Box::new(Histogram {
                name,
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            })))
        }) {
            Slot::Histogram(h) => Some(*h),
            _ => None,
        };
        got.unwrap_or_else(|| panic!("metric {name:?} already registered with a different kind"))
    }

    /// A deterministic (name-sorted) copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots();
        let mut snap = MetricsSnapshot::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => snap.counters.push((name.to_string(), c.get())),
                Slot::Gauge(g) => snap.gauges.push((name.to_string(), g.get())),
                Slot::Histogram(h) => snap.histograms.push(h.snapshot()),
            }
        }
        snap
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global [`Registry`].
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Point-in-time copy of the whole registry, JSON round-trippable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes as `{"counters": {...}, "gauges": {...}, "histograms": [...]}`.
    pub fn to_json(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::from(*v)))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), Json::Int(i128::from(*v))))
            .collect();
        Json::Object(vec![
            ("counters".to_string(), Json::Object(counters)),
            ("gauges".to_string(), Json::Object(gauges)),
            (
                "histograms".to_string(),
                Json::Array(self.histograms.iter().map(HistogramSnapshot::to_json).collect()),
            ),
        ])
    }

    /// Parses the [`to_json`](Self::to_json) form.
    pub fn from_json(v: &Json) -> Result<MetricsSnapshot, JsonError> {
        let obj_pairs = |j: &Json| -> Result<Vec<(String, Json)>, JsonError> {
            match j {
                Json::Object(pairs) => Ok(pairs.clone()),
                _ => Err(JsonError::msg("expected object")),
            }
        };
        let mut counters = Vec::new();
        for (n, val) in obj_pairs(v.get("counters")?)? {
            counters.push((n, val.as_u64()?));
        }
        let mut gauges = Vec::new();
        for (n, val) in obj_pairs(v.get("gauges")?)? {
            let g = match val {
                Json::Int(i) => i64::try_from(i)
                    .map_err(|_| JsonError::msg(format!("gauge {n} out of i64 range")))?,
                _ => return Err(JsonError::msg(format!("gauge {n} must be an integer"))),
            };
            gauges.push((n, g));
        }
        let mut histograms = Vec::new();
        for h in v.get("histograms")?.as_array()? {
            histograms.push(HistogramSnapshot::from_json(h)?);
        }
        Ok(MetricsSnapshot { counters, gauges, histograms })
    }
}

/// Interns a [`Counter`] once per call site (the `OnceLock` lives in the
/// expansion), returning the cached `&'static Counter` thereafter.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Interns a [`Gauge`] once per call site (see `counter!`).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Interns a [`Histogram`] once per call site (see `counter!`).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_bounds_agree() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn counters_and_gauges_respect_enable_gate() {
        let _gate = crate::test_gate();
        crate::set_enabled(false);
        let c = registry().counter("test.gate.counter");
        let before = c.get();
        c.inc();
        assert_eq!(c.get(), before, "disabled counter must not move");
        crate::set_enabled(true);
        c.inc();
        assert_eq!(c.get(), before + 1);
        crate::set_enabled(false);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let _gate = crate::test_gate();
        crate::set_enabled(true);
        let h = registry().histogram("test.quantiles");
        for v in [1u64, 5, 9, 120, 4096, 70_000] {
            h.record(v);
        }
        crate::set_enabled(false);
        let s = h.snapshot();
        let (p50, p90, p99) = (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= s.max);
        assert_eq!(s.count, 6);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut s = HistogramSnapshot::empty("rt");
        s.buckets[3] = 4;
        s.buckets[10] = 2;
        s.count = 6;
        s.sum = 2100;
        s.min = 5;
        s.max = 900;
        let back = HistogramSnapshot::from_json(&s.to_json()).expect("parse");
        assert_eq!(s, back);

        let snap = MetricsSnapshot {
            counters: vec![("a".into(), 3), ("b".into(), 0)],
            gauges: vec![("g".into(), -7)],
            histograms: vec![s],
        };
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(snap, back);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        registry().counter("test.kind.conflict");
        registry().gauge("test.kind.conflict");
    }
}
