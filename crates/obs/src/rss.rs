//! Process memory probes (Linux `/proc`-based; `None` elsewhere).

/// Peak resident set size of this process in bytes, from the `VmHWM` line of
/// `/proc/self/status` (a high-water mark maintained by the kernel — it never
/// decreases, which is exactly the bounded-memory observable soak tests need).
///
/// Returns `None` on platforms without procfs or when parsing fails; callers
/// treat that as "not measured" (recorded as 0 in schema-v1 results).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parses the `VmHWM:    12345 kB` line out of a `/proc/<pid>/status` document.
pub fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_procfs_status_document() {
        let doc = "Name:\tmonitord\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nThreads:\t3\n";
        assert_eq!(parse_vm_hwm(doc), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name: x\n"), None);
    }

    #[test]
    fn live_probe_reports_a_plausible_peak() {
        // On Linux CI this must succeed and be at least a megabyte.
        if let Some(bytes) = peak_rss_bytes() {
            assert!(bytes > 1 << 20, "implausible peak RSS: {bytes}");
        }
    }
}
