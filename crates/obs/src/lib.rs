//! # dlrv-obs — unified observability for the dlrv workspace
//!
//! A dependency-free (stdlib + `dlrv-json` only) observability layer shared by
//! every dlrv crate:
//!
//! * **Metrics registry** ([`metrics`]): named [`Counter`]s, [`Gauge`]s and
//!   log₂-bucketed latency [`Histogram`]s with p50/p90/p99 snapshots.  Handles
//!   are interned once and cached at the call site (see `counter!`,
//!   `histogram!`), so the hot path is a single relaxed atomic op.
//! * **Structured trace** ([`trace`]): per-thread ring buffers of spans and
//!   events with monotonic timestamps, drained as JSONL.
//! * **Leveled logging** ([`log`]): `DLRV_LOG`-controlled stderr logging with
//!   per-process prefixes and monotonic timestamps (used by `monitord`).
//! * **Process probes** ([`rss`]): `peak_rss_bytes()` from `/proc/self/status`.
//!
//! ## The enable gate
//!
//! All recording is gated on one global [`AtomicBool`]
//! read with `Relaxed` ordering.  Disabled (the default unless `DLRV_OBS=1`),
//! every instrumentation point is one atomic load and an untaken branch —
//! cheap enough to leave in hot paths unconditionally.  Nothing observable
//! feeds back into monitoring decisions, so verdicts and schema-v1 results are
//! byte-identical whether observability is on or off (pinned by
//! `tests/obs_invariance.rs` in the umbrella crate).

#![forbid(unsafe_code)]

pub mod log;
pub mod metrics;
pub mod rss;
pub mod trace;

pub use log::{log_level, set_log_level, set_log_prefix, LogLevel};
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use rss::peak_rss_bytes;
pub use trace::{drain_trace_jsonl, span, trace_event, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Returns whether observability recording is on.
///
/// The first call consults the `DLRV_OBS` environment variable (`1`/`true`/`on`
/// enable); afterwards [`set_enabled`] is the only way to flip it.  The check
/// itself is a single `Relaxed` atomic load.
#[inline]
pub fn enabled() -> bool {
    ENV_INIT.get_or_init(|| {
        if let Ok(v) = std::env::var("DLRV_OBS") {
            let on = matches!(v.as_str(), "1" | "true" | "on");
            ENABLED.store(on, Ordering::Relaxed);
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Turns observability recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENV_INIT.get_or_init(|| ());
    ENABLED.store(on, Ordering::Relaxed);
}

/// Unit tests toggle the process-global enable flag; they serialize on this
/// lock so cargo's parallel test runner cannot interleave them.
#[cfg(test)]
pub(crate) static TEST_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    TEST_GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first observability call in this process.
///
/// All trace timestamps and log timestamps share this epoch, so traces from
/// different threads interleave consistently.
pub fn now_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
