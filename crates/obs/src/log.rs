//! Leveled stderr logging with monotonic timestamps and a per-process prefix.
//!
//! The level comes from the `DLRV_LOG` environment variable (`error`, `warn`,
//! `info`, `debug`, `trace`; default `warn`) and can be overridden with
//! [`set_log_level`] (how `monitord --log-level` works).  Output format:
//!
//! ```text
//! [    0.001234s] [daemon2] INFO  accepted control connection
//! ```
//!
//! Each line is written with a single `write!` so concurrent daemons
//! interleave whole lines, never fragments.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or protocol-violating conditions.
    Error = 0,
    /// Suspicious but survivable conditions (the default threshold).
    Warn = 1,
    /// Lifecycle milestones (listen, handshake, finish, shutdown).
    Info = 2,
    /// Per-frame / per-event detail.
    Debug = 3,
    /// Everything, including hot-loop internals.
    Trace = 4,
}

impl LogLevel {
    /// Parses a level name (case-insensitive); `None` for unknown names.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            "trace" => Some(LogLevel::Trace),
            _ => None,
        }
    }

    /// Fixed-width display name.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Error => "ERROR",
            LogLevel::Warn => "WARN ",
            LogLevel::Info => "INFO ",
            LogLevel::Debug => "DEBUG",
            LogLevel::Trace => "TRACE",
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Error,
            1 => LogLevel::Warn,
            2 => LogLevel::Info,
            3 => LogLevel::Debug,
            _ => LogLevel::Trace,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Warn as u8);
static LEVEL_INIT: OnceLock<()> = OnceLock::new();
static PREFIX: OnceLock<Mutex<String>> = OnceLock::new();

fn prefix_slot() -> &'static Mutex<String> {
    PREFIX.get_or_init(|| Mutex::new(String::new()))
}

/// The current threshold: messages at this severity or higher are emitted.
///
/// First call reads `DLRV_LOG`; afterwards only [`set_log_level`] changes it.
pub fn log_level() -> LogLevel {
    LEVEL_INIT.get_or_init(|| {
        if let Some(l) = std::env::var("DLRV_LOG").ok().as_deref().and_then(LogLevel::parse) {
            LEVEL.store(l as u8, Ordering::Relaxed);
        }
    });
    LogLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Overrides the threshold (wins over `DLRV_LOG`).
pub fn set_log_level(level: LogLevel) {
    LEVEL_INIT.get_or_init(|| ());
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Sets the per-process prefix shown in every line (e.g. `daemon3`).
pub fn set_log_prefix(prefix: impl Into<String>) {
    *prefix_slot().lock().expect("log prefix poisoned") = prefix.into();
}

/// Emits one log line at `level` if it clears the threshold.
pub fn log(level: LogLevel, message: std::fmt::Arguments<'_>) {
    if level > log_level() {
        return;
    }
    let secs = crate::now_nanos() as f64 / 1e9;
    let prefix = prefix_slot().lock().expect("log prefix poisoned").clone();
    let mut err = std::io::stderr().lock();
    let _ = if prefix.is_empty() {
        writeln!(err, "[{secs:>12.6}s] {} {message}", level.label())
    } else {
        writeln!(err, "[{secs:>12.6}s] [{prefix}] {} {message}", level.label())
    };
}

/// Logs at [`LogLevel::Error`].
#[macro_export]
macro_rules! obs_error {
    ($($arg:tt)*) => { $crate::log::log($crate::LogLevel::Error, format_args!($($arg)*)) };
}

/// Logs at [`LogLevel::Warn`].
#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => { $crate::log::log($crate::LogLevel::Warn, format_args!($($arg)*)) };
}

/// Logs at [`LogLevel::Info`].
#[macro_export]
macro_rules! obs_info {
    ($($arg:tt)*) => { $crate::log::log($crate::LogLevel::Info, format_args!($($arg)*)) };
}

/// Logs at [`LogLevel::Debug`].
#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => { $crate::log::log($crate::LogLevel::Debug, format_args!($($arg)*)) };
}

/// Logs at [`LogLevel::Trace`].
#[macro_export]
macro_rules! obs_trace {
    ($($arg:tt)*) => { $crate::log::log($crate::LogLevel::Trace, format_args!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_round_trip() {
        for l in [LogLevel::Error, LogLevel::Warn, LogLevel::Info, LogLevel::Debug, LogLevel::Trace]
        {
            assert_eq!(LogLevel::parse(l.label().trim()), Some(l));
        }
        assert_eq!(LogLevel::parse("bogus"), None);
        assert_eq!(LogLevel::parse("WARNING"), Some(LogLevel::Warn));
    }

    #[test]
    fn severity_ordering_matches_threshold_semantics() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert!(LogLevel::Debug < LogLevel::Trace);
    }
}
