//! Ring-buffered structured trace: spans and events with monotonic timestamps.
//!
//! Each thread records into its own fixed-capacity ring buffer (no cross-thread
//! contention on the hot path beyond an uncontended mutex), registered once in
//! a global list so [`drain_trace_jsonl`] can collect everything.  When a ring
//! fills, the oldest entries are overwritten and a drop counter ticks — tracing
//! never blocks or allocates unboundedly.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use dlrv_json::{object, Json};

/// Per-thread ring capacity (entries, not bytes).
pub const RING_CAPACITY: usize = 4096;

/// One trace entry: an instantaneous event or a completed span.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Monotonic nanoseconds since the process observability epoch
    /// ([`crate::now_nanos`]); for spans, the *start* time.
    pub ts_nanos: u64,
    /// Small integer id assigned to the recording thread in registration order.
    pub thread: u64,
    /// Static name (span or event label, e.g. `"monitor.merge_views"`).
    pub name: &'static str,
    /// Span duration in nanoseconds; `None` for instantaneous events.
    pub dur_nanos: Option<u64>,
    /// Optional free-form detail (kept short; owned because it outlives the caller).
    pub detail: Option<String>,
}

impl TraceEntry {
    /// One JSONL line: `{"ts":…,"thread":…,"name":…,["dur":…][,"detail":…]}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("ts", Json::from(self.ts_nanos)),
            ("thread", Json::from(self.thread)),
            ("name", Json::Str(self.name.to_string())),
        ];
        if let Some(d) = self.dur_nanos {
            fields.push(("dur", Json::from(d)));
        }
        if let Some(detail) = &self.detail {
            fields.push(("detail", Json::Str(detail.clone())));
        }
        object(fields)
    }
}

struct Ring {
    entries: Vec<TraceEntry>,
    next: usize,
    wrapped: bool,
}

impl Ring {
    fn push(&mut self, e: TraceEntry) {
        if self.entries.len() < RING_CAPACITY {
            self.entries.push(e);
        } else {
            self.entries[self.next] = e;
            self.wrapped = true;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        self.next = (self.next + 1) % RING_CAPACITY;
    }

    /// Entries in recording order (oldest first).
    fn ordered(&self) -> Vec<TraceEntry> {
        if !self.wrapped {
            self.entries.clone()
        } else {
            let mut out = Vec::with_capacity(self.entries.len());
            out.extend_from_slice(&self.entries[self.next..]);
            out.extend_from_slice(&self.entries[..self.next]);
            out
        }
    }
}

static DROPPED: AtomicU64 = AtomicU64::new(0);
static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: (Arc<Mutex<Ring>>, Cell<u64>) = {
        let ring = Arc::new(Mutex::new(Ring {
            entries: Vec::new(),
            next: 0,
            wrapped: false,
        }));
        let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        rings().lock().expect("trace ring list poisoned").push(Arc::clone(&ring));
        (ring, Cell::new(id))
    };
}

fn record(name: &'static str, ts_nanos: u64, dur_nanos: Option<u64>, detail: Option<String>) {
    LOCAL.with(|(ring, id)| {
        let entry = TraceEntry {
            ts_nanos,
            thread: id.get(),
            name,
            dur_nanos,
            detail,
        };
        ring.lock().expect("trace ring poisoned").push(entry);
    });
}

/// Records an instantaneous trace event (no-op when observability is off).
#[inline]
pub fn trace_event(name: &'static str, detail: Option<String>) {
    if crate::enabled() {
        record(name, crate::now_nanos(), None, detail);
    }
}

/// Starts a span: the returned guard records a [`TraceEntry`] *and* feeds the
/// duration into the histogram of the same name when dropped.  When
/// observability is off the guard is inert (one atomic load at construction).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: if crate::enabled() {
            Some((crate::now_nanos(), Instant::now()))
        } else {
            None
        },
    }
}

/// RAII guard produced by [`span`]; records on drop.
pub struct SpanGuard {
    name: &'static str,
    start: Option<(u64, Instant)>,
}

impl SpanGuard {
    /// Whether this guard will record anything (observability was on at creation).
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((ts, started)) = self.start.take() {
            let dur = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::registry().histogram(self.name).record(dur);
            record(self.name, ts, Some(dur), None);
        }
    }
}

/// Total entries overwritten because a ring was full.
pub fn dropped_entries() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Collects every thread's ring, merges by timestamp, and renders one JSON
/// object per line (JSONL).  Buffers are left drained.
pub fn drain_trace_jsonl() -> String {
    let mut all: Vec<TraceEntry> = Vec::new();
    for ring in rings().lock().expect("trace ring list poisoned").iter() {
        let mut ring = ring.lock().expect("trace ring poisoned");
        all.extend(ring.ordered());
        ring.entries.clear();
        ring.next = 0;
        ring.wrapped = false;
    }
    all.sort_by_key(|e| (e.ts_nanos, e.thread));
    let mut out = String::new();
    for e in &all {
        out.push_str(&e.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_events_drain_in_time_order() {
        let _gate = crate::test_gate();
        crate::set_enabled(true);
        {
            let _g = span("test.trace.span");
            trace_event("test.trace.event", Some("hello".into()));
        }
        crate::set_enabled(false);
        let jsonl = drain_trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines.len() >= 2, "expected at least two entries, got {jsonl:?}");
        let mut last_ts = 0u64;
        let mut saw_span = false;
        for line in lines {
            let v = Json::parse(line).expect("valid JSONL line");
            let ts = v.get("ts").and_then(Json::as_u64).expect("ts");
            assert!(ts >= last_ts);
            last_ts = ts;
            if v.get_opt("dur").expect("object").is_some() {
                saw_span = true;
            }
        }
        assert!(saw_span, "span entry must carry a duration");
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _gate = crate::test_gate();
        crate::set_enabled(false);
        drop(span("test.trace.disabled"));
        trace_event("test.trace.disabled.event", None);
        let jsonl = drain_trace_jsonl();
        assert!(
            !jsonl.contains("test.trace.disabled"),
            "disabled trace leaked entries: {jsonl}"
        );
    }
}
