//! Property tests of the histogram laws the report pipeline relies on:
//! every sample lands in the bucket whose bounds contain it, quantiles are
//! monotone and bracketed by min/max, and snapshot merge is an associative,
//! commutative element-wise addition (so per-shard / per-daemon histograms can
//! be folded in any order).

use dlrv_obs::metrics::{bucket_index, bucket_upper_bound};
use dlrv_obs::HistogramSnapshot;
use proptest::prelude::*;

/// Expands a seed into `n` samples spread over the full dynamic range (mixing
/// small and huge values so many distinct buckets are hit).
fn samples_from(mut seed: u64, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let magnitude = (seed >> 58) as u32; // 0..64
        out.push((seed >> 20) >> (63 - magnitude.min(63)));
    }
    out
}

/// Builds a snapshot directly (not through the global registry, so property
/// cases stay independent of each other and of other tests).
fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let mut s = HistogramSnapshot::empty("prop");
    for &v in samples {
        s.buckets[bucket_index(v)] += 1;
        s.count += 1;
        s.sum = s.sum.wrapping_add(v);
        s.min = if s.count == 1 { v } else { s.min.min(v) };
        s.max = s.max.max(v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_sample_lands_in_its_bucket(seed in 0u64..1 << 48, n in 1usize..64) {
        for v in samples_from(seed, n) {
            let i = bucket_index(v);
            prop_assert!(v <= bucket_upper_bound(i), "v={} above bucket {} bound", v, i);
            if i > 0 {
                prop_assert!(v > bucket_upper_bound(i - 1), "v={} below bucket {} floor", v, i);
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed(seed in 0u64..1 << 48, n in 1usize..128) {
        let s = snapshot_of(&samples_from(seed, n));
        let mut prev = 0u64;
        for pct in [0.0, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
            let q = s.quantile(pct);
            prop_assert!(q >= prev, "quantile not monotone at {}: {} < {}", pct, q, prev);
            prop_assert!(q <= s.max, "quantile above max at {}", pct);
            prev = q;
        }
        // The true maximum is never underestimated by the top quantile.
        prop_assert!(s.quantile(1.0) >= *samples_from(seed, n).iter().max().expect("n >= 1")
            || s.quantile(1.0) == s.max);
    }

    #[test]
    fn merge_is_commutative(a in 0u64..1 << 48, b in 0u64..1 << 48, n in 1usize..64) {
        let (x, y) = (snapshot_of(&samples_from(a, n)), snapshot_of(&samples_from(b, n)));
        prop_assert_eq!(x.merge(&y), y.merge(&x));
    }

    #[test]
    fn merge_is_associative(a in 0u64..1 << 48, b in 0u64..1 << 48, c in 0u64..1 << 48, n in 1usize..48) {
        let (x, y, z) = (
            snapshot_of(&samples_from(a, n)),
            snapshot_of(&samples_from(b, n)),
            snapshot_of(&samples_from(c, n)),
        );
        prop_assert_eq!(x.merge(&y).merge(&z), x.merge(&y.merge(&z)));
    }

    #[test]
    fn merge_equals_concatenation(a in 0u64..1 << 48, b in 0u64..1 << 48, n in 1usize..64) {
        let (sa, sb) = (samples_from(a, n), samples_from(b, n));
        let merged = snapshot_of(&sa).merge(&snapshot_of(&sb));
        let mut both = sa.clone();
        both.extend_from_slice(&sb);
        prop_assert_eq!(merged, snapshot_of(&both));
    }

    #[test]
    fn empty_is_a_merge_identity(seed in 0u64..1 << 48, n in 1usize..64) {
        let s = snapshot_of(&samples_from(seed, n));
        prop_assert_eq!(s.merge(&HistogramSnapshot::empty("prop")), s.clone());
        prop_assert_eq!(HistogramSnapshot::empty("prop").merge(&s), s.clone());
    }

    #[test]
    fn json_round_trips_any_snapshot(seed in 0u64..1 << 48, n in 0usize..64) {
        let s = snapshot_of(&samples_from(seed, n));
        let back = HistogramSnapshot::from_json(&s.to_json()).expect("parse back");
        prop_assert_eq!(s, back);
    }
}
