//! Workspace-sanity smoke test: the discrete-event simulator runs a workload and
//! accounts for every trace entry.

use dlrv_distsim::{run_simulation, NullMonitor, SimConfig};
use dlrv_ltl::AtomRegistry;
use dlrv_trace::{generate_workload, WorkloadConfig};

#[test]
fn simulator_executes_every_trace_entry() {
    let cfg = WorkloadConfig {
        n_processes: 3,
        events_per_process: 6,
        ..WorkloadConfig::default()
    };
    let workload = generate_workload(&cfg);
    let mut registry = AtomRegistry::new();
    for i in 0..cfg.n_processes {
        registry.intern(&format!("P{i}.p"), i);
        registry.intern(&format!("P{i}.q"), i);
    }
    let report = run_simulation(&workload, &registry, &SimConfig::default(), |_| {
        NullMonitor::default()
    });
    let trace_entries: usize = workload.traces.iter().map(|t| t.len()).sum();
    let broadcasts: usize = workload.traces.iter().map(|t| t.n_broadcasts()).sum();
    // Every entry becomes an event; every broadcast additionally delivers a receive
    // event to each of the other n-1 processes.
    assert_eq!(
        report.program_events,
        trace_entries + broadcasts * (cfg.n_processes - 1)
    );
    assert_eq!(report.program_messages, broadcasts * (cfg.n_processes - 1));
    assert_eq!(report.monitors.len(), cfg.n_processes);
    assert!(report.program_end_time > 0.0);
}
