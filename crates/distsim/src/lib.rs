//! Distributed-program execution substrate for decentralized runtime verification.
//!
//! The paper evaluates its algorithm on a network of iOS devices running trace-driven
//! programs over WiFi.  This crate is the reproduction's substitute substrate (see
//! DESIGN.md → Substitutions): it executes the same trace-driven programs over reliable
//! FIFO channels, co-locates a monitor with every process and routes monitor-to-monitor
//! messages, in two flavours:
//!
//! * [`engine`] — a deterministic discrete-event simulator (the primary substrate for
//!   experiments: seeded, reproducible, records the full [`dlrv_vclock::Computation`]
//!   for oracle comparison).
//! * [`threaded`] — a real multi-threaded runtime over `std::sync::mpsc` channels
//!   (one OS thread per process), demonstrating the same monitor code under genuine
//!   asynchrony.
//!
//! Monitors plug in through the [`MonitorBehavior`] trait.

#![forbid(unsafe_code)]

pub mod behavior;
pub mod engine;
pub mod threaded;

pub use behavior::{MonitorBehavior, MonitorContext, NullMonitor};
pub use engine::{initial_global_state, run_simulation, SimConfig, SimReport};
pub use threaded::{run_threaded, ThreadedConfig, ThreadedReport};
