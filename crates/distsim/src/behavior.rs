//! The interface between the execution substrate and monitor implementations.
//!
//! A *monitor behavior* is whatever sits next to a program process and reacts to its
//! local events: the paper's decentralized monitor, a centralized collector, or a
//! no-op.  The substrate (discrete-event simulator or threaded runtime) owns message
//! delivery; behaviors only see callbacks and a context through which they can send
//! messages to their peers.

use dlrv_ltl::ProcessId;
use dlrv_vclock::Event;
use std::sync::Arc;

/// Callback interface implemented by monitors (and baselines) running on top of the
/// execution substrate.
pub trait MonitorBehavior {
    /// The monitor-to-monitor message type (the paper's tokens).
    type Message: Clone + Send + 'static;

    /// Called when the co-located program process produces an event (internal, send or
    /// receive).  The event carries the process's vector clock and new local state.
    ///
    /// The event arrives shared (`&Arc<Event>`) so monitors that keep long-lived
    /// histories ([`Arc<Event>`]-based, as the decentralized monitor's) can retain it
    /// without a per-event deep clone.
    fn on_local_event(&mut self, event: &Arc<Event>, ctx: &mut MonitorContext<'_, Self::Message>);

    /// Called when a message from monitor `from` is delivered.
    fn on_monitor_message(
        &mut self,
        from: ProcessId,
        msg: Self::Message,
        ctx: &mut MonitorContext<'_, Self::Message>,
    );

    /// Called once when the co-located program process has terminated and no further
    /// program events (including receives) will be delivered to it.
    fn on_local_termination(&mut self, ctx: &mut MonitorContext<'_, Self::Message>);
}

/// Context handed to every [`MonitorBehavior`] callback.
///
/// It exposes the current (simulated or wall-clock) time and queues outgoing
/// monitor-to-monitor messages; the substrate delivers them with its configured
/// latency, preserving FIFO order per sender/receiver pair.
pub struct MonitorContext<'a, M> {
    /// The identity of the process this monitor is attached to.
    pub self_id: ProcessId,
    /// Number of processes in the distributed program.
    pub n_processes: usize,
    /// Current time in seconds.
    pub now: f64,
    pub(crate) outbox: &'a mut Vec<(ProcessId, M)>,
}

impl<'a, M> MonitorContext<'a, M> {
    /// Creates a context writing outgoing messages into `outbox`.
    ///
    /// Execution substrates (the simulator, the threaded runtime, or test harnesses
    /// such as the monitor crate's replay driver) use this to invoke behaviors.
    pub fn new(
        self_id: ProcessId,
        n_processes: usize,
        now: f64,
        outbox: &'a mut Vec<(ProcessId, M)>,
    ) -> Self {
        MonitorContext {
            self_id,
            n_processes,
            now,
            outbox,
        }
    }

    /// Queues `msg` for delivery to the monitor of process `to`.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        debug_assert!(to < self.n_processes);
        debug_assert_ne!(to, self.self_id, "monitors do not message themselves");
        self.outbox.push((to, msg));
    }

    /// Queues `msg` for every other monitor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for p in 0..self.n_processes {
            if p != self.self_id {
                self.outbox.push((p, msg.clone()));
            }
        }
    }
}

/// A monitor that does nothing: used to measure the bare program execution and as a
/// trivial behavior in substrate tests.
#[derive(Debug, Default, Clone)]
pub struct NullMonitor {
    /// Number of local events observed.
    pub events_seen: usize,
    /// Whether the local process has terminated.
    pub terminated: bool,
}

impl MonitorBehavior for NullMonitor {
    type Message = ();

    fn on_local_event(&mut self, _event: &Arc<Event>, _ctx: &mut MonitorContext<'_, ()>) {
        self.events_seen += 1;
    }

    fn on_monitor_message(&mut self, _from: ProcessId, _msg: (), _ctx: &mut MonitorContext<'_, ()>) {}

    fn on_local_termination(&mut self, _ctx: &mut MonitorContext<'_, ()>) {
        self.terminated = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_send_and_broadcast_fill_outbox() {
        let mut outbox = Vec::new();
        let mut ctx: MonitorContext<'_, u32> = MonitorContext {
            self_id: 1,
            n_processes: 4,
            now: 0.0,
            outbox: &mut outbox,
        };
        ctx.send(0, 10);
        ctx.broadcast(7);
        assert_eq!(outbox, vec![(0, 10), (0, 7), (2, 7), (3, 7)]);
    }

    #[test]
    fn null_monitor_counts_events() {
        let mut m = NullMonitor::default();
        assert_eq!(m.events_seen, 0);
        assert!(!m.terminated);
        let mut outbox = Vec::new();
        let mut ctx = MonitorContext {
            self_id: 0,
            n_processes: 2,
            now: 1.0,
            outbox: &mut outbox,
        };
        m.on_local_termination(&mut ctx);
        assert!(m.terminated);
    }
}
