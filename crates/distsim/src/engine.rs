//! A deterministic discrete-event simulator of an asynchronous distributed program
//! with co-located monitors.
//!
//! This is the repository's substitute for the paper's iOS testbed (see DESIGN.md):
//! processes execute their trace entries at simulated wall-clock times, program
//! messages and monitor messages travel over reliable FIFO channels with configurable
//! latency, and every program event is handed to the co-located
//! [`MonitorBehavior`] exactly as the paper's programs hand
//! events to their monitors.  The full [`Computation`] is recorded on the side so that
//! the oracle can be evaluated on the very same execution.

use crate::behavior::{MonitorBehavior, MonitorContext};
use dlrv_ltl::{Assignment, AtomLayout, AtomRegistry, ProcessId};
use dlrv_trace::{TraceAction, Workload};
use dlrv_vclock::{Computation, Event, EventKind, VectorClock};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Latency and bookkeeping parameters of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// One-way latency of program messages (seconds).
    pub program_msg_latency: f64,
    /// One-way latency of monitor (token) messages (seconds).
    pub monitor_msg_latency: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            program_msg_latency: 0.05,
            monitor_msg_latency: 0.02,
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimReport<B> {
    /// Every program event that occurred, per process, with vector clocks — the input
    /// the oracle needs.
    pub computation: Computation,
    /// The final state of each monitor behavior.
    pub monitors: Vec<B>,
    /// Time of the last program event.
    pub program_end_time: f64,
    /// Time at which the last monitor activity (event or message delivery) happened.
    pub monitoring_end_time: f64,
    /// Total number of program events (internal + broadcast + receive).
    pub program_events: usize,
    /// Total number of program messages sent.
    pub program_messages: usize,
    /// Total number of monitor-to-monitor messages sent.
    pub monitor_messages: usize,
}

/// The initial global state (proposition valuation) of a workload under `registry`:
/// every process's channel-bound atoms take the trace's initial channel values.
///
/// For the evaluation chapter's `P<i>.p` / `P<i>.q` naming this is exactly the
/// historical behavior; free-form atom names are bound to the two workload channels
/// by [`AtomLayout::from_registry`].
pub fn initial_global_state(workload: &Workload, registry: &AtomRegistry) -> Assignment {
    let layout = AtomLayout::from_registry(registry, workload.traces.len());
    let mut global = Assignment::ALL_FALSE;
    for (i, trace) in workload.traces.iter().enumerate() {
        layout.apply_channels(i, trace.initial.0, trace.initial.1, &mut global);
    }
    global
}

/// Runs `workload` under the simulator, attaching one monitor (built by
/// `make_monitor`) to every process.
pub fn run_simulation<B: MonitorBehavior>(
    workload: &Workload,
    registry: &AtomRegistry,
    config: &SimConfig,
    mut make_monitor: impl FnMut(ProcessId) -> B,
) -> SimReport<B> {
    let n = workload.config.n_processes;
    assert_eq!(workload.traces.len(), n);

    // Resolve each process's channel-bound atoms once: the registry's layout maps
    // every atom to one of the two workload channels of its owning process.
    let layout = AtomLayout::from_registry(registry, n);

    let initial_state = |i: usize| -> Assignment {
        let mut a = Assignment::ALL_FALSE;
        let (p0, q0) = workload.traces[i].initial;
        layout.apply_channels(i, p0, q0, &mut a);
        a
    };

    let mut monitors: Vec<B> = (0..n).map(&mut make_monitor).collect();
    let mut computation = Computation::new((0..n).map(initial_state).collect());
    let mut clocks: Vec<VectorClock> = (0..n).map(|_| VectorClock::zero(n)).collect();
    let mut states: Vec<Assignment> = (0..n).map(initial_state).collect();

    let mut queue: BinaryHeap<QueueItem<B::Message>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut msg_id = 0u64;
    let mut program_items = 0usize;
    let mut program_end_time = 0.0f64;
    let mut monitoring_end_time = 0.0f64;
    let mut program_events = 0usize;
    let mut program_messages = 0usize;
    let mut monitor_messages = 0usize;
    let mut terminated_signalled = false;

    // Schedule the first entry of every process.
    for (i, trace) in workload.traces.iter().enumerate() {
        if let Some(first) = trace.entries.first() {
            queue.push(QueueItem {
                time: first.wait,
                seq: next_seq(&mut seq),
                kind: ItemKind::ProgramStep { process: i, entry: 0 },
            });
            program_items += 1;
        }
    }

    let mut outbox: Vec<(ProcessId, B::Message)> = Vec::new();

    // If some processes have empty traces and no program items exist at all, the
    // termination signal must still be sent; the check below the loop handles it.
    while let Some(item) = queue.pop() {
        let now = item.time;
        match item.kind {
            ItemKind::ProgramStep { process, entry } => {
                program_items -= 1;
                program_end_time = program_end_time.max(now);
                let trace = &workload.traces[process];
                let action = trace.entries[entry].action;
                clocks[process].increment(process);
                let event = match action {
                    TraceAction::SetProps { p, q } => {
                        layout.apply_channels(process, p, q, &mut states[process]);
                        Event {
                            process,
                            kind: EventKind::Internal,
                            sn: clocks[process].get(process),
                            vc: clocks[process].clone(),
                            state: states[process],
                            time: now,
                        }
                    }
                    TraceAction::Broadcast => {
                        msg_id += 1;
                        for to in 0..n {
                            if to != process {
                                queue.push(QueueItem {
                                    time: now + config.program_msg_latency,
                                    seq: next_seq(&mut seq),
                                    kind: ItemKind::ProgramMsg {
                                        to,
                                        from: process,
                                        vc: clocks[process].clone(),
                                        msg_id,
                                    },
                                });
                                program_items += 1;
                                program_messages += 1;
                            }
                        }
                        Event {
                            process,
                            kind: EventKind::Broadcast { msg_id },
                            sn: clocks[process].get(process),
                            vc: clocks[process].clone(),
                            state: states[process],
                            time: now,
                        }
                    }
                    TraceAction::Send { to } => {
                        assert!(to < n && to != process, "send target must be a peer");
                        msg_id += 1;
                        queue.push(QueueItem {
                            time: now + config.program_msg_latency,
                            seq: next_seq(&mut seq),
                            kind: ItemKind::ProgramMsg {
                                to,
                                from: process,
                                vc: clocks[process].clone(),
                                msg_id,
                            },
                        });
                        program_items += 1;
                        program_messages += 1;
                        Event {
                            process,
                            kind: EventKind::Send { to, msg_id },
                            sn: clocks[process].get(process),
                            vc: clocks[process].clone(),
                            state: states[process],
                            time: now,
                        }
                    }
                };
                program_events += 1;
                // One shared allocation serves the recorded computation's copy and
                // every monitor-side retention (history, pending queues).
                let event = Arc::new(event);
                computation.push((*event).clone());
                deliver_event(
                    &mut monitors[process],
                    &event,
                    process,
                    n,
                    now,
                    &mut outbox,
                );
                flush_outbox(
                    &mut outbox,
                    process,
                    now,
                    config,
                    &mut queue,
                    &mut seq,
                    &mut monitor_messages,
                );
                monitoring_end_time = monitoring_end_time.max(now);

                // Schedule the next entry of this process.
                if entry + 1 < trace.entries.len() {
                    queue.push(QueueItem {
                        time: now + trace.entries[entry + 1].wait,
                        seq: next_seq(&mut seq),
                        kind: ItemKind::ProgramStep {
                            process,
                            entry: entry + 1,
                        },
                    });
                    program_items += 1;
                }
            }
            ItemKind::ProgramMsg { to, from, vc, msg_id } => {
                program_items -= 1;
                program_end_time = program_end_time.max(now);
                clocks[to].increment(to);
                clocks[to].merge(&vc);
                let event = Event {
                    process: to,
                    kind: EventKind::Receive { from, msg_id },
                    sn: clocks[to].get(to),
                    vc: clocks[to].clone(),
                    state: states[to],
                    time: now,
                };
                program_events += 1;
                let event = Arc::new(event);
                computation.push((*event).clone());
                deliver_event(&mut monitors[to], &event, to, n, now, &mut outbox);
                flush_outbox(
                    &mut outbox,
                    to,
                    now,
                    config,
                    &mut queue,
                    &mut seq,
                    &mut monitor_messages,
                );
                monitoring_end_time = monitoring_end_time.max(now);
            }
            ItemKind::MonitorMsg { to, from, msg } => {
                let mut ctx = MonitorContext {
                    self_id: to,
                    n_processes: n,
                    now,
                    outbox: &mut outbox,
                };
                monitors[to].on_monitor_message(from, msg, &mut ctx);
                flush_outbox(
                    &mut outbox,
                    to,
                    now,
                    config,
                    &mut queue,
                    &mut seq,
                    &mut monitor_messages,
                );
                monitoring_end_time = monitoring_end_time.max(now);
            }
        }

        // The program has quiesced: signal termination to every monitor exactly once.
        if !terminated_signalled && program_items == 0 {
            terminated_signalled = true;
            for (i, monitor) in monitors.iter_mut().enumerate() {
                let mut ctx = MonitorContext {
                    self_id: i,
                    n_processes: n,
                    now: program_end_time,
                    outbox: &mut outbox,
                };
                monitor.on_local_termination(&mut ctx);
                flush_outbox(
                    &mut outbox,
                    i,
                    program_end_time,
                    config,
                    &mut queue,
                    &mut seq,
                    &mut monitor_messages,
                );
            }
            monitoring_end_time = monitoring_end_time.max(program_end_time);
        }
    }

    // Degenerate case: no program items were ever scheduled (all traces empty).
    if !terminated_signalled {
        for (i, monitor) in monitors.iter_mut().enumerate() {
            let mut ctx = MonitorContext {
                self_id: i,
                n_processes: n,
                now: 0.0,
                outbox: &mut outbox,
            };
            monitor.on_local_termination(&mut ctx);
            // With no queue left, any messages produced here cannot be delivered; the
            // degenerate case only arises for empty workloads in tests.
            outbox.clear();
        }
    }

    SimReport {
        computation,
        monitors,
        program_end_time,
        monitoring_end_time,
        program_events,
        program_messages,
        monitor_messages,
    }
}

fn next_seq(seq: &mut u64) -> u64 {
    *seq += 1;
    *seq
}

fn deliver_event<B: MonitorBehavior>(
    monitor: &mut B,
    event: &Arc<Event>,
    process: ProcessId,
    n: usize,
    now: f64,
    outbox: &mut Vec<(ProcessId, B::Message)>,
) {
    let mut ctx = MonitorContext {
        self_id: process,
        n_processes: n,
        now,
        outbox,
    };
    monitor.on_local_event(event, &mut ctx);
}

fn flush_outbox<M>(
    outbox: &mut Vec<(ProcessId, M)>,
    from: ProcessId,
    now: f64,
    config: &SimConfig,
    queue: &mut BinaryHeap<QueueItem<M>>,
    seq: &mut u64,
    monitor_messages: &mut usize,
) {
    for (to, msg) in outbox.drain(..) {
        *monitor_messages += 1;
        queue.push(QueueItem {
            time: now + config.monitor_msg_latency,
            seq: next_seq(seq),
            kind: ItemKind::MonitorMsg { to, from, msg },
        });
    }
}

enum ItemKind<M> {
    ProgramStep {
        process: ProcessId,
        entry: usize,
    },
    ProgramMsg {
        to: ProcessId,
        from: ProcessId,
        vc: VectorClock,
        msg_id: u64,
    },
    MonitorMsg {
        to: ProcessId,
        from: ProcessId,
        msg: M,
    },
}

struct QueueItem<M> {
    time: f64,
    seq: u64,
    kind: ItemKind<M>,
}

impl<M> PartialEq for QueueItem<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueueItem<M> {}
impl<M> PartialOrd for QueueItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueueItem<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::NullMonitor;
    use dlrv_trace::{generate_workload, WorkloadConfig};

    fn registry_for(n: usize) -> AtomRegistry {
        let mut reg = AtomRegistry::new();
        for i in 0..n {
            reg.intern(&format!("P{i}.p"), i);
            reg.intern(&format!("P{i}.q"), i);
        }
        reg
    }

    #[test]
    fn simulation_records_all_program_events() {
        let cfg = WorkloadConfig::paper_default(3, 1);
        let workload = generate_workload(&cfg);
        let reg = registry_for(3);
        let report = run_simulation(&workload, &reg, &SimConfig::default(), |_| NullMonitor::default());
        let internals: usize = workload.traces.iter().map(|t| t.n_internal()).sum();
        let broadcasts: usize = workload.traces.iter().map(|t| t.n_broadcasts()).sum();
        let receives = broadcasts * 2; // each broadcast reaches the other two processes
        assert_eq!(report.program_events, internals + broadcasts + receives);
        assert_eq!(report.computation.n_events(), report.program_events);
        assert_eq!(report.program_messages, receives);
        assert_eq!(report.monitor_messages, 0);
        // Every monitor saw exactly its own process's events and was terminated.
        for (i, m) in report.monitors.iter().enumerate() {
            assert!(m.terminated);
            assert_eq!(m.events_seen, report.computation.events[i].len());
        }
    }

    #[test]
    fn vector_clocks_are_monotone_per_process() {
        let workload = generate_workload(&WorkloadConfig::paper_default(4, 2));
        let reg = registry_for(4);
        let report = run_simulation(&workload, &reg, &SimConfig::default(), |_| NullMonitor::default());
        for events in &report.computation.events {
            for w in events.windows(2) {
                assert!(w[0].vc.leq(&w[1].vc));
                assert_eq!(w[0].sn + 1, w[1].sn);
            }
        }
    }

    #[test]
    fn receive_clock_dominates_send_clock() {
        let workload = generate_workload(&WorkloadConfig::paper_default(3, 3));
        let reg = registry_for(3);
        let report = run_simulation(&workload, &reg, &SimConfig::default(), |_| NullMonitor::default());
        let comp = &report.computation;
        for events in &comp.events {
            for e in events {
                if let EventKind::Receive { from, msg_id } = e.kind {
                    let send = comp.events[from]
                        .iter()
                        .find(|s| matches!(s.kind, EventKind::Broadcast { msg_id: m } if m == msg_id))
                        .expect("matching broadcast exists");
                    assert!(send.vc.happened_before(&e.vc));
                }
            }
        }
    }

    #[test]
    fn final_frontier_is_consistent() {
        let workload = generate_workload(&WorkloadConfig::paper_default(5, 4));
        let reg = registry_for(5);
        let report = run_simulation(&workload, &reg, &SimConfig::default(), |_| NullMonitor::default());
        assert!(report
            .computation
            .is_consistent_frontier(&report.computation.final_frontier()));
        assert!(report.program_end_time > 0.0);
        assert!(report.monitoring_end_time >= report.program_end_time);
    }

    #[test]
    fn no_comm_workload_generates_no_receives() {
        let workload = generate_workload(&WorkloadConfig::comm_sweep(4, None, 5));
        let reg = registry_for(4);
        let report = run_simulation(&workload, &reg, &SimConfig::default(), |_| NullMonitor::default());
        assert_eq!(report.program_messages, 0);
        for events in &report.computation.events {
            assert!(events
                .iter()
                .all(|e| matches!(e.kind, EventKind::Internal)));
        }
    }

    #[test]
    fn ring_topology_routes_point_to_point() {
        use dlrv_trace::CommTopology;
        let workload =
            generate_workload(&WorkloadConfig::with_topology(4, CommTopology::Ring, 6));
        let reg = registry_for(4);
        let report = run_simulation(&workload, &reg, &SimConfig::default(), |_| NullMonitor::default());
        let sends: usize = workload.traces.iter().map(|t| t.n_sends()).sum();
        assert!(sends > 0);
        // Every point-to-point send is exactly one program message and one receive.
        assert_eq!(report.program_messages, sends);
        for (i, events) in report.computation.events.iter().enumerate() {
            for e in events {
                match e.kind {
                    EventKind::Send { to, .. } => assert_eq!(to, (i + 1) % 4),
                    EventKind::Receive { from, .. } => assert_eq!(i, (from + 1) % 4),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn empty_workload_still_terminates_monitors() {
        let workload = Workload {
            config: WorkloadConfig {
                n_processes: 2,
                events_per_process: 0,
                ..WorkloadConfig::default()
            },
            traces: vec![Default::default(), Default::default()],
        };
        let reg = registry_for(2);
        let report = run_simulation(&workload, &reg, &SimConfig::default(), |_| NullMonitor::default());
        assert_eq!(report.program_events, 0);
        assert!(report.monitors.iter().all(|m| m.terminated));
    }
}
