//! A multi-threaded runtime: one OS thread per process + monitor pair, communicating
//! over `std::sync::mpsc` channels.
//!
//! The discrete-event simulator ([`crate::engine`]) is the primary, deterministic
//! substrate; this runtime demonstrates the same monitor code under genuine OS-level
//! asynchrony (threads, real sleeps, channel delivery order), standing in for the
//! paper's network of iOS devices.  Wait times from the workload are scaled by
//! [`ThreadedConfig::time_scale`] so experiments finish quickly.

use crate::behavior::{MonitorBehavior, MonitorContext};
use dlrv_ltl::{Assignment, AtomLayout, AtomRegistry, ProcessId};
use dlrv_trace::{TraceAction, Workload};
use dlrv_vclock::{Computation, Event, EventKind, VectorClock};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadedConfig {
    /// Multiplier applied to workload wait times (e.g. `0.001` turns seconds into
    /// milliseconds).
    pub time_scale: f64,
    /// How long to keep monitors alive after the program has quiesced, so in-flight
    /// tokens can be processed (wall-clock seconds).
    pub grace_period: f64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            time_scale: 0.001,
            grace_period: 0.2,
        }
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport<B> {
    /// The recorded computation (merged from all process threads).
    pub computation: Computation,
    /// Final monitor states.
    pub monitors: Vec<B>,
    /// Total number of monitor messages sent.
    pub monitor_messages: usize,
}

enum ThreadMsg<M> {
    Program {
        from: ProcessId,
        vc: VectorClock,
        msg_id: u64,
    },
    Monitor {
        from: ProcessId,
        msg: M,
    },
    Shutdown,
}

/// Runs `workload` with one thread per process, attaching a monitor built by
/// `make_monitor` to each.
pub fn run_threaded<B>(
    workload: &Workload,
    registry: &AtomRegistry,
    config: &ThreadedConfig,
    make_monitor: impl Fn(ProcessId) -> B + Sync,
) -> ThreadedReport<B>
where
    B: MonitorBehavior + Send,
    B::Message: Send,
{
    let n = workload.config.n_processes;
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..n)
        .map(|_| mpsc::channel::<ThreadMsg<B::Message>>())
        .unzip();

    let layout = AtomLayout::from_registry(registry, n);

    let start = Instant::now();
    let results: Vec<(B, Vec<Event>, Assignment, usize)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, receiver) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let trace = &workload.traces[i];
            let make_monitor = &make_monitor;
            let layout = &layout;
            handles.push(scope.spawn(move || {
                let mut monitor = make_monitor(i);
                let mut vc = VectorClock::zero(n);
                let mut state = Assignment::ALL_FALSE;
                layout.apply_channels(i, trace.initial.0, trace.initial.1, &mut state);
                let initial_state = state;
                let mut events: Vec<Event> = Vec::new();
                let mut outbox: Vec<(ProcessId, B::Message)> = Vec::new();
                let mut sent = 0usize;
                let mut msg_counter = 0u64;

                let drain_outbox =
                    |outbox: &mut Vec<(ProcessId, B::Message)>, sent: &mut usize| {
                        for (to, msg) in outbox.drain(..) {
                            *sent += 1;
                            let _ = senders[to].send(ThreadMsg::Monitor { from: i, msg });
                        }
                    };

                let handle_msg = |msg: ThreadMsg<B::Message>,
                                      monitor: &mut B,
                                      vc: &mut VectorClock,
                                      state: &Assignment,
                                      events: &mut Vec<Event>,
                                      outbox: &mut Vec<(ProcessId, B::Message)>,
                                      sent: &mut usize|
                 -> bool {
                    let now = start.elapsed().as_secs_f64();
                    match msg {
                        ThreadMsg::Program { from, vc: sender_vc, msg_id } => {
                            vc.increment(i);
                            vc.merge(&sender_vc);
                            let event = Event {
                                process: i,
                                kind: EventKind::Receive { from, msg_id },
                                sn: vc.get(i),
                                vc: vc.clone(),
                                state: *state,
                                time: now,
                            };
                            let event = Arc::new(event);
                            events.push((*event).clone());
                            let mut ctx = MonitorContext {
                                self_id: i,
                                n_processes: n,
                                now,
                                outbox,
                            };
                            monitor.on_local_event(&event, &mut ctx);
                            drain_outbox(outbox, sent);
                            false
                        }
                        ThreadMsg::Monitor { from, msg } => {
                            let mut ctx = MonitorContext {
                                self_id: i,
                                n_processes: n,
                                now,
                                outbox,
                            };
                            monitor.on_monitor_message(from, msg, &mut ctx);
                            drain_outbox(outbox, sent);
                            false
                        }
                        ThreadMsg::Shutdown => true,
                    }
                };

                // Phase 1: execute the trace, handling incoming messages while waiting.
                for entry in &trace.entries {
                    let deadline =
                        Instant::now() + Duration::from_secs_f64(entry.wait * config.time_scale);
                    while Instant::now() < deadline {
                        let timeout = deadline - Instant::now();
                        match receiver.recv_timeout(timeout) {
                            Ok(msg) => {
                                // Shutdown never arrives before the program finished.
                                let _ = handle_msg(
                                    msg, &mut monitor, &mut vc, &state, &mut events,
                                    &mut outbox, &mut sent,
                                );
                            }
                            Err(_) => break,
                        }
                    }
                    let now = start.elapsed().as_secs_f64();
                    vc.increment(i);
                    let event = match entry.action {
                        TraceAction::SetProps { p, q } => {
                            layout.apply_channels(i, p, q, &mut state);
                            Event {
                                process: i,
                                kind: EventKind::Internal,
                                sn: vc.get(i),
                                vc: vc.clone(),
                                state,
                                time: now,
                            }
                        }
                        TraceAction::Broadcast => {
                            msg_counter += 1;
                            let msg_id = (i as u64) << 32 | msg_counter;
                            for (to, sender) in senders.iter().enumerate() {
                                if to != i {
                                    let _ = sender.send(ThreadMsg::Program {
                                        from: i,
                                        vc: {
                                            let mut v = vc.clone();
                                            v.set(i, v.get(i));
                                            v
                                        },
                                        msg_id,
                                    });
                                }
                            }
                            Event {
                                process: i,
                                kind: EventKind::Broadcast { msg_id },
                                sn: vc.get(i),
                                vc: vc.clone(),
                                state,
                                time: now,
                            }
                        }
                        TraceAction::Send { to } => {
                            assert!(to < n && to != i, "send target must be a peer");
                            msg_counter += 1;
                            let msg_id = (i as u64) << 32 | msg_counter;
                            let _ = senders[to].send(ThreadMsg::Program {
                                from: i,
                                vc: vc.clone(),
                                msg_id,
                            });
                            Event {
                                process: i,
                                kind: EventKind::Send { to, msg_id },
                                sn: vc.get(i),
                                vc: vc.clone(),
                                state,
                                time: now,
                            }
                        }
                    };
                    let event = Arc::new(event);
                    events.push((*event).clone());
                    let mut ctx = MonitorContext {
                        self_id: i,
                        n_processes: n,
                        now,
                        outbox: &mut outbox,
                    };
                    monitor.on_local_event(&event, &mut ctx);
                    drain_outbox(&mut outbox, &mut sent);
                }

                // Phase 2: program finished; keep serving messages until shutdown.
                let mut terminated_notified = false;
                loop {
                    match receiver.recv_timeout(Duration::from_millis(10)) {
                        Ok(msg) => {
                            if handle_msg(
                                msg, &mut monitor, &mut vc, &state, &mut events, &mut outbox,
                                &mut sent,
                            ) {
                                break;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if !terminated_notified {
                                terminated_notified = true;
                                let now = start.elapsed().as_secs_f64();
                                let mut ctx = MonitorContext {
                                    self_id: i,
                                    n_processes: n,
                                    now,
                                    outbox: &mut outbox,
                                };
                                monitor.on_local_termination(&mut ctx);
                                drain_outbox(&mut outbox, &mut sent);
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                (monitor, events, initial_state, sent)
            }));
        }

        // Main thread: wait for the grace period after the longest trace, then shut
        // everything down.
        let max_duration: f64 = workload
            .traces
            .iter()
            .map(|t| t.duration() * config.time_scale)
            .fold(0.0, f64::max);
        std::thread::sleep(Duration::from_secs_f64(max_duration + config.grace_period));
        for s in &senders {
            let _ = s.send(ThreadMsg::Shutdown);
        }
        handles.into_iter().map(|h| h.join().expect("process thread panicked")).collect()
    });

    let mut computation = Computation::new(results.iter().map(|(_, _, init, _)| *init).collect());
    let mut monitors = Vec::with_capacity(n);
    let mut monitor_messages = 0usize;
    for (i, (monitor, events, _, sent)) in results.into_iter().enumerate() {
        debug_assert!(events.iter().all(|e| e.process == i));
        for e in events {
            computation.events[i].push(e);
        }
        monitors.push(monitor);
        monitor_messages += sent;
    }

    ThreadedReport {
        computation,
        monitors,
        monitor_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::NullMonitor;
    use dlrv_trace::{generate_workload, WorkloadConfig};

    fn registry_for(n: usize) -> AtomRegistry {
        let mut reg = AtomRegistry::new();
        for i in 0..n {
            reg.intern(&format!("P{i}.p"), i);
            reg.intern(&format!("P{i}.q"), i);
        }
        reg
    }

    #[test]
    fn threaded_run_records_all_local_events() {
        let cfg = WorkloadConfig {
            n_processes: 3,
            events_per_process: 5,
            ..WorkloadConfig::default()
        };
        let workload = generate_workload(&cfg);
        let reg = registry_for(3);
        let report = run_threaded(&workload, &reg, &ThreadedConfig::default(), |_| {
            NullMonitor::default()
        });
        // Every process executed all its trace entries (plus possibly receives).
        for (i, trace) in workload.traces.iter().enumerate() {
            let locals = report.computation.events[i]
                .iter()
                .filter(|e| !matches!(e.kind, EventKind::Receive { .. }))
                .count();
            assert_eq!(locals, trace.len());
        }
        assert!(report.monitors.iter().all(|m| m.terminated));
    }

    #[test]
    fn threaded_clocks_are_monotone() {
        let cfg = WorkloadConfig {
            n_processes: 2,
            events_per_process: 6,
            ..WorkloadConfig::default()
        };
        let workload = generate_workload(&cfg);
        let reg = registry_for(2);
        let report = run_threaded(&workload, &reg, &ThreadedConfig::default(), |_| {
            NullMonitor::default()
        });
        for events in &report.computation.events {
            for w in events.windows(2) {
                assert!(w[0].vc.leq(&w[1].vc), "clocks must be monotone per process");
            }
        }
    }
}
