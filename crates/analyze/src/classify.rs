//! Verdict reachability and monitorability classification.
//!
//! For every Moore state the analyzer asks: starting here, can the monitor still
//! reach ⊤?  Can it still reach ⊥?  The four possible answers partition the state
//! space into [`StateClass`]es, and the classes of the *reachable* states determine
//! the spec's [`MonitorabilityClass`] — the LTL₃ taxonomy of Bauer–Leucker–
//! Schallhart: a property is monitorable iff no reachable state is a `?`-trap
//! (a state whose futures are all inconclusive).

use dlrv_automaton::MonitorAutomaton;
use dlrv_ltl::Verdict;

/// Verdict-reachability class of one Moore state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateClass {
    /// The ⊤ sink itself.
    FinalTrue,
    /// The ⊥ sink itself.
    FinalFalse,
    /// `?` state from which both ⊤ and ⊥ are still reachable.
    BothReachable,
    /// `?` state from which only ⊤ is reachable (the property can only be
    /// satisfied or stay open).
    OnlyTrueReachable,
    /// `?` state from which only ⊥ is reachable.
    OnlyFalseReachable,
    /// `?`-trap: no final verdict reachable; the monitor answers `?` forever.
    NeitherReachable,
}

impl StateClass {
    /// Stable lowercase name used in JSON and DOT legends.
    pub fn name(self) -> &'static str {
        match self {
            StateClass::FinalTrue => "final_true",
            StateClass::FinalFalse => "final_false",
            StateClass::BothReachable => "both_reachable",
            StateClass::OnlyTrueReachable => "only_true_reachable",
            StateClass::OnlyFalseReachable => "only_false_reachable",
            StateClass::NeitherReachable => "neither_reachable",
        }
    }

    /// Parses a [`StateClass::name`] form.
    pub fn from_name(name: &str) -> Option<StateClass> {
        [
            StateClass::FinalTrue,
            StateClass::FinalFalse,
            StateClass::BothReachable,
            StateClass::OnlyTrueReachable,
            StateClass::OnlyFalseReachable,
            StateClass::NeitherReachable,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// The LTL₃ monitorability taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonitorabilityClass {
    /// Unsatisfiable: the initial state already outputs ⊥.
    TriviallyFalse,
    /// Tautological: the initial state already outputs ⊤.
    TriviallyTrue,
    /// Only ⊥ is ever reachable, and it always remains reachable: violations are
    /// detected in finite time, satisfaction never is (e.g. `G p`).
    Safety,
    /// Only ⊤ is ever reachable, and it always remains reachable (e.g. `F p`).
    CoSafety,
    /// Both verdicts occur and every reachable state can still reach one
    /// (e.g. `p U q`).
    Monitorable,
    /// Some reachable state is a `?`-trap; after reaching it the monitor is
    /// useless (e.g. `G(req -> F ack)`).
    NonMonitorable,
}

impl MonitorabilityClass {
    /// Stable lowercase name used in JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            MonitorabilityClass::TriviallyFalse => "trivially_false",
            MonitorabilityClass::TriviallyTrue => "trivially_true",
            MonitorabilityClass::Safety => "safety",
            MonitorabilityClass::CoSafety => "co_safety",
            MonitorabilityClass::Monitorable => "monitorable",
            MonitorabilityClass::NonMonitorable => "non_monitorable",
        }
    }

    /// Parses a [`MonitorabilityClass::name`] form.
    pub fn from_name(name: &str) -> Option<MonitorabilityClass> {
        [
            MonitorabilityClass::TriviallyFalse,
            MonitorabilityClass::TriviallyTrue,
            MonitorabilityClass::Safety,
            MonitorabilityClass::CoSafety,
            MonitorabilityClass::Monitorable,
            MonitorabilityClass::NonMonitorable,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }

    /// True for the two degenerate classes (unsat / tautology).
    pub fn is_trivial(self) -> bool {
        matches!(
            self,
            MonitorabilityClass::TriviallyFalse | MonitorabilityClass::TriviallyTrue
        )
    }
}

/// The full verdict-reachability picture of one automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictReachability {
    /// Per state: reachable from the initial state?
    pub reachable: Vec<bool>,
    /// Per state: can a ⊤ state be reached from here (including being one)?
    pub top_reachable: Vec<bool>,
    /// Per state: can a ⊥ state be reached from here?
    pub bot_reachable: Vec<bool>,
    /// Per state: the derived [`StateClass`].
    pub classes: Vec<StateClass>,
}

impl VerdictReachability {
    /// Computes reachability and per-state classes for `automaton`.
    pub fn of(automaton: &MonitorAutomaton) -> VerdictReachability {
        let reachable = automaton.reachable_states();
        let top_reachable = automaton.states_reaching(Verdict::True);
        let bot_reachable = automaton.states_reaching(Verdict::False);
        let classes = (0..automaton.n_states())
            .map(|s| match automaton.verdict(s) {
                Verdict::True => StateClass::FinalTrue,
                Verdict::False => StateClass::FinalFalse,
                Verdict::Unknown => match (top_reachable[s], bot_reachable[s]) {
                    (true, true) => StateClass::BothReachable,
                    (true, false) => StateClass::OnlyTrueReachable,
                    (false, true) => StateClass::OnlyFalseReachable,
                    (false, false) => StateClass::NeitherReachable,
                },
            })
            .collect();
        VerdictReachability { reachable, top_reachable, bot_reachable, classes }
    }

    /// Classifies the spec from the classes of its *reachable* states.
    pub fn classification(&self, automaton: &MonitorAutomaton) -> MonitorabilityClass {
        match automaton.verdict(automaton.initial) {
            Verdict::False => return MonitorabilityClass::TriviallyFalse,
            Verdict::True => return MonitorabilityClass::TriviallyTrue,
            Verdict::Unknown => {}
        }
        let reached = |class: StateClass| {
            self.classes
                .iter()
                .zip(&self.reachable)
                .any(|(&c, &r)| r && c == class)
        };
        if reached(StateClass::NeitherReachable) {
            return MonitorabilityClass::NonMonitorable;
        }
        let top = reached(StateClass::FinalTrue);
        let bot = reached(StateClass::FinalFalse);
        // No trap states: every reachable ? state reaches some verdict.  With only
        // one kind of sink the spec is a (co-)safety property; it must further
        // never *lose* reachability of that sink, which is automatic here: a ?
        // state that reached neither sink would have been a trap.
        match (top, bot) {
            (false, true) => MonitorabilityClass::Safety,
            (true, false) => MonitorabilityClass::CoSafety,
            _ => MonitorabilityClass::Monitorable,
        }
    }

    /// Indices of reachable `?`-trap states ([`StateClass::NeitherReachable`]).
    pub fn trap_states(&self) -> Vec<usize> {
        self.classes
            .iter()
            .zip(&self.reachable)
            .enumerate()
            .filter(|&(_, (&c, &r))| r && c == StateClass::NeitherReachable)
            .map(|(s, _)| s)
            .collect()
    }

    /// Indices of unreachable states.
    pub fn unreachable_states(&self) -> Vec<usize> {
        self.reachable
            .iter()
            .enumerate()
            .filter(|(_, &r)| !r)
            .map(|(s, _)| s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_ltl::{parse, AtomRegistry};

    fn classify(text: &str) -> MonitorabilityClass {
        let mut registry = AtomRegistry::new();
        let formula = parse(text, &mut registry).expect("parses");
        let automaton = MonitorAutomaton::synthesize(&formula, &registry);
        VerdictReachability::of(&automaton).classification(&automaton)
    }

    #[test]
    fn textbook_examples_classify_correctly() {
        assert_eq!(classify("G P0.p"), MonitorabilityClass::Safety);
        assert_eq!(classify("F P0.p"), MonitorabilityClass::CoSafety);
        assert_eq!(classify("P0.p U P1.q"), MonitorabilityClass::Monitorable);
        assert_eq!(
            classify("G (P0.req -> F P1.ack)"),
            MonitorabilityClass::NonMonitorable
        );
        assert_eq!(
            classify("G P0.p && F !P0.p"),
            MonitorabilityClass::TriviallyFalse
        );
        assert_eq!(
            classify("F P0.p || G !P0.p"),
            MonitorabilityClass::TriviallyTrue
        );
    }

    #[test]
    fn trap_states_found_for_liveness() {
        let mut registry = AtomRegistry::new();
        let formula = parse("G F P0.p", &mut registry).expect("parses");
        let automaton = MonitorAutomaton::synthesize(&formula, &registry);
        let reach = VerdictReachability::of(&automaton);
        // GF p: every state is a ? trap — no finite prefix ever decides it.
        assert_eq!(reach.trap_states().len(), automaton.n_states());
        assert!(reach.unreachable_states().is_empty());
    }

    #[test]
    fn class_names_round_trip() {
        for c in [
            StateClass::FinalTrue,
            StateClass::FinalFalse,
            StateClass::BothReachable,
            StateClass::OnlyTrueReachable,
            StateClass::OnlyFalseReachable,
            StateClass::NeitherReachable,
        ] {
            assert_eq!(StateClass::from_name(c.name()), Some(c));
        }
        for c in [
            MonitorabilityClass::TriviallyFalse,
            MonitorabilityClass::TriviallyTrue,
            MonitorabilityClass::Safety,
            MonitorabilityClass::CoSafety,
            MonitorabilityClass::Monitorable,
            MonitorabilityClass::NonMonitorable,
        ] {
            assert_eq!(MonitorabilityClass::from_name(c.name()), Some(c));
        }
    }
}
