//! The analyzer's report type and its schema-v1-style JSON form.
//!
//! Mirrors the discipline of `BENCH_results.json` (`dlrv-core`'s results module):
//! a top-level envelope with `schema_version` and a `generator` tag, one record
//! per analyzed property, every field validated on the way back in.  The
//! `generator` is `"dlrv-analyze"`, which is how the in-tree validator
//! distinguishes analysis reports from benchmark sweeps.

use crate::classify::{MonitorabilityClass, StateClass};
use crate::cost::CostPrediction;
use crate::finding::{Finding, Lint, Severity, Span};
use dlrv_automaton::{SynthesisReport, TransitionCounts};
use dlrv_json::{object, Json, JsonError};
use dlrv_ltl::Verdict;

/// Schema version of the analysis document (kept in lockstep with the results
/// schema: additive changes only within a version).
pub const ANALYSIS_SCHEMA_VERSION: u64 = 1;

/// The `generator` tag of analysis documents.
pub const ANALYSIS_GENERATOR: &str = "dlrv-analyze";

/// Everything the analyzer derived about one compiled property.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyAnalysis {
    /// Spec name (paper letter or custom name).
    pub name: String,
    /// LTL source text, when the spec was parsed from text.
    pub ltl: Option<String>,
    /// The configured process count the analysis is for.
    pub n_processes: usize,
    /// The spec's monitorability class.
    pub classification: MonitorabilityClass,
    /// Per Moore state: its verdict output.
    pub verdicts: Vec<Verdict>,
    /// Per Moore state: its verdict-reachability class.
    pub state_classes: Vec<StateClass>,
    /// Per Moore state: reachable from the initial state?
    pub reachable: Vec<bool>,
    /// Construction-size statistics of the synthesis run.
    pub synthesis: SynthesisReport,
    /// Predicted decentralization cost.
    pub cost: CostPrediction,
    /// All diagnostics, catalog order not guaranteed; sorted by severity
    /// descending for display.
    pub findings: Vec<Finding>,
}

impl PropertyAnalysis {
    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Number of findings at or above `severity`.
    pub fn count_at_least(&self, severity: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity >= severity).count()
    }
}

/// Measured counterpart of a [`CostPrediction`], joined from benchmark results.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredOverhead {
    /// The benchmark scenario the numbers come from (an `overhead`/`paper` family
    /// member for the same property).
    pub scenario: String,
    /// Measured monitoring messages per event, averaged over seeds.
    pub msgs_per_event: f64,
}

/// One entry of an analysis document: the analysis plus optional provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRecord {
    /// The registry scenario this analysis corresponds to, when run via
    /// `--target analyze` (None for ad-hoc `--analyze-property` runs).
    pub scenario: Option<String>,
    /// The analysis itself.
    pub analysis: PropertyAnalysis,
    /// Measured cost joined from a results file, when available.
    pub measured: Option<MeasuredOverhead>,
}

fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::True => "true",
        Verdict::False => "false",
        Verdict::Unknown => "unknown",
    }
}

fn verdict_from_name(name: &str) -> Result<Verdict, JsonError> {
    match name {
        "true" => Ok(Verdict::True),
        "false" => Ok(Verdict::False),
        "unknown" => Ok(Verdict::Unknown),
        other => Err(JsonError::msg(format!("unknown verdict `{other}`"))),
    }
}

fn synthesis_to_json(r: &SynthesisReport) -> Json {
    object([
        ("n_atoms", Json::from(r.n_atoms)),
        ("alphabet_size", Json::from(r.alphabet_size)),
        ("gba_nodes_pos", Json::from(r.gba_nodes_pos)),
        ("gba_nodes_neg", Json::from(r.gba_nodes_neg)),
        ("dfa_states_pos", Json::from(r.dfa_states_pos)),
        ("dfa_states_neg", Json::from(r.dfa_states_neg)),
        ("product_states", Json::from(r.product_states)),
        ("states", Json::from(r.states)),
        ("transitions_total", Json::from(r.transitions.total)),
        ("transitions_outgoing", Json::from(r.transitions.outgoing)),
        ("transitions_self_loops", Json::from(r.transitions.self_loops)),
        ("max_cubes_per_state", Json::from(r.max_cubes_per_state)),
    ])
}

fn synthesis_from_json(v: &Json) -> Result<SynthesisReport, JsonError> {
    Ok(SynthesisReport {
        n_atoms: v.get("n_atoms")?.as_usize()?,
        alphabet_size: v.get("alphabet_size")?.as_usize()?,
        gba_nodes_pos: v.get("gba_nodes_pos")?.as_usize()?,
        gba_nodes_neg: v.get("gba_nodes_neg")?.as_usize()?,
        dfa_states_pos: v.get("dfa_states_pos")?.as_usize()?,
        dfa_states_neg: v.get("dfa_states_neg")?.as_usize()?,
        product_states: v.get("product_states")?.as_usize()?,
        states: v.get("states")?.as_usize()?,
        transitions: TransitionCounts {
            total: v.get("transitions_total")?.as_usize()?,
            outgoing: v.get("transitions_outgoing")?.as_usize()?,
            self_loops: v.get("transitions_self_loops")?.as_usize()?,
        },
        max_cubes_per_state: v.get("max_cubes_per_state")?.as_usize()?,
    })
}

fn cost_to_json(c: &CostPrediction) -> Json {
    object([
        (
            "token_fanout",
            Json::Array(c.token_fanout.iter().map(|&n| Json::from(n)).collect()),
        ),
        (
            "max_remote_literals_per_event",
            Json::from(c.max_remote_literals_per_event),
        ),
        ("max_messages_per_event", Json::from(c.max_messages_per_event)),
        ("local_transitions", Json::from(c.local_transitions)),
        ("cross_process_transitions", Json::from(c.cross_process_transitions)),
    ])
}

fn cost_from_json(v: &Json) -> Result<CostPrediction, JsonError> {
    Ok(CostPrediction {
        token_fanout: v
            .get("token_fanout")?
            .as_array()?
            .iter()
            .map(|n| n.as_usize())
            .collect::<Result<_, _>>()?,
        max_remote_literals_per_event: v.get("max_remote_literals_per_event")?.as_usize()?,
        max_messages_per_event: v.get("max_messages_per_event")?.as_usize()?,
        local_transitions: v.get("local_transitions")?.as_usize()?,
        cross_process_transitions: v.get("cross_process_transitions")?.as_usize()?,
    })
}

fn finding_to_json(f: &Finding) -> Json {
    object([
        ("id", Json::from(f.lint.id())),
        ("severity", Json::from(f.severity.name())),
        ("message", Json::from(f.message.clone())),
        (
            "span",
            match f.span {
                Some(span) => {
                    Json::Array(vec![Json::from(span.start), Json::from(span.end)])
                }
                None => Json::Null,
            },
        ),
    ])
}

fn finding_from_json(v: &Json) -> Result<Finding, JsonError> {
    let id = v.get("id")?.as_str()?;
    let lint = Lint::from_id(id)
        .ok_or_else(|| JsonError::msg(format!("unknown lint id `{id}`")))?;
    let severity_name = v.get("severity")?.as_str()?;
    let severity = Severity::from_name(severity_name)
        .ok_or_else(|| JsonError::msg(format!("unknown severity `{severity_name}`")))?;
    let span = match v.get("span")? {
        Json::Null => None,
        pair => {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return Err(JsonError::msg("span must be a [start, end] pair"));
            }
            Some(Span { start: pair[0].as_usize()?, end: pair[1].as_usize()? })
        }
    };
    Ok(Finding {
        lint,
        severity,
        message: v.get("message")?.as_str()?.to_string(),
        span,
    })
}

fn analysis_to_json(a: &PropertyAnalysis) -> Json {
    let states = (0..a.verdicts.len())
        .map(|s| {
            object([
                ("verdict", Json::from(verdict_name(a.verdicts[s]))),
                ("class", Json::from(a.state_classes[s].name())),
                ("reachable", Json::from(a.reachable[s])),
            ])
        })
        .collect();
    object([
        ("name", Json::from(a.name.clone())),
        (
            "ltl",
            a.ltl.clone().map(Json::from).unwrap_or(Json::Null),
        ),
        ("n_processes", Json::from(a.n_processes)),
        ("classification", Json::from(a.classification.name())),
        ("states", Json::Array(states)),
        ("synthesis", synthesis_to_json(&a.synthesis)),
        ("cost", cost_to_json(&a.cost)),
        (
            "findings",
            Json::Array(a.findings.iter().map(finding_to_json).collect()),
        ),
    ])
}

fn analysis_from_json(v: &Json) -> Result<PropertyAnalysis, JsonError> {
    let class_name = v.get("classification")?.as_str()?;
    let classification = MonitorabilityClass::from_name(class_name)
        .ok_or_else(|| JsonError::msg(format!("unknown classification `{class_name}`")))?;
    let mut verdicts = Vec::new();
    let mut state_classes = Vec::new();
    let mut reachable = Vec::new();
    for state in v.get("states")?.as_array()? {
        verdicts.push(verdict_from_name(state.get("verdict")?.as_str()?)?);
        let name = state.get("class")?.as_str()?;
        state_classes.push(StateClass::from_name(name).ok_or_else(|| {
            JsonError::msg(format!("unknown state class `{name}`"))
        })?);
        reachable.push(state.get("reachable")?.as_bool()?);
    }
    Ok(PropertyAnalysis {
        name: v.get("name")?.as_str()?.to_string(),
        ltl: match v.get("ltl")? {
            Json::Null => None,
            text => Some(text.as_str()?.to_string()),
        },
        n_processes: v.get("n_processes")?.as_usize()?,
        classification,
        verdicts,
        state_classes,
        reachable,
        synthesis: synthesis_from_json(v.get("synthesis")?)?,
        cost: cost_from_json(v.get("cost")?)?,
        findings: v
            .get("findings")?
            .as_array()?
            .iter()
            .map(finding_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// Serializes analysis records into the schema-v1 analysis document.
pub fn analyses_to_json(records: &[AnalysisRecord]) -> Json {
    let entries = records
        .iter()
        .map(|r| {
            object([
                (
                    "scenario",
                    r.scenario.clone().map(Json::from).unwrap_or(Json::Null),
                ),
                ("analysis", analysis_to_json(&r.analysis)),
                (
                    "measured",
                    match &r.measured {
                        Some(m) => object([
                            ("scenario", Json::from(m.scenario.clone())),
                            ("msgs_per_event", Json::from(m.msgs_per_event)),
                        ]),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    object([
        ("schema_version", Json::from(ANALYSIS_SCHEMA_VERSION)),
        ("generator", Json::from(ANALYSIS_GENERATOR)),
        ("analyses", Json::Array(entries)),
    ])
}

/// Parses and validates a schema-v1 analysis document.
pub fn analyses_from_json(doc: &Json) -> Result<Vec<AnalysisRecord>, JsonError> {
    let version = doc.get("schema_version")?.as_u64()?;
    if version != ANALYSIS_SCHEMA_VERSION {
        return Err(JsonError::msg(format!(
            "unsupported analysis schema version {version} (expected {ANALYSIS_SCHEMA_VERSION})"
        )));
    }
    let generator = doc.get("generator")?.as_str()?;
    if generator != ANALYSIS_GENERATOR {
        return Err(JsonError::msg(format!(
            "unexpected generator `{generator}` (expected `{ANALYSIS_GENERATOR}`)"
        )));
    }
    doc.get("analyses")?
        .as_array()?
        .iter()
        .map(|entry| {
            Ok(AnalysisRecord {
                scenario: match entry.get("scenario")? {
                    Json::Null => None,
                    name => Some(name.as_str()?.to_string()),
                },
                analysis: analysis_from_json(entry.get("analysis")?)?,
                measured: match entry.get("measured")? {
                    Json::Null => None,
                    m => Some(MeasuredOverhead {
                        scenario: m.get("scenario")?.as_str()?.to_string(),
                        msgs_per_event: m.get("msgs_per_event")?.as_f64()?,
                    }),
                },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisInput, Budget};
    use dlrv_automaton::MonitorAutomaton;
    use dlrv_ltl::{parse, Assignment, AtomRegistry};

    fn sample(text: &str) -> PropertyAnalysis {
        let mut registry = AtomRegistry::new();
        let formula = parse(text, &mut registry).expect("parses");
        let (automaton, synthesis) =
            MonitorAutomaton::synthesize_with_report(&formula, &registry);
        analyze(&AnalysisInput {
            name: "sample",
            ltl_source: Some(text),
            formula: &formula,
            registry: &registry,
            automaton: &automaton,
            synthesis,
            n_processes: registry.process_count().max(1),
            initial_gstate: Assignment::ALL_FALSE,
            budget: Budget::default(),
        })
    }

    #[test]
    fn analysis_document_round_trips() {
        let records = vec![
            AnalysisRecord {
                scenario: Some("paper-A-n2".to_string()),
                analysis: sample("G (P0.p U (P1.p && P1.q))"),
                measured: Some(MeasuredOverhead {
                    scenario: "overhead-base-A-n2".to_string(),
                    msgs_per_event: 3.25,
                }),
            },
            AnalysisRecord {
                scenario: None,
                analysis: sample("G (P0.req -> F P1.ack)"),
                measured: None,
            },
        ];
        let doc = analyses_to_json(&records);
        let text = doc.to_string_pretty();
        let back = analyses_from_json(&Json::parse(&text).expect("valid JSON"))
            .expect("schema round-trip");
        assert_eq!(back, records);
    }

    #[test]
    fn wrong_generator_is_rejected() {
        let mut doc = analyses_to_json(&[]);
        if let Json::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "generator" {
                    *v = Json::from("dlrv-experiments");
                }
            }
        }
        assert!(analyses_from_json(&doc).is_err());
    }
}
