//! Findings: the analyzer's diagnostics, each carrying a stable lint ID, a
//! severity, a human message and (when the spec came from LTL text) a byte span
//! back into the formula source.
//!
//! The lint catalog is the contract CI scripts and tests key on: IDs are stable
//! across releases (`DLRV-<group><number>`), severities may only be *lowered*
//! within a major version.  Groups: `M` monitorability, `V` vacuity, `A`
//! automaton hygiene, `C` deployment configuration.

use std::fmt;

/// How bad a finding is.  Ordered: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never actionable on its own.
    Info,
    /// Probably a mistake; the monitor still runs.
    Warn,
    /// The deployment is broken or meaningless as specified.
    Error,
}

impl Severity {
    /// Lowercase name used in JSON and `--deny` arguments.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a [`Severity::name`] form.
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The stable lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `DLRV-M001`: the formula is unsatisfiable — the monitor's initial verdict
    /// is already ⊥.
    Unsatisfiable,
    /// `DLRV-M002`: the formula is a tautology — the initial verdict is already ⊤.
    Tautology,
    /// `DLRV-M003`: the spec is non-monitorable — some reachable monitor state can
    /// reach neither ⊤ nor ⊥, so from there every verdict is `?` forever.
    NonMonitorable,
    /// `DLRV-V001`: an atom occurs in the formula but constrains no transition
    /// guard — the property's value never depends on it (vacuous use).
    VacuousAtom,
    /// `DLRV-A001`: a monitor state is unreachable from the initial state.
    UnreachableState,
    /// `DLRV-A002`: a reachable `?` state can reach no final verdict (a `?`-trap);
    /// per-state companion of [`Lint::NonMonitorable`].
    UnknownTrapState,
    /// `DLRV-A003`: two guard cubes out of the same state overlap while agreeing on
    /// the target — redundant cover, larger than necessary.
    OverlappingGuards,
    /// `DLRV-A004`: the guards out of a state do not cover the full alphabet.
    NonExhaustiveGuards,
    /// `DLRV-A005`: two overlapping guards out of the same state disagree on the
    /// target state — the symbolic transition relation is nondeterministic.
    ConflictingGuards,
    /// `DLRV-A006`: the synthesized automaton exceeds the construction budget
    /// (alphabet, states or transitions).
    ConstructionBudget,
    /// `DLRV-C001`: an atom is owned by a process outside the configured count.
    AtomOutOfRange,
    /// `DLRV-C002`: a configured process owns no atom — it generates events the
    /// monitors never read.
    IdleProcess,
    /// `DLRV-C003`: the derived initial channel values drive the monitor to a
    /// final verdict at the very first cut, before any event.
    InitialCutDecides,
    /// `DLRV-C004`: three or more atoms of one process share a workload channel —
    /// they alias and can never change value independently.
    AliasedAtoms,
    /// `DLRV-C005`: an atom does not follow the `P<i>.<name>` ownership
    /// convention and defaults to process 0.
    UnconventionalAtom,
}

impl Lint {
    /// Every lint, in catalog order.
    pub const ALL: [Lint; 15] = [
        Lint::Unsatisfiable,
        Lint::Tautology,
        Lint::NonMonitorable,
        Lint::VacuousAtom,
        Lint::UnreachableState,
        Lint::UnknownTrapState,
        Lint::OverlappingGuards,
        Lint::NonExhaustiveGuards,
        Lint::ConflictingGuards,
        Lint::ConstructionBudget,
        Lint::AtomOutOfRange,
        Lint::IdleProcess,
        Lint::InitialCutDecides,
        Lint::AliasedAtoms,
        Lint::UnconventionalAtom,
    ];

    /// The stable ID (`DLRV-M001`, …) used in output, JSON and `--deny`/`--allow`.
    pub fn id(self) -> &'static str {
        match self {
            Lint::Unsatisfiable => "DLRV-M001",
            Lint::Tautology => "DLRV-M002",
            Lint::NonMonitorable => "DLRV-M003",
            Lint::VacuousAtom => "DLRV-V001",
            Lint::UnreachableState => "DLRV-A001",
            Lint::UnknownTrapState => "DLRV-A002",
            Lint::OverlappingGuards => "DLRV-A003",
            Lint::NonExhaustiveGuards => "DLRV-A004",
            Lint::ConflictingGuards => "DLRV-A005",
            Lint::ConstructionBudget => "DLRV-A006",
            Lint::AtomOutOfRange => "DLRV-C001",
            Lint::IdleProcess => "DLRV-C002",
            Lint::InitialCutDecides => "DLRV-C003",
            Lint::AliasedAtoms => "DLRV-C004",
            Lint::UnconventionalAtom => "DLRV-C005",
        }
    }

    /// Resolves a stable ID back to the lint.
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.iter().copied().find(|l| l.id() == id)
    }

    /// The catalog severity of this lint.
    pub fn severity(self) -> Severity {
        match self {
            Lint::Unsatisfiable
            | Lint::Tautology
            | Lint::NonExhaustiveGuards
            | Lint::ConflictingGuards
            | Lint::AtomOutOfRange => Severity::Error,
            Lint::NonMonitorable
            | Lint::VacuousAtom
            | Lint::UnreachableState
            | Lint::ConstructionBudget
            | Lint::IdleProcess
            | Lint::InitialCutDecides
            | Lint::AliasedAtoms
            | Lint::UnconventionalAtom => Severity::Warn,
            Lint::UnknownTrapState | Lint::OverlappingGuards => Severity::Info,
        }
    }

    /// One-line catalog description (docs and `--explain`-style output).
    pub fn description(self) -> &'static str {
        match self {
            Lint::Unsatisfiable => "formula is unsatisfiable; initial verdict is ⊥",
            Lint::Tautology => "formula is a tautology; initial verdict is ⊤",
            Lint::NonMonitorable => {
                "non-monitorable: some reachable state can reach neither ⊤ nor ⊥"
            }
            Lint::VacuousAtom => "atom occurs in the formula but constrains no guard",
            Lint::UnreachableState => "monitor state unreachable from the initial state",
            Lint::UnknownTrapState => "reachable ? state from which no verdict is reachable",
            Lint::OverlappingGuards => "redundant overlapping guard cubes (same target)",
            Lint::NonExhaustiveGuards => "guards out of a state do not cover the alphabet",
            Lint::ConflictingGuards => "overlapping guards disagree on the target state",
            Lint::ConstructionBudget => "synthesized automaton exceeds the size budget",
            Lint::AtomOutOfRange => "atom owned by a process outside the configured count",
            Lint::IdleProcess => "process owns no atoms; its events are never read",
            Lint::InitialCutDecides => {
                "derived initial channel values decide the property at the first cut"
            }
            Lint::AliasedAtoms => "3+ atoms of one process share a workload channel",
            Lint::UnconventionalAtom => "atom name ignores the P<i>.<name> convention",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A half-open byte range into the spec's LTL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which catalog entry fired.
    pub lint: Lint,
    /// Effective severity (the catalog default unless the caller re-leveled it).
    pub severity: Severity,
    /// Human-readable message with the specifics.
    pub message: String,
    /// Span into the LTL source text, when the spec has one and the finding
    /// concerns a syntactic element (an atom, usually).
    pub span: Option<Span>,
}

impl Finding {
    /// A finding at catalog severity with no source span.
    pub fn new(lint: Lint, message: impl Into<String>) -> Finding {
        Finding {
            lint,
            severity: lint.severity(),
            message: message.into(),
            span: None,
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Finding {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.lint.id(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_are_unique_and_round_trip() {
        let mut seen = std::collections::BTreeSet::new();
        for lint in Lint::ALL {
            assert!(seen.insert(lint.id()), "duplicate id {}", lint.id());
            assert_eq!(Lint::from_id(lint.id()), Some(lint));
            assert!(lint.id().starts_with("DLRV-"));
        }
        assert_eq!(Lint::from_id("DLRV-Z999"), None);
    }

    #[test]
    fn severity_ordering_and_names() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        for s in [Severity::Info, Severity::Warn, Severity::Error] {
            assert_eq!(Severity::from_name(s.name()), Some(s));
        }
        assert_eq!(Severity::from_name("fatal"), None);
    }

    #[test]
    fn finding_display_leads_with_severity_and_id() {
        let f = Finding::new(Lint::IdleProcess, "process P3 owns no atoms");
        assert_eq!(format!("{f}"), "warn [DLRV-C002] process P3 owns no atoms");
    }
}
