//! Static decentralization cost prediction.
//!
//! The decentralized algorithm (§4.3) evaluates every guard cube conjunct-by-
//! conjunct; conjuncts owned by another process cost a token round trip.  All of
//! that is visible statically: the guard cubes, the atom ownership and the
//! monitor's state space are fixed at synthesis time, so the analyzer can bound
//! the per-event communication before a single event is generated — the numbers
//! the `overhead` benchmark family then measures.

use dlrv_automaton::MonitorAutomaton;
use dlrv_ltl::AtomRegistry;
use std::collections::BTreeSet;

/// Statically predicted decentralization cost of one compiled property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostPrediction {
    /// Per process `i`: how many distinct peers own atoms that occur in reachable
    /// guards — the processes a monitor on `i` may need tokens from.
    pub token_fanout: Vec<usize>,
    /// Max over (process, reachable state) of remote guard literals one event may
    /// force that process's monitor to resolve.
    pub max_remote_literals_per_event: usize,
    /// Upper bound on monitoring messages one event can trigger at one monitor:
    /// a token request and a token reply per remote process per candidate guard.
    pub max_messages_per_event: usize,
    /// Reachable transitions whose guard reads at most one process's atoms.
    pub local_transitions: usize,
    /// Reachable transitions whose guard spans two or more processes.
    pub cross_process_transitions: usize,
}

impl CostPrediction {
    /// Predicts the cost of monitoring `automaton` decentralized over
    /// `n_processes` processes with `registry`'s atom ownership.
    pub fn predict(
        automaton: &MonitorAutomaton,
        registry: &AtomRegistry,
        n_processes: usize,
    ) -> CostPrediction {
        let reachable = automaton.reachable_states();
        // Owners of atoms occurring in any reachable guard.
        let mut guard_owners: BTreeSet<usize> = BTreeSet::new();
        let mut local_transitions = 0usize;
        let mut cross_process_transitions = 0usize;
        for t in &automaton.transitions {
            if !reachable[t.from] {
                continue;
            }
            let owners: BTreeSet<usize> = t
                .guard
                .literals()
                .iter()
                .map(|lit| registry.owner(lit.atom))
                .collect();
            if owners.len() <= 1 {
                local_transitions += 1;
            } else {
                cross_process_transitions += 1;
            }
            guard_owners.extend(owners);
        }
        let token_fanout = (0..n_processes)
            .map(|i| guard_owners.iter().filter(|&&o| o != i).count())
            .collect();

        // Worst case for a monitor on process `i` in state `s`: one event makes it
        // evaluate every guard out of `s`; each remote literal must be resolved,
        // each remote process contacted once per guard (request + reply).
        let mut max_remote_literals = 0usize;
        let mut max_messages = 0usize;
        for i in 0..n_processes {
            for (s, _) in reachable.iter().enumerate().filter(|&(_, &r)| r) {
                let mut literals = 0usize;
                let mut round_trips = 0usize;
                for t in automaton.transitions_from(s) {
                    let mut remote: BTreeSet<usize> = BTreeSet::new();
                    for lit in t.guard.literals() {
                        let owner = registry.owner(lit.atom);
                        if owner != i {
                            literals += 1;
                            remote.insert(owner);
                        }
                    }
                    round_trips += remote.len();
                }
                max_remote_literals = max_remote_literals.max(literals);
                max_messages = max_messages.max(2 * round_trips);
            }
        }
        CostPrediction {
            token_fanout,
            max_remote_literals_per_event: max_remote_literals,
            max_messages_per_event: max_messages,
            local_transitions,
            cross_process_transitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_ltl::parse;

    fn predict(text: &str, n: usize) -> CostPrediction {
        let mut registry = AtomRegistry::new();
        let formula = parse(text, &mut registry).expect("parses");
        let automaton = MonitorAutomaton::synthesize(&formula, &registry);
        CostPrediction::predict(&automaton, &registry, n)
    }

    #[test]
    fn single_process_spec_is_free() {
        let cost = predict("G P0.p", 1);
        assert_eq!(cost.token_fanout, vec![0]);
        assert_eq!(cost.max_remote_literals_per_event, 0);
        assert_eq!(cost.max_messages_per_event, 0);
        assert_eq!(cost.cross_process_transitions, 0);
        assert!(cost.local_transitions > 0);
    }

    #[test]
    fn cross_process_guards_cost_round_trips() {
        let cost = predict("F (P0.p && P1.p)", 2);
        // Both processes appear in some guard, so each monitor has one peer.
        assert_eq!(cost.token_fanout, vec![1, 1]);
        assert!(cost.cross_process_transitions > 0);
        assert!(cost.max_remote_literals_per_event > 0);
        // Messages are round trips: always even, and at least one per remote literal
        // batch.
        assert_eq!(cost.max_messages_per_event % 2, 0);
        assert!(cost.max_messages_per_event >= 2);
    }

    #[test]
    fn extra_processes_still_get_fanout_numbers() {
        // Monitors run on every configured process even when the spec ignores
        // some: a 2-atom spec on 4 processes gives the idle monitors fanout 2.
        let cost = predict("F (P0.p && P1.p)", 4);
        assert_eq!(cost.token_fanout.len(), 4);
        assert_eq!(cost.token_fanout[3], 2);
    }
}
