//! Static analysis of property specifications — lint LTL specs, their monitor
//! automata and their deployment configuration before a single event is monitored.
//!
//! The PR 5 `PropertySpec` pipeline accepts arbitrary LTL, so a deployed spec can
//! be unsatisfiable, tautological, non-monitorable (its monitor answers `?`
//! forever, the failure mode LTL₃ exists to avoid), vacuous, or explosively large
//! — and without this crate the system only finds out at runtime, or never.
//! Everything this analyzer reports is derived *statically* from the synthesis
//! artifacts the pipeline already produces:
//!
//! * [`classify`] — per-state verdict reachability over the Moore machine and the
//!   Bauer–Leucker–Schallhart monitorability taxonomy (safety / co-safety /
//!   monitorable / non-monitorable / trivially-⊤/⊥);
//! * automaton hygiene — unreachable states, `?`-trap states, guard-cube
//!   overlap/exhaustiveness, construction-size budget ([`Budget`]);
//! * [`cost`] — predicted decentralization cost (token fan-out, messages per
//!   event) from guard-cube atom ownership, the static counterpart of the
//!   `overhead` benchmark family;
//! * config lints — out-of-range atom owners, idle processes, initial channel
//!   values that decide the property at the first cut, aliased atoms.
//!
//! Diagnostics are [`finding::Finding`]s with stable IDs (`DLRV-M001`, …),
//! severities and optional spans into the LTL source; [`report`] gives the whole
//! thing a schema-v1 JSON form, [`dot`] an annotated Graphviz rendering.

#![forbid(unsafe_code)]

pub mod classify;
pub mod cost;
pub mod dot;
pub mod finding;
pub mod report;

pub use classify::{MonitorabilityClass, StateClass, VerdictReachability};
pub use cost::CostPrediction;
pub use dot::to_dot_annotated;
pub use finding::{Finding, Lint, Severity, Span};
pub use report::{
    analyses_from_json, analyses_to_json, AnalysisRecord, MeasuredOverhead,
    PropertyAnalysis, ANALYSIS_GENERATOR, ANALYSIS_SCHEMA_VERSION,
};

use dlrv_automaton::{MonitorAutomaton, SynthesisReport};
use dlrv_ltl::{Assignment, AtomLayout, AtomRegistry, Formula, Verdict};

/// Construction-size budget: exceeding any bound raises `DLRV-A006`.
///
/// Defaults are sized so every registry scenario (up to 10 atoms / 1024 symbols at
/// five processes) passes, while the 12-atom ceiling of `MAX_SPEC_ATOMS` trips the
/// alphabet bound — the warning marks the zone where synthesis cost stops being
/// negligible, not where it becomes impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Max explicit alphabet size (`2^n_atoms`).
    pub max_alphabet: usize,
    /// Max minimized Moore states.
    pub max_states: usize,
    /// Max symbolic transitions.
    pub max_transitions: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { max_alphabet: 2048, max_states: 128, max_transitions: 1024 }
    }
}

/// Everything the analyzer looks at, borrowed from the caller's compilation.
#[derive(Debug, Clone)]
pub struct AnalysisInput<'a> {
    /// Spec name for the report.
    pub name: &'a str,
    /// LTL source text when the spec has one (enables source spans).
    pub ltl_source: Option<&'a str>,
    /// The monitored formula.
    pub formula: &'a Formula,
    /// Atom registry (names + ownership).
    pub registry: &'a AtomRegistry,
    /// The synthesized Moore machine.
    pub automaton: &'a MonitorAutomaton,
    /// Size statistics of the synthesis run.
    pub synthesis: SynthesisReport,
    /// The *configured* process count (may be below what the atoms require —
    /// that is exactly what `DLRV-C001` reports).
    pub n_processes: usize,
    /// The derived initial global state (initial channel values applied).
    pub initial_gstate: Assignment,
    /// Construction-size budget.
    pub budget: Budget,
}

/// Runs every analysis over one compiled property.
pub fn analyze(input: &AnalysisInput<'_>) -> PropertyAnalysis {
    let automaton = input.automaton;
    let registry = input.registry;
    let reach = VerdictReachability::of(automaton);
    let classification = reach.classification(automaton);
    let effective_processes = input.n_processes.max(registry.process_count()).max(1);
    let cost = CostPrediction::predict(automaton, registry, effective_processes);

    let mut findings = Vec::new();
    monitorability_lints(&mut findings, input, classification, &reach);
    hygiene_lints(&mut findings, input, &reach);
    config_lints(&mut findings, input);
    // Most severe first, then catalog order: the order tables and CI logs show.
    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.lint.cmp(&b.lint)));

    PropertyAnalysis {
        name: input.name.to_string(),
        ltl: input.ltl_source.map(str::to_string),
        n_processes: input.n_processes,
        classification,
        verdicts: (0..automaton.n_states()).map(|s| automaton.verdict(s)).collect(),
        state_classes: reach.classes.clone(),
        reachable: reach.reachable.clone(),
        synthesis: input.synthesis,
        cost,
        findings,
    }
}

/// Locates `name` in the spec's LTL source, yielding a caret span.
fn span_of(source: Option<&str>, name: &str) -> Option<Span> {
    source
        .and_then(|text| text.find(name))
        .map(|start| Span { start, end: start + name.len() })
}

fn format_states(states: &[usize]) -> String {
    states.iter().map(|s| format!("q{s}")).collect::<Vec<_>>().join(", ")
}

fn monitorability_lints(
    findings: &mut Vec<Finding>,
    input: &AnalysisInput<'_>,
    classification: MonitorabilityClass,
    reach: &VerdictReachability,
) {
    match classification {
        MonitorabilityClass::TriviallyFalse => findings.push(Finding::new(
            Lint::Unsatisfiable,
            "the formula is unsatisfiable: the monitor's initial verdict is already ⊥, \
             no execution can satisfy the property",
        )),
        MonitorabilityClass::TriviallyTrue => findings.push(Finding::new(
            Lint::Tautology,
            "the formula is a tautology: the monitor's initial verdict is already ⊤, \
             no execution can violate the property",
        )),
        MonitorabilityClass::NonMonitorable => {
            let traps = reach.trap_states();
            findings.push(Finding::new(
                Lint::NonMonitorable,
                format!(
                    "non-monitorable: state(s) {} can reach neither ⊤ nor ⊥ — once \
                     there, the monitor reports ? forever",
                    format_states(&traps)
                ),
            ));
        }
        _ => {}
    }

    // Vacuous atoms: in the formula, but no guard ever reads them.  Trivial specs
    // collapse every guard, so the per-atom lint would only echo M001/M002 there.
    if !classification.is_trivial() {
        for atom in input.formula.atoms() {
            let constrained = input
                .automaton
                .transitions
                .iter()
                .any(|t| t.guard.polarity_of(atom).is_some());
            if !constrained {
                let name = input.registry.name(atom);
                let mut finding = Finding::new(
                    Lint::VacuousAtom,
                    format!(
                        "atom `{name}` occurs in the formula but constrains no \
                         transition guard; the verdict never depends on it"
                    ),
                );
                if let Some(span) = span_of(input.ltl_source, name) {
                    finding = finding.with_span(span);
                }
                findings.push(finding);
            }
        }
    }
}

fn hygiene_lints(
    findings: &mut Vec<Finding>,
    input: &AnalysisInput<'_>,
    reach: &VerdictReachability,
) {
    let automaton = input.automaton;

    let unreachable = reach.unreachable_states();
    if !unreachable.is_empty() {
        findings.push(Finding::new(
            Lint::UnreachableState,
            format!(
                "{} monitor state(s) unreachable from the initial state: {}",
                unreachable.len(),
                format_states(&unreachable)
            ),
        ));
    }

    let traps = reach.trap_states();
    if !traps.is_empty() {
        findings.push(Finding::new(
            Lint::UnknownTrapState,
            format!(
                "?-trap state(s) {}: every future verdict from there is ?",
                format_states(&traps)
            ),
        ));
    }

    // Guard-cube overlap / determinism, per reachable state.
    let mut redundant_pairs = 0usize;
    let mut conflicts: Vec<String> = Vec::new();
    for s in 0..automaton.n_states() {
        if !reach.reachable[s] {
            continue;
        }
        let all: Vec<_> = automaton.transitions_from(s).collect();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                if a.guard.conjoin(&b.guard).is_some() {
                    if a.to == b.to {
                        redundant_pairs += 1;
                    } else {
                        conflicts.push(format!(
                            "q{}: `{}` vs `{}` target q{} and q{}",
                            s,
                            a.guard.display(input.registry),
                            b.guard.display(input.registry),
                            a.to,
                            b.to
                        ));
                    }
                }
            }
        }
    }
    if redundant_pairs > 0 {
        findings.push(Finding::new(
            Lint::OverlappingGuards,
            format!(
                "{redundant_pairs} overlapping guard-cube pair(s) agree on their \
                 target; the cover is redundant but sound"
            ),
        ));
    }
    if !conflicts.is_empty() {
        findings.push(Finding::new(
            Lint::ConflictingGuards,
            format!(
                "nondeterministic symbolic transitions: {}",
                conflicts.join("; ")
            ),
        ));
    }

    // Exhaustiveness: every reachable state must have a guard for every symbol.
    let mut holes: Vec<String> = Vec::new();
    for s in 0..automaton.n_states() {
        if !reach.reachable[s] {
            continue;
        }
        for sigma in Assignment::enumerate(automaton.n_atoms) {
            let covered =
                automaton.transitions_from(s).any(|t| t.guard.eval(sigma));
            if !covered {
                holes.push(format!("q{s}"));
                break;
            }
        }
    }
    if !holes.is_empty() {
        findings.push(Finding::new(
            Lint::NonExhaustiveGuards,
            format!(
                "state(s) {} have no guard for some alphabet symbol; the symbolic \
                 relation is partial",
                holes.join(", ")
            ),
        ));
    }

    // Construction budget.
    let r = &input.synthesis;
    let budget = input.budget;
    let mut over: Vec<String> = Vec::new();
    if r.alphabet_size > budget.max_alphabet {
        over.push(format!(
            "alphabet {} > {} (2^{} symbols are enumerated explicitly)",
            r.alphabet_size, budget.max_alphabet, r.n_atoms
        ));
    }
    if r.states > budget.max_states {
        over.push(format!("{} states > {}", r.states, budget.max_states));
    }
    if r.transitions.total > budget.max_transitions {
        over.push(format!(
            "{} transitions > {}",
            r.transitions.total, budget.max_transitions
        ));
    }
    if !over.is_empty() {
        findings.push(Finding::new(
            Lint::ConstructionBudget,
            format!("construction budget exceeded: {}", over.join("; ")),
        ));
    }
}

fn config_lints(findings: &mut Vec<Finding>, input: &AnalysisInput<'_>) {
    let registry = input.registry;
    let automaton = input.automaton;

    // Atoms owned beyond the configured process count.
    let mut out_of_range: Vec<String> = Vec::new();
    for atom in registry.ids() {
        if registry.owner(atom) >= input.n_processes {
            out_of_range.push(registry.name(atom).to_string());
        }
    }
    if !out_of_range.is_empty() {
        let first_span = span_of(input.ltl_source, &out_of_range[0]);
        let mut finding = Finding::new(
            Lint::AtomOutOfRange,
            format!(
                "atom(s) {} are owned by processes outside the configured count of \
                 {}; their events can never be produced",
                out_of_range.join(", "),
                input.n_processes
            ),
        );
        if let Some(span) = first_span {
            finding = finding.with_span(span);
        }
        findings.push(finding);
    }

    // Processes that own nothing.
    let idle: Vec<String> = (0..input.n_processes)
        .filter(|&p| registry.atoms_of_process(p).is_empty())
        .map(|p| format!("P{p}"))
        .collect();
    if !idle.is_empty() {
        findings.push(Finding::new(
            Lint::IdleProcess,
            format!(
                "process(es) {} own no atoms; they generate events the monitors \
                 never read",
                idle.join(", ")
            ),
        ));
    }

    // Initial channel values that decide the property at the very first cut.
    if automaton.verdict(automaton.initial) == Verdict::Unknown {
        let after = automaton.step(automaton.initial, input.initial_gstate);
        if automaton.is_final(after) {
            findings.push(Finding::new(
                Lint::InitialCutDecides,
                format!(
                    "the derived initial channel values drive the monitor to {} at \
                     the first cut, before any event; check the formula's \
                     until-LHS / invariant polarity",
                    automaton.verdict(after).symbol()
                ),
            ));
        }
    }

    // Aliased atoms: 3+ atoms of one process on one workload channel.
    let effective = input.n_processes.max(registry.process_count()).max(1);
    let layout = AtomLayout::from_registry(registry, effective);
    for (process, channel, atoms) in layout.aliased_atoms() {
        let names: Vec<&str> =
            atoms.iter().map(|&a| registry.name(a)).collect();
        findings.push(Finding::new(
            Lint::AliasedAtoms,
            format!(
                "atoms {} of process P{process} share workload channel {channel:?} \
                 and can never change value independently",
                names.join(", ")
            ),
        ));
    }

    // Naming convention.
    for atom in registry.ids() {
        let name = registry.name(atom);
        if AtomRegistry::owner_from_name(name).is_none() {
            let mut finding = Finding::new(
                Lint::UnconventionalAtom,
                format!(
                    "atom `{name}` does not follow the P<i>.<name> ownership \
                     convention; it defaults to process P0"
                ),
            );
            if let Some(span) = span_of(input.ltl_source, name) {
                finding = finding.with_span(span);
            }
            findings.push(finding);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_ltl::parse;

    fn run(text: &str, n_processes: usize) -> PropertyAnalysis {
        let mut registry = AtomRegistry::new();
        let formula = parse(text, &mut registry).expect("parses");
        let (automaton, synthesis) =
            MonitorAutomaton::synthesize_with_report(&formula, &registry);
        analyze(&AnalysisInput {
            name: "test",
            ltl_source: Some(text),
            formula: &formula,
            registry: &registry,
            automaton: &automaton,
            synthesis,
            n_processes,
            initial_gstate: Assignment::ALL_FALSE,
            budget: Budget::default(),
        })
    }

    fn has_lint(a: &PropertyAnalysis, lint: Lint) -> bool {
        a.findings.iter().any(|f| f.lint == lint)
    }

    #[test]
    fn clean_spec_has_no_warnings_or_errors() {
        // `p U q` needs its LHS to hold initially (exactly what the spec layer's
        // derived initial channels provide), so hand the analyzer that state.
        let mut registry = AtomRegistry::new();
        let formula = parse("P0.p U P1.q", &mut registry).expect("parses");
        let (automaton, synthesis) =
            MonitorAutomaton::synthesize_with_report(&formula, &registry);
        let p = registry.lookup("P0.p").expect("registered");
        let a = analyze(&AnalysisInput {
            name: "test",
            ltl_source: Some("P0.p U P1.q"),
            formula: &formula,
            registry: &registry,
            automaton: &automaton,
            synthesis,
            n_processes: 2,
            initial_gstate: Assignment::from_true_atoms([p]),
            budget: Budget::default(),
        });
        assert_eq!(a.classification, MonitorabilityClass::Monitorable);
        assert!(
            a.max_severity().is_none_or(|s| s < Severity::Warn),
            "unexpected findings: {:?}",
            a.findings
        );
    }

    #[test]
    fn unsat_and_tautology_are_errors() {
        let a = run("G P0.p && F !P0.p", 1);
        assert_eq!(a.classification, MonitorabilityClass::TriviallyFalse);
        assert!(has_lint(&a, Lint::Unsatisfiable));
        assert_eq!(a.max_severity(), Some(Severity::Error));

        let a = run("F P0.p || G !P0.p", 1);
        assert_eq!(a.classification, MonitorabilityClass::TriviallyTrue);
        assert!(has_lint(&a, Lint::Tautology));
    }

    #[test]
    fn non_monitorable_spec_warns_with_trap_states() {
        let a = run("G (P0.req -> F P1.ack)", 2);
        assert_eq!(a.classification, MonitorabilityClass::NonMonitorable);
        assert!(has_lint(&a, Lint::NonMonitorable));
        assert!(has_lint(&a, Lint::UnknownTrapState));
        // Warnings, not errors: the monitor still runs, it is just weak.
        assert_eq!(a.max_severity(), Some(Severity::Warn));
    }

    #[test]
    fn vacuous_atom_is_flagged_with_a_span() {
        let text = "F P0.p && G (P1.q || !P1.q)";
        let a = run(text, 2);
        let f = a
            .findings
            .iter()
            .find(|f| f.lint == Lint::VacuousAtom)
            .expect("vacuous atom finding");
        let span = f.span.expect("span into the source");
        assert_eq!(&text[span.start..span.end], "P1.q");
    }

    #[test]
    fn out_of_range_atoms_and_idle_processes() {
        let a = run("F P4.p", 2);
        assert!(has_lint(&a, Lint::AtomOutOfRange));
        assert_eq!(a.max_severity(), Some(Severity::Error));

        let a = run("F (P0.p && P1.p)", 4);
        assert!(has_lint(&a, Lint::IdleProcess));
    }

    #[test]
    fn budget_exceeded_warns() {
        // A tiny bespoke budget keeps the test fast; the default budget is only
        // trippable by formulas whose synthesis takes seconds.
        let mut registry = AtomRegistry::new();
        let formula = parse("P0.p U P1.q", &mut registry).expect("parses");
        let (automaton, synthesis) =
            MonitorAutomaton::synthesize_with_report(&formula, &registry);
        let a = analyze(&AnalysisInput {
            name: "test",
            ltl_source: None,
            formula: &formula,
            registry: &registry,
            automaton: &automaton,
            synthesis,
            n_processes: 2,
            initial_gstate: Assignment::ALL_FALSE,
            budget: Budget { max_alphabet: 2, max_states: 1, max_transitions: 1 },
        });
        assert!(has_lint(&a, Lint::ConstructionBudget), "{:?}", a.findings);
        let f = a
            .findings
            .iter()
            .find(|f| f.lint == Lint::ConstructionBudget)
            .expect("budget finding");
        assert_eq!(f.severity, Severity::Warn);
        assert!(f.message.contains("alphabet"), "{}", f.message);
    }

    #[test]
    fn initial_cut_lint_fires_when_initial_state_decides() {
        // G P0.p with the channel starting false: the very first cut violates it.
        let mut registry = AtomRegistry::new();
        let formula = parse("G P0.p", &mut registry).expect("parses");
        let (automaton, synthesis) =
            MonitorAutomaton::synthesize_with_report(&formula, &registry);
        let a = analyze(&AnalysisInput {
            name: "test",
            ltl_source: Some("G P0.p"),
            formula: &formula,
            registry: &registry,
            automaton: &automaton,
            synthesis,
            n_processes: 1,
            initial_gstate: Assignment::ALL_FALSE,
            budget: Budget::default(),
        });
        assert!(a.findings.iter().any(|f| f.lint == Lint::InitialCutDecides));
    }

    #[test]
    fn findings_sort_most_severe_first() {
        let a = run("F P4.p", 2); // C001 error + C002 idle warn
        assert!(a.findings.len() >= 2);
        for pair in a.findings.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
    }
}
