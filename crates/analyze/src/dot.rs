//! Analysis-annotated Graphviz export.
//!
//! Same digraph shape as `dlrv_automaton::dot::to_dot` (state names `q<i>` /
//! `q_top` / `q_bot`, guard labels from the registry), plus the analyzer's
//! verdict-reachability classes as node colors, dashed outlines for unreachable
//! states and a `(trap)` marker on `?`-traps — so a single glance at the figure
//! shows *why* a spec is or is not monitorable.

use crate::classify::StateClass;
use crate::report::PropertyAnalysis;
use dlrv_automaton::MonitorAutomaton;
use dlrv_ltl::{AtomRegistry, Verdict};
use std::fmt::Write as _;

/// Fill color of a verdict-reachability class.
fn class_color(class: StateClass) -> &'static str {
    match class {
        StateClass::FinalTrue => "palegreen",
        StateClass::FinalFalse => "lightcoral",
        StateClass::BothReachable => "white",
        StateClass::OnlyTrueReachable => "honeydew",
        StateClass::OnlyFalseReachable => "mistyrose",
        StateClass::NeitherReachable => "lightgray",
    }
}

/// Renders `automaton` as a DOT digraph annotated with `analysis`.
///
/// The `analysis` must come from the same automaton (state counts are asserted).
pub fn to_dot_annotated(
    automaton: &MonitorAutomaton,
    registry: &AtomRegistry,
    analysis: &PropertyAnalysis,
    title: &str,
) -> String {
    assert_eq!(
        analysis.state_classes.len(),
        automaton.n_states(),
        "analysis does not match the automaton"
    );
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(
        out,
        "  label=\"classification: {}\"; labelloc=t;",
        analysis.classification.name()
    );
    let _ = writeln!(out, "  node [shape=circle, style=filled];");
    let _ = writeln!(out, "  __init [shape=point, label=\"\", style=solid];");
    for s in 0..automaton.n_states() {
        let class = analysis.state_classes[s];
        let (name, shape) = match automaton.verdict(s) {
            Verdict::False => ("q_bot".to_string(), "doublecircle"),
            Verdict::True => ("q_top".to_string(), "doublecircle"),
            Verdict::Unknown => (format!("q{s}"), "circle"),
        };
        let marker = if class == StateClass::NeitherReachable { "\\n(trap)" } else { "" };
        let style = if analysis.reachable[s] { "filled" } else { "filled,dashed" };
        let _ = writeln!(
            out,
            "  s{s} [label=\"{name}\\n{}{marker}\", shape={shape}, \
             fillcolor=\"{}\", style=\"{style}\"];",
            automaton.verdict(s).symbol(),
            class_color(class)
        );
    }
    let _ = writeln!(out, "  __init -> s{};", automaton.initial);
    for t in &automaton.transitions {
        let guard = t.guard.display(registry);
        let escaped = guard.replace('"', "\\\"");
        let _ = writeln!(out, "  s{} -> s{} [label=\"{escaped}\"];", t.from, t.to);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisInput, Budget};
    use dlrv_ltl::{parse, Assignment};

    #[test]
    fn annotated_dot_marks_traps_and_keeps_the_plain_shape() {
        let mut registry = AtomRegistry::new();
        let formula = parse("G (P0.req -> F P1.ack)", &mut registry).expect("parses");
        let (automaton, synthesis) =
            MonitorAutomaton::synthesize_with_report(&formula, &registry);
        let analysis = analyze(&AnalysisInput {
            name: "reqack",
            ltl_source: Some("G (P0.req -> F P1.ack)"),
            formula: &formula,
            registry: &registry,
            automaton: &automaton,
            synthesis,
            n_processes: 2,
            initial_gstate: Assignment::ALL_FALSE,
            budget: Budget::default(),
        });
        let dot = to_dot_annotated(&automaton, &registry, &analysis, "reqack");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("(trap)"), "trap states must be marked: {dot}");
        assert!(dot.contains("classification: non_monitorable"), "{dot}");
        assert!(dot.contains("lightgray"), "traps are gray: {dot}");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn annotated_dot_keeps_guard_labels_and_colors_finals() {
        let mut registry = AtomRegistry::new();
        let formula = parse("F (P0.p && P1.p)", &mut registry).expect("parses");
        let (automaton, synthesis) =
            MonitorAutomaton::synthesize_with_report(&formula, &registry);
        let analysis = analyze(&AnalysisInput {
            name: "rendezvous",
            ltl_source: Some("F (P0.p && P1.p)"),
            formula: &formula,
            registry: &registry,
            automaton: &automaton,
            synthesis,
            n_processes: 2,
            initial_gstate: Assignment::ALL_FALSE,
            budget: Budget::default(),
        });
        let dot = to_dot_annotated(&automaton, &registry, &analysis, "rendezvous");
        assert!(dot.contains("P0.p"), "guards must use atom names: {dot}");
        assert!(dot.contains("q_top"), "⊤ state keeps its classic name: {dot}");
        assert!(dot.contains("palegreen"), "⊤ state is green: {dot}");
        assert!(dot.contains("->"));
        assert!(!dot.contains("(trap)"), "co-safety has no traps: {dot}");
    }
}
