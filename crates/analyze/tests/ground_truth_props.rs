//! Property-based pinning of the analyzer's classifications against ground truth.
//!
//! The classifier only reads the synthesized Moore machine, so each claim it makes
//! is checked here against an independent oracle on random formulas:
//!
//! * trivially-⊥ / trivially-⊤ classifications against the [`evaluate_lasso`]
//!   reference semantics (no lasso may satisfy an unsatisfiable formula, none may
//!   violate a tautology);
//! * safety / co-safety against the verdicts actually produced by running the
//!   monitor over random finite words (safety ⇒ ⊤ is never announced, co-safety ⇒
//!   ⊥ is never announced);
//! * analyzer-unreachable states against explicit [`MonitorAutomaton::step`] runs
//!   (a state the analyzer calls unreachable must never be visited).
//!
//! Formulas are drawn by the same seeded recursive generator as the synthesis
//! pinning tests in `dlrv-automaton`.

use dlrv_analyze::{MonitorabilityClass, VerdictReachability};
use dlrv_automaton::MonitorAutomaton;
use dlrv_ltl::{evaluate_lasso, Assignment, AtomId, AtomRegistry, Formula, Verdict};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a random formula over `n_atoms` atoms with at most `budget` AST nodes.
fn random_formula(rng: &mut StdRng, n_atoms: u32, budget: usize) -> Formula {
    if budget <= 1 {
        return match rng.gen_range(0u32..6) {
            0 => Formula::True,
            1 => Formula::False,
            _ => Formula::Atom(AtomId(rng.gen_range(0..n_atoms))),
        };
    }
    let half = budget / 2;
    match rng.gen_range(0u32..8) {
        0 => Formula::Atom(AtomId(rng.gen_range(0..n_atoms))),
        1 => Formula::not(random_formula(rng, n_atoms, budget - 1)),
        2 => Formula::and(
            random_formula(rng, n_atoms, half),
            random_formula(rng, n_atoms, half),
        ),
        3 => Formula::or(
            random_formula(rng, n_atoms, half),
            random_formula(rng, n_atoms, half),
        ),
        4 => Formula::next(random_formula(rng, n_atoms, budget - 1)),
        5 => Formula::until(
            random_formula(rng, n_atoms, half),
            random_formula(rng, n_atoms, half),
        ),
        6 => Formula::release(
            random_formula(rng, n_atoms, half),
            random_formula(rng, n_atoms, half),
        ),
        _ => Formula::eventually(random_formula(rng, n_atoms, budget - 1)),
    }
}

/// A registry with one `P<i>.p`-style atom per process, as the monitors expect.
fn registry(n_atoms: u32) -> AtomRegistry {
    let mut reg = AtomRegistry::new();
    for i in 0..n_atoms {
        reg.intern(&format!("P{i}.p"), i as usize);
    }
    reg
}

fn random_word(rng: &mut StdRng, n_atoms: u32, len: usize) -> Vec<Assignment> {
    (0..len)
        .map(|_| Assignment(rng.gen_range(0u64..(1u64 << n_atoms))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Trivial classifications match the lasso semantics: a trivially-⊥ formula is
    /// violated by every sampled lasso, a trivially-⊤ one satisfied by every one —
    /// and both pin the monitor's initial verdict.
    #[test]
    fn trivial_classifications_agree_with_lasso_semantics(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_atoms = rng.gen_range(1u32..=3);
        let formula = random_formula(&mut rng, n_atoms, 7);
        let monitor = MonitorAutomaton::synthesize(&formula, &registry(n_atoms));
        let class = VerdictReachability::of(&monitor).classification(&monitor);

        match class {
            MonitorabilityClass::TriviallyFalse => {
                prop_assert!(monitor.verdict(monitor.initial) == Verdict::False);
                for _ in 0..8 {
                    let prefix_len = rng.gen_range(0..=2);
                    let cycle_len = rng.gen_range(1..=2);
                    let prefix = random_word(&mut rng, n_atoms, prefix_len);
                    let cycle = random_word(&mut rng, n_atoms, cycle_len);
                    prop_assert!(
                        !evaluate_lasso(&formula, &prefix, &cycle),
                        "trivially-⊥ {formula} satisfied by {prefix:?}({cycle:?})^ω"
                    );
                }
            }
            MonitorabilityClass::TriviallyTrue => {
                prop_assert!(monitor.verdict(monitor.initial) == Verdict::True);
                for _ in 0..8 {
                    let prefix_len = rng.gen_range(0..=2);
                    let cycle_len = rng.gen_range(1..=2);
                    let prefix = random_word(&mut rng, n_atoms, prefix_len);
                    let cycle = random_word(&mut rng, n_atoms, cycle_len);
                    prop_assert!(
                        evaluate_lasso(&formula, &prefix, &cycle),
                        "trivially-⊤ {formula} violated by {prefix:?}({cycle:?})^ω"
                    );
                }
            }
            _ => prop_assert!(monitor.verdict(monitor.initial) == Verdict::Unknown),
        }
    }

    /// The safety/co-safety split bounds what the running monitor may announce: a
    /// safety monitor never reaches ⊤ on any finite word, a co-safety monitor
    /// never reaches ⊥.
    #[test]
    fn safety_split_bounds_reachable_verdicts(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_atoms = rng.gen_range(1u32..=3);
        let formula = random_formula(&mut rng, n_atoms, 7);
        let monitor = MonitorAutomaton::synthesize(&formula, &registry(n_atoms));
        let class = VerdictReachability::of(&monitor).classification(&monitor);

        for _ in 0..12 {
            let len = rng.gen_range(0..=5);
            let word = random_word(&mut rng, n_atoms, len);
            let verdict = monitor.evaluate(&word);
            match class {
                MonitorabilityClass::Safety => prop_assert!(
                    verdict != Verdict::True,
                    "safety {formula} announced ⊤ on {word:?}"
                ),
                MonitorabilityClass::CoSafety => prop_assert!(
                    verdict != Verdict::False,
                    "co-safety {formula} announced ⊥ on {word:?}"
                ),
                _ => {}
            }
        }
    }

    /// A state the analyzer calls unreachable is never visited by explicit `step`
    /// runs from the initial state.
    #[test]
    fn unreachable_states_are_never_visited(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_atoms = rng.gen_range(1u32..=3);
        let formula = random_formula(&mut rng, n_atoms, 7);
        let monitor = MonitorAutomaton::synthesize(&formula, &registry(n_atoms));
        let reach = VerdictReachability::of(&monitor);

        for _ in 0..8 {
            let mut state = monitor.initial;
            prop_assert!(reach.reachable[state]);
            for sigma in random_word(&mut rng, n_atoms, 6) {
                state = monitor.step(state, sigma);
                prop_assert!(
                    reach.reachable[state],
                    "{formula}: step reached q{state}, which the analyzer calls \
                     unreachable"
                );
            }
        }
    }
}
