//! LEB128 variable-length integers — the primitive of the binary wire codec.
//!
//! Small numbers dominate the hot path (process indices, sequence numbers,
//! vector-clock entries of short runs), so encoding them in one byte instead of
//! a fixed-width field or decimal JSON digits is where most of the binary
//! codec's size win comes from.  The format is standard unsigned LEB128: seven
//! payload bits per byte, high bit set on every byte except the last.
//!
//! Both `dlrv-stream`'s record codec and `dlrv-net`'s message codec build on
//! this module, so the two layers can never disagree on integer framing.

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos` past it.  Returns `None` when the buffer ends mid-varint or the
/// encoding is longer than a `u64` allows (a corrupt frame, since frames are
/// fully buffered before decoding starts).
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let bits = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the single remaining bit.
        if shift == 63 && bits > 1 {
            return None;
        }
        if shift > 63 {
            return None;
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Appends a length-prefixed byte string (varint length + raw bytes).
#[inline]
pub fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte string written by [`write_bytes`].
#[inline]
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = usize::try_from(read_u64(buf, pos)?).ok()?;
    let end = pos.checked_add(len)?;
    let slice = buf.get(*pos..end)?;
    *pos = end;
    Some(slice)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_boundary_values() {
        let values = [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &values {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len(), "value {v} consumed exactly");
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        for v in 0u64..0x80 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_are_rejected() {
        // Continuation bit set but no next byte.
        let mut pos = 0;
        assert_eq!(read_u64(&[0x80], &mut pos), None);
        // Eleven continuation bytes can never be a valid u64.
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&overlong, &mut pos), None);
        // A 10th byte carrying more than the one remaining bit overflows.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        let mut pos = 0;
        assert_eq!(read_u64(&overflow, &mut pos), None);
    }

    #[test]
    fn byte_strings_round_trip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello");
        write_bytes(&mut buf, b"");
        write_u64(&mut buf, 7);
        let mut pos = 0;
        assert_eq!(read_bytes(&buf, &mut pos), Some(&b"hello"[..]));
        assert_eq!(read_bytes(&buf, &mut pos), Some(&b""[..]));
        assert_eq!(read_u64(&buf, &mut pos), Some(7));
        assert_eq!(pos, buf.len());
        // Length prefix pointing past the buffer is rejected.
        let mut bad = Vec::new();
        write_u64(&mut bad, 99);
        let mut pos = 0;
        assert_eq!(read_bytes(&bad, &mut pos), None);
    }
}
