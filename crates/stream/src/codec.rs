//! The wire codec of the streaming runtime: length-prefixed JSON or binary records.
//!
//! A stream is a sequence of *frames*.  Each frame is a 4-byte big-endian header
//! followed by a payload encoding one [`StreamRecord`]: a session opening, one
//! program event of a session, or a session close.  The low 31 bits of the header
//! are the payload length; the top bit selects the payload format:
//!
//! * **clear** — the payload is JSON (over the in-tree [`dlrv_json`] — this build
//!   environment has no serde), the original self-describing format;
//! * **set** — the payload is the compact binary format of
//!   [`BinaryStreamEncoder`]: varint-packed integers, a one-byte record tag, and
//!   property names interned per stream so each name travels once.
//!
//! [`MAX_FRAME_LEN`] is far below 2³¹, so the flag bit can never collide with a
//! legitimate JSON length, and [`FrameDecoder`] detects the format per frame —
//! mixed streams decode transparently, which is what lets the binary path be
//! introduced per-connection without a protocol version bump.
//!
//! The framing makes record boundaries independent of payload syntax and lets a
//! reader hand the decoder arbitrary byte chunks — exactly what a socket delivers.
//!
//! [`EventSource`] abstracts where records come from: an in-memory vector
//! ([`VecSource`]), any [`std::io::Read`] ([`ReaderSource`]), or something custom
//! (a socket acceptor, a replay file).  The sharded runtime only ever sees the trait.

use crate::varint;
use dlrv_json::{object, Json, JsonError};
use dlrv_ltl::{Assignment, ProcessId};
use dlrv_vclock::{Event, EventKind, VectorClock};
use std::fmt;
use std::io::Read;

/// Identifies one monitored session within a stream.
pub type SessionId = u64;

/// Upper bound on a single frame's payload; a corrupt length prefix fails fast
/// instead of asking the decoder to buffer gigabytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Top bit of the 4-byte frame header: set when the payload is binary-encoded,
/// clear when it is JSON.  [`MAX_FRAME_LEN`] `< 2³¹` guarantees the bit is free.
pub const BINARY_FRAME_FLAG: u32 = 1 << 31;

/// Error of the codec layer: framing, JSON syntax, or I/O.
#[derive(Debug)]
pub struct StreamError {
    /// Human-readable description.
    pub message: String,
}

impl StreamError {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        StreamError {
            message: message.into(),
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for StreamError {}

impl From<JsonError> for StreamError {
    fn from(e: JsonError) -> Self {
        StreamError::msg(format!("wire JSON: {e}"))
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::msg(format!("wire I/O: {e}"))
    }
}

/// One record of the wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamRecord {
    /// Opens session `session`: subsequent events belong to a fresh set of monitors.
    Open {
        /// The session being opened.
        session: SessionId,
        /// Name of the monitored property (resolved by the receiver; for the
        /// repository's workloads this is a paper property letter `A`–`F`).
        property: String,
        /// Number of processes in the monitored execution.
        n_processes: usize,
        /// Initial global state of the session's propositions, as raw
        /// [`Assignment`] bits.
        initial_state: u64,
    },
    /// One program event of an open session.
    Event {
        /// The session the event belongs to.
        session: SessionId,
        /// The event, exactly as a co-located monitor would observe it.
        event: Event,
    },
    /// Closes session `session`: end-of-stream for its monitors, final verdict due.
    Close {
        /// The session being closed.
        session: SessionId,
    },
}

impl StreamRecord {
    /// The session this record addresses.
    pub fn session(&self) -> SessionId {
        match self {
            StreamRecord::Open { session, .. }
            | StreamRecord::Event { session, .. }
            | StreamRecord::Close { session } => *session,
        }
    }
}

/// Serializes an event kind as a tagged object.
fn kind_to_json(kind: &EventKind) -> Json {
    match kind {
        EventKind::Internal => object([("kind", Json::from("internal"))]),
        EventKind::Send { to, msg_id } => object([
            ("kind", Json::from("send")),
            ("to", Json::from(*to)),
            ("msg_id", Json::from(*msg_id)),
        ]),
        EventKind::Broadcast { msg_id } => object([
            ("kind", Json::from("broadcast")),
            ("msg_id", Json::from(*msg_id)),
        ]),
        EventKind::Receive { from, msg_id } => object([
            ("kind", Json::from("receive")),
            ("from", Json::from(*from)),
            ("msg_id", Json::from(*msg_id)),
        ]),
    }
}

fn kind_from_json(v: &Json) -> Result<EventKind, JsonError> {
    match v.get("kind")?.as_str()? {
        "internal" => Ok(EventKind::Internal),
        "send" => Ok(EventKind::Send {
            to: v.get("to")?.as_usize()?,
            msg_id: v.get("msg_id")?.as_u64()?,
        }),
        "broadcast" => Ok(EventKind::Broadcast {
            msg_id: v.get("msg_id")?.as_u64()?,
        }),
        "receive" => Ok(EventKind::Receive {
            from: v.get("from")?.as_usize()?,
            msg_id: v.get("msg_id")?.as_u64()?,
        }),
        other => Err(JsonError::msg(format!("unknown event kind `{other}`"))),
    }
}

/// Serializes a program event.  The local state travels as raw [`Assignment`] bits
/// (an atom-indexed bitmask), and the vector clock as a plain array.
pub fn event_to_json(event: &Event) -> Json {
    object([
        ("process", Json::from(event.process)),
        ("kind", kind_to_json(&event.kind)),
        ("sn", Json::from(event.sn)),
        (
            "vc",
            Json::Array(event.vc.entries().iter().map(|&e| Json::from(e)).collect()),
        ),
        ("state", Json::from(event.state.0)),
        ("time", Json::from(event.time)),
    ])
}

/// Parses a program event back from its [`event_to_json`] form.
pub fn event_from_json(v: &Json) -> Result<Event, JsonError> {
    let process: ProcessId = v.get("process")?.as_usize()?;
    let vc_entries: Vec<u64> = v
        .get("vc")?
        .as_array()?
        .iter()
        .map(Json::as_u64)
        .collect::<Result<_, _>>()?;
    if process >= vc_entries.len() {
        return Err(JsonError::msg(format!(
            "event process {process} out of range for a {}-entry vector clock",
            vc_entries.len()
        )));
    }
    Ok(Event {
        process,
        kind: kind_from_json(v.get("kind")?)?,
        sn: v.get("sn")?.as_u64()?,
        vc: VectorClock::from_entries(vc_entries),
        state: Assignment(v.get("state")?.as_u64()?),
        time: v.get("time")?.as_f64()?,
    })
}

/// Serializes one wire record as a tagged JSON object (the frame payload).
pub fn record_to_json(record: &StreamRecord) -> Json {
    match record {
        StreamRecord::Open {
            session,
            property,
            n_processes,
            initial_state,
        } => object([
            ("type", Json::from("open")),
            ("session", Json::from(*session)),
            ("property", Json::from(property.as_str())),
            ("n_processes", Json::from(*n_processes)),
            ("initial_state", Json::from(*initial_state)),
        ]),
        StreamRecord::Event { session, event } => object([
            ("type", Json::from("event")),
            ("session", Json::from(*session)),
            ("event", event_to_json(event)),
        ]),
        StreamRecord::Close { session } => object([
            ("type", Json::from("close")),
            ("session", Json::from(*session)),
        ]),
    }
}

/// Parses one wire record.
pub fn record_from_json(v: &Json) -> Result<StreamRecord, JsonError> {
    let session = v.get("session")?.as_u64()?;
    match v.get("type")?.as_str()? {
        "open" => Ok(StreamRecord::Open {
            session,
            property: v.get("property")?.as_str()?.to_string(),
            n_processes: v.get("n_processes")?.as_usize()?,
            initial_state: v.get("initial_state")?.as_u64()?,
        }),
        "event" => Ok(StreamRecord::Event {
            session,
            event: event_from_json(v.get("event")?)?,
        }),
        "close" => Ok(StreamRecord::Close { session }),
        other => Err(JsonError::msg(format!("unknown record type `{other}`"))),
    }
}

/// Encodes one record as a frame: 4-byte big-endian payload length + compact JSON
/// payload (no whitespace — this is the hot wire path).
pub fn encode_frame(record: &StreamRecord) -> Vec<u8> {
    let payload = record_to_json(record).to_string_compact().into_bytes();
    assert!(payload.len() <= MAX_FRAME_LEN, "record exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encodes a whole record sequence into one byte stream.
pub fn encode_stream(records: &[StreamRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(&encode_frame(r));
    }
    out
}

// ---------------------------------------------------------------------------
// Binary payload format.
//
// Payload grammar (all integers unsigned LEB128 varints unless noted):
//
//   record  = 0x00 open | 0x01 event | 0x02 close
//   open    = session prop-ref n_processes initial_state
//   event   = session process kind sn vc state time
//   close   = session
//   prop-ref= index                      -- index < table len: back-reference
//           | index len name-bytes       -- index == table len: new entry
//   kind    = 0x00                       -- internal
//           | 0x01 to msg_id             -- send
//           | 0x02 msg_id                -- broadcast
//           | 0x03 from msg_id           -- receive
//   vc      = len entry*
//   time    = 8-byte little-endian f64 bits
//
// The property table is per-stream state shared by encoder and decoder: each
// distinct property name is transmitted once (on first use) and referenced by
// index afterwards, so a 400-session open burst costs one string, not 400.
// ---------------------------------------------------------------------------

const REC_OPEN: u8 = 0;
const REC_EVENT: u8 = 1;
const REC_CLOSE: u8 = 2;

const KIND_INTERNAL: u8 = 0;
const KIND_SEND: u8 = 1;
const KIND_BROADCAST: u8 = 2;
const KIND_RECEIVE: u8 = 3;

/// Appends the binary encoding of one program event to `out`.  Public so the
/// `dlrv-net` message codec embeds events byte-identically to the stream codec.
pub fn event_to_binary(event: &Event, out: &mut Vec<u8>) {
    varint::write_u64(out, event.process as u64);
    match &event.kind {
        EventKind::Internal => out.push(KIND_INTERNAL),
        EventKind::Send { to, msg_id } => {
            out.push(KIND_SEND);
            varint::write_u64(out, *to as u64);
            varint::write_u64(out, *msg_id);
        }
        EventKind::Broadcast { msg_id } => {
            out.push(KIND_BROADCAST);
            varint::write_u64(out, *msg_id);
        }
        EventKind::Receive { from, msg_id } => {
            out.push(KIND_RECEIVE);
            varint::write_u64(out, *from as u64);
            varint::write_u64(out, *msg_id);
        }
    }
    varint::write_u64(out, event.sn);
    varint::write_u64(out, event.vc.len() as u64);
    for &entry in event.vc.entries() {
        varint::write_u64(out, entry);
    }
    varint::write_u64(out, event.state.0);
    out.extend_from_slice(&event.time.to_bits().to_le_bytes());
}

fn truncated(what: &str) -> StreamError {
    StreamError::msg(format!("binary frame truncated or corrupt at {what}"))
}

fn read_uv(buf: &[u8], pos: &mut usize, what: &str) -> Result<u64, StreamError> {
    varint::read_u64(buf, pos).ok_or_else(|| truncated(what))
}

fn read_usize(buf: &[u8], pos: &mut usize, what: &str) -> Result<usize, StreamError> {
    usize::try_from(read_uv(buf, pos, what)?).map_err(|_| truncated(what))
}

/// Decodes one program event from its [`event_to_binary`] form, advancing `pos`.
pub fn event_from_binary(buf: &[u8], pos: &mut usize) -> Result<Event, StreamError> {
    let process = read_usize(buf, pos, "event process")?;
    let kind = match *buf.get(*pos).ok_or_else(|| truncated("event kind"))? {
        KIND_INTERNAL => {
            *pos += 1;
            EventKind::Internal
        }
        KIND_SEND => {
            *pos += 1;
            EventKind::Send {
                to: read_usize(buf, pos, "send target")?,
                msg_id: read_uv(buf, pos, "send msg_id")?,
            }
        }
        KIND_BROADCAST => {
            *pos += 1;
            EventKind::Broadcast {
                msg_id: read_uv(buf, pos, "broadcast msg_id")?,
            }
        }
        KIND_RECEIVE => {
            *pos += 1;
            EventKind::Receive {
                from: read_usize(buf, pos, "receive source")?,
                msg_id: read_uv(buf, pos, "receive msg_id")?,
            }
        }
        other => {
            return Err(StreamError::msg(format!(
                "unknown binary event kind tag {other}"
            )))
        }
    };
    let sn = read_uv(buf, pos, "event sn")?;
    let n = read_usize(buf, pos, "vector clock length")?;
    if n > buf.len().saturating_sub(*pos) + 1 {
        // Each entry takes at least one byte; a length prefix larger than the
        // remaining payload is corrupt, not a request to allocate.
        return Err(truncated("vector clock length"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(read_uv(buf, pos, "vector clock entry")?);
    }
    if process >= entries.len() {
        return Err(StreamError::msg(format!(
            "event process {process} out of range for a {}-entry vector clock",
            entries.len()
        )));
    }
    let state = Assignment(read_uv(buf, pos, "event state")?);
    let time_bytes: [u8; 8] = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| truncated("event time"))?
        .try_into()
        .expect("slice of length 8");
    *pos += 8;
    Ok(Event {
        process,
        kind,
        sn,
        vc: VectorClock::from_entries(entries),
        state,
        time: f64::from_bits(u64::from_le_bytes(time_bytes)),
    })
}

/// Stateful encoder for the binary frame format.
///
/// The only state is the property-name intern table, which must march in step
/// with the receiving [`FrameDecoder`]'s — so use one encoder per stream (or
/// per connection) and encode records in transmission order.
#[derive(Debug, Default)]
pub struct BinaryStreamEncoder {
    props: Vec<String>,
}

impl BinaryStreamEncoder {
    /// An encoder with an empty property table.
    pub fn new() -> Self {
        BinaryStreamEncoder::default()
    }

    fn write_prop_ref(&mut self, name: &str, out: &mut Vec<u8>) {
        if let Some(idx) = self.props.iter().position(|p| p == name) {
            varint::write_u64(out, idx as u64);
        } else {
            varint::write_u64(out, self.props.len() as u64);
            varint::write_bytes(out, name.as_bytes());
            self.props.push(name.to_string());
        }
    }

    /// Appends one complete binary frame (header + payload) for `record` to `out`.
    pub fn encode_frame_into(&mut self, record: &StreamRecord, out: &mut Vec<u8>) {
        let header_at = out.len();
        out.extend_from_slice(&[0u8; 4]);
        match record {
            StreamRecord::Open {
                session,
                property,
                n_processes,
                initial_state,
            } => {
                out.push(REC_OPEN);
                varint::write_u64(out, *session);
                self.write_prop_ref(property, out);
                varint::write_u64(out, *n_processes as u64);
                varint::write_u64(out, *initial_state);
            }
            StreamRecord::Event { session, event } => {
                out.push(REC_EVENT);
                varint::write_u64(out, *session);
                event_to_binary(event, out);
            }
            StreamRecord::Close { session } => {
                out.push(REC_CLOSE);
                varint::write_u64(out, *session);
            }
        }
        let payload_len = out.len() - header_at - 4;
        assert!(payload_len <= MAX_FRAME_LEN, "record exceeds MAX_FRAME_LEN");
        let header = (payload_len as u32) | BINARY_FRAME_FLAG;
        out[header_at..header_at + 4].copy_from_slice(&header.to_be_bytes());
    }

    /// Encodes one record as a standalone binary frame.
    pub fn encode_frame(&mut self, record: &StreamRecord) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_frame_into(record, &mut out);
        out
    }
}

/// Encodes a whole record sequence into one binary byte stream (the compact
/// counterpart of [`encode_stream`]; [`FrameDecoder`] reads either, or a mix).
pub fn encode_stream_binary(records: &[StreamRecord]) -> Vec<u8> {
    let mut encoder = BinaryStreamEncoder::new();
    let mut out = Vec::new();
    for r in records {
        encoder.encode_frame_into(r, &mut out);
    }
    out
}

fn decode_binary_record(
    payload: &[u8],
    props: &mut Vec<String>,
) -> Result<StreamRecord, StreamError> {
    let mut pos = 0usize;
    let tag = *payload.get(pos).ok_or_else(|| truncated("record tag"))?;
    pos += 1;
    let record = match tag {
        REC_OPEN => {
            let session = read_uv(payload, &mut pos, "open session")?;
            let idx = read_usize(payload, &mut pos, "property index")?;
            let property = if idx < props.len() {
                props[idx].clone()
            } else if idx == props.len() {
                let bytes = varint::read_bytes(payload, &mut pos)
                    .ok_or_else(|| truncated("property name"))?;
                let name = std::str::from_utf8(bytes)
                    .map_err(|_| StreamError::msg("property name is not UTF-8"))?
                    .to_string();
                props.push(name.clone());
                name
            } else {
                return Err(StreamError::msg(format!(
                    "property index {idx} skips ahead of a {}-entry intern table",
                    props.len()
                )));
            };
            StreamRecord::Open {
                session,
                property,
                n_processes: read_usize(payload, &mut pos, "open n_processes")?,
                initial_state: read_uv(payload, &mut pos, "open initial_state")?,
            }
        }
        REC_EVENT => {
            let session = read_uv(payload, &mut pos, "event session")?;
            StreamRecord::Event {
                session,
                event: event_from_binary(payload, &mut pos)?,
            }
        }
        REC_CLOSE => StreamRecord::Close {
            session: read_uv(payload, &mut pos, "close session")?,
        },
        other => {
            return Err(StreamError::msg(format!(
                "unknown binary record tag {other}"
            )))
        }
    };
    if pos != payload.len() {
        return Err(StreamError::msg(format!(
            "binary frame has {} trailing payload bytes",
            payload.len() - pos
        )));
    }
    Ok(record)
}

/// One session's worth of wire input for [`interleave_sessions`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStream {
    /// The session id the records will carry.
    pub session: SessionId,
    /// Property name for the [`StreamRecord::Open`].
    pub property: String,
    /// Process count for the open record.
    pub n_processes: usize,
    /// Initial-state bits for the open record.
    pub initial_state: u64,
    /// The session's events, already in delivery (timestamp) order.
    pub events: Vec<Event>,
}

/// Builds the canonical multi-session record sequence: every session's `Open`
/// first, then events interleaved round-robin across sessions (so every shard
/// juggles many live sessions at once instead of one after another), then every
/// `Close`.
///
/// Both the throughput runner and the stream-equivalence test construct their wire
/// streams through this function, so they always exercise the same record shape.
pub fn interleave_sessions(sessions: &[SessionStream]) -> Vec<StreamRecord> {
    let mut records = Vec::new();
    for s in sessions {
        records.push(StreamRecord::Open {
            session: s.session,
            property: s.property.clone(),
            n_processes: s.n_processes,
            initial_state: s.initial_state,
        });
    }
    let longest = sessions.iter().map(|s| s.events.len()).max().unwrap_or(0);
    for k in 0..longest {
        for s in sessions {
            if let Some(event) = s.events.get(k) {
                records.push(StreamRecord::Event {
                    session: s.session,
                    event: event.clone(),
                });
            }
        }
    }
    for s in sessions {
        records.push(StreamRecord::Close { session: s.session });
    }
    records
}

/// An incremental frame decoder: feed it byte chunks of any size, pull complete
/// records out.  Each frame's header says whether its payload is JSON or binary
/// (see [`BINARY_FRAME_FLAG`]), so one decoder handles either format — or a mix.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted lazily).
    pos: usize,
    /// Property-name intern table for binary frames, mirroring the sending
    /// [`BinaryStreamEncoder`]'s table entry for entry.
    props: Vec<String>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing, so the buffer never holds already-decoded frames.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete record, or `None` when more bytes are needed.
    pub fn next_record(&mut self) -> Result<Option<StreamRecord>, StreamError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let header = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        let binary = header & BINARY_FRAME_FLAG != 0;
        let len = (header & !BINARY_FRAME_FLAG) as usize;
        if len > MAX_FRAME_LEN {
            return Err(StreamError::msg(format!(
                "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
            )));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = &avail[4..4 + len];
        let record = if binary {
            decode_binary_record(payload, &mut self.props)?
        } else {
            let text = std::str::from_utf8(payload)
                .map_err(|_| StreamError::msg("frame payload is not UTF-8"))?;
            record_from_json(&Json::parse(text)?)?
        };
        self.pos += 4 + len;
        Ok(Some(record))
    }
}

/// Where the runtime's records come from.
pub trait EventSource {
    /// The next record, `None` at end-of-stream.
    fn next_record(&mut self) -> Result<Option<StreamRecord>, StreamError>;
}

/// An in-memory record source (already-decoded records, no wire bytes involved).
#[derive(Debug)]
pub struct VecSource {
    records: std::vec::IntoIter<StreamRecord>,
}

impl VecSource {
    /// A source yielding `records` in order.
    pub fn new(records: Vec<StreamRecord>) -> Self {
        VecSource {
            records: records.into_iter(),
        }
    }
}

impl EventSource for VecSource {
    fn next_record(&mut self) -> Result<Option<StreamRecord>, StreamError> {
        Ok(self.records.next())
    }
}

/// Decodes framed records from any [`Read`] — a file, a socket, an in-memory cursor.
#[derive(Debug)]
pub struct ReaderSource<R: Read> {
    reader: R,
    decoder: FrameDecoder,
    chunk: Vec<u8>,
    eof: bool,
}

impl<R: Read> ReaderSource<R> {
    /// Wraps `reader`; bytes are pulled in fixed-size chunks as records are needed.
    pub fn new(reader: R) -> Self {
        ReaderSource {
            reader,
            decoder: FrameDecoder::new(),
            chunk: vec![0u8; 64 * 1024],
            eof: false,
        }
    }
}

impl<R: Read> EventSource for ReaderSource<R> {
    fn next_record(&mut self) -> Result<Option<StreamRecord>, StreamError> {
        loop {
            if let Some(record) = self.decoder.next_record()? {
                return Ok(Some(record));
            }
            if self.eof {
                if self.decoder.pending_bytes() > 0 {
                    return Err(StreamError::msg(format!(
                        "stream ends mid-frame ({} trailing bytes)",
                        self.decoder.pending_bytes()
                    )));
                }
                return Ok(None);
            }
            let n = self.reader.read(&mut self.chunk)?;
            if n == 0 {
                self.eof = true;
            } else {
                self.decoder.push(&self.chunk[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event {
            process: 1,
            kind: EventKind::Receive { from: 0, msg_id: 7 },
            sn: 3,
            vc: VectorClock::from_entries(vec![2, 3]),
            state: Assignment(0b1010),
            time: 4.25,
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let records = [
            StreamRecord::Open {
                session: 42,
                property: "C".to_string(),
                n_processes: 2,
                initial_state: 5,
            },
            StreamRecord::Event {
                session: 42,
                event: sample_event(),
            },
            StreamRecord::Close { session: 42 },
        ];
        for r in &records {
            let text = record_to_json(r).to_string_pretty();
            let back = record_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        for kind in [
            EventKind::Internal,
            EventKind::Send { to: 2, msg_id: 9 },
            EventKind::Broadcast { msg_id: 1 },
            EventKind::Receive { from: 1, msg_id: 3 },
        ] {
            let event = Event {
                kind,
                process: 0,
                sn: 1,
                vc: VectorClock::from_entries(vec![1, 0, 0]),
                state: Assignment::ALL_FALSE,
                time: 0.5,
            };
            let back = event_from_json(&event_to_json(&event)).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn frame_decoder_handles_byte_at_a_time_input() {
        let records = vec![
            StreamRecord::Open {
                session: 1,
                property: "B".to_string(),
                n_processes: 3,
                initial_state: 0,
            },
            StreamRecord::Event {
                session: 1,
                event: sample_event(),
            },
            StreamRecord::Close { session: 1 },
        ];
        let bytes = encode_stream(&records);
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for b in bytes {
            decoder.push(&[b]);
            while let Some(r) = decoder.next_record().unwrap() {
                decoded.push(r);
            }
        }
        assert_eq!(decoded, records);
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn reader_source_round_trips_and_rejects_truncation() {
        let records = vec![
            StreamRecord::Open {
                session: 9,
                property: "A".to_string(),
                n_processes: 2,
                initial_state: 1,
            },
            StreamRecord::Close { session: 9 },
        ];
        let bytes = encode_stream(&records);
        let mut source = ReaderSource::new(&bytes[..]);
        let mut decoded = Vec::new();
        while let Some(r) = source.next_record().unwrap() {
            decoded.push(r);
        }
        assert_eq!(decoded, records);

        // Truncated stream: the decoder must error, not silently stop.
        let mut truncated = ReaderSource::new(&bytes[..bytes.len() - 3]);
        assert!(truncated.next_record().unwrap().is_some());
        assert!(truncated.next_record().is_err());
    }

    #[test]
    fn oversized_frame_lengths_are_rejected() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&u32::MAX.to_be_bytes());
        assert!(decoder.next_record().is_err());
    }

    #[test]
    fn malformed_events_are_rejected() {
        // A process index outside its own vector clock must fail at parse time.
        let bad = object([
            ("process", Json::from(5usize)),
            ("kind", object([("kind", Json::from("internal"))])),
            ("sn", Json::from(1u64)),
            ("vc", Json::Array(vec![Json::from(1u64)])),
            ("state", Json::from(0u64)),
            ("time", Json::from(1.0)),
        ]);
        assert!(event_from_json(&bad).is_err());
    }

    fn sample_records() -> Vec<StreamRecord> {
        vec![
            StreamRecord::Open {
                session: 42,
                property: "C".to_string(),
                n_processes: 2,
                initial_state: 5,
            },
            StreamRecord::Open {
                session: 43,
                property: "C".to_string(),
                n_processes: 2,
                initial_state: 0,
            },
            StreamRecord::Open {
                session: 44,
                property: "x-custom".to_string(),
                n_processes: 4,
                initial_state: u64::MAX,
            },
            StreamRecord::Event {
                session: 42,
                event: sample_event(),
            },
            StreamRecord::Event {
                session: 44,
                event: Event {
                    process: 3,
                    kind: EventKind::Broadcast { msg_id: u64::MAX },
                    sn: 1 << 40,
                    vc: VectorClock::from_entries(vec![0, u64::MAX, 7, 1]),
                    state: Assignment(0),
                    time: -0.0,
                },
            },
            StreamRecord::Close { session: 43 },
            StreamRecord::Close { session: 42 },
            StreamRecord::Close { session: 44 },
        ]
    }

    #[test]
    fn binary_stream_round_trips() {
        let records = sample_records();
        let bytes = encode_stream_binary(&records);
        let json_bytes = encode_stream(&records);
        assert!(
            bytes.len() < json_bytes.len() / 2,
            "binary ({}) should be well under half of JSON ({})",
            bytes.len(),
            json_bytes.len()
        );
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        let mut decoded = Vec::new();
        while let Some(r) = decoder.next_record().unwrap() {
            decoded.push(r);
        }
        assert_eq!(decoded, records);
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn binary_frames_survive_byte_at_a_time_input() {
        let records = sample_records();
        let bytes = encode_stream_binary(&records);
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for b in bytes {
            decoder.push(&[b]);
            while let Some(r) = decoder.next_record().unwrap() {
                decoded.push(r);
            }
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn mixed_json_and_binary_frames_decode_in_one_stream() {
        let records = sample_records();
        let mut encoder = BinaryStreamEncoder::new();
        let mut bytes = Vec::new();
        for (i, r) in records.iter().enumerate() {
            if i % 2 == 0 {
                encoder.encode_frame_into(r, &mut bytes);
            } else {
                bytes.extend_from_slice(&encode_frame(r));
            }
        }
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        let mut decoded = Vec::new();
        while let Some(r) = decoder.next_record().unwrap() {
            decoded.push(r);
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn binary_event_round_trips_every_kind_and_f64_bit_pattern() {
        for kind in [
            EventKind::Internal,
            EventKind::Send { to: 2, msg_id: 9 },
            EventKind::Broadcast { msg_id: 1 },
            EventKind::Receive { from: 1, msg_id: 3 },
        ] {
            for time in [0.0, -0.0, 1.5e300, f64::MIN_POSITIVE, 4.25] {
                let event = Event {
                    kind,
                    process: 0,
                    sn: 1,
                    vc: VectorClock::from_entries(vec![1, 0, 0]),
                    state: Assignment(0b11),
                    time,
                };
                let mut buf = Vec::new();
                event_to_binary(&event, &mut buf);
                let mut pos = 0;
                let back = event_from_binary(&buf, &mut pos).unwrap();
                assert_eq!(pos, buf.len());
                assert_eq!(back.time.to_bits(), event.time.to_bits());
                assert_eq!(back, event);
            }
        }
    }

    #[test]
    fn binary_decoder_rejects_corruption() {
        // Unknown record tag.
        let mut frame = vec![0u8, 0, 0, 1, 9];
        frame[0] = (BINARY_FRAME_FLAG >> 24) as u8;
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame);
        assert!(decoder.next_record().is_err());

        // Truncated payload: a valid event frame with its last byte dropped
        // (header length shortened to match) must error, not decode.
        let mut encoder = BinaryStreamEncoder::new();
        let full = encoder.encode_frame(&StreamRecord::Event {
            session: 1,
            event: sample_event(),
        });
        let payload_len = full.len() - 4 - 1;
        let mut cut = Vec::new();
        cut.extend_from_slice(&((payload_len as u32) | BINARY_FRAME_FLAG).to_be_bytes());
        cut.extend_from_slice(&full[4..4 + payload_len]);
        let mut decoder = FrameDecoder::new();
        decoder.push(&cut);
        assert!(decoder.next_record().is_err());

        // A property back-reference that skips ahead of the intern table.
        let mut payload = vec![REC_OPEN];
        varint::write_u64(&mut payload, 1); // session
        varint::write_u64(&mut payload, 3); // index 3 into an empty table
        let mut frame = ((payload.len() as u32) | BINARY_FRAME_FLAG)
            .to_be_bytes()
            .to_vec();
        frame.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame);
        assert!(decoder.next_record().is_err());

        // Out-of-range process index, exactly like the JSON codec rejects.
        let mut payload = vec![REC_EVENT];
        varint::write_u64(&mut payload, 1); // session
        varint::write_u64(&mut payload, 5); // process 5
        payload.push(KIND_INTERNAL);
        varint::write_u64(&mut payload, 1); // sn
        varint::write_u64(&mut payload, 1); // vc len 1
        varint::write_u64(&mut payload, 1); // vc[0]
        varint::write_u64(&mut payload, 0); // state
        payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        let mut frame = ((payload.len() as u32) | BINARY_FRAME_FLAG)
            .to_be_bytes()
            .to_vec();
        frame.extend_from_slice(&payload);
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame);
        assert!(decoder.next_record().is_err());
    }

    #[test]
    fn property_interning_sends_each_name_once() {
        let opens: Vec<StreamRecord> = (0..50)
            .map(|s| StreamRecord::Open {
                session: s,
                property: "SomeLongPropertyName".to_string(),
                n_processes: 2,
                initial_state: 0,
            })
            .collect();
        let bytes = encode_stream_binary(&opens);
        let name_count = bytes
            .windows(b"SomeLongPropertyName".len())
            .filter(|w| *w == b"SomeLongPropertyName")
            .count();
        assert_eq!(name_count, 1, "the property name travels exactly once");
    }
}
