//! Bounded SPSC rings — the lock-light replacement for the shard mailboxes.
//!
//! `std::sync::mpsc::sync_channel` takes a whole-queue lock and a condvar
//! round-trip per message.  On the streaming hot path there is exactly one
//! producer (the pump thread) per shard consumer, so a single-producer
//! single-consumer ring suffices: monotone head/tail counters on separate
//! cache lines, one slot per in-flight message, and `thread::park` /
//! `unpark` for the rare full/empty edges.
//!
//! This crate forbids `unsafe`, so slots are `Mutex<Option<T>>` rather than
//! `UnsafeCell`s.  The head/tail discipline guarantees the producer and the
//! consumer never touch the *same* slot concurrently, so every slot lock is
//! uncontended — a plain compare-and-swap, no syscall, no shared-queue lock.
//! A producer-side mutex serializes the (unsupported but possible) case of
//! several threads pushing into one ring, keeping the type safe to share while
//! the single-producer fast path stays contention-free.
//!
//! Semantics preserved from the channel mailboxes, relied on by the runtime:
//!
//! * **Bounded + counted backpressure** — [`SpscRing::try_push`] fails on a
//!   full ring without blocking (the caller counts the stall), and
//!   [`SpscRing::push_blocking`] then parks until space frees up.
//! * **FIFO per ring** — pops observe pushes in order; a session's records
//!   stay ordered because a session maps to exactly one ring.
//! * **Drain** — [`SpscRing::close`] is end-of-stream, not abort: the consumer
//!   keeps popping until the ring is empty *and* closed, so nothing queued is
//!   ever dropped.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::{self, Thread};
use std::time::Duration;

/// Pads a counter to its own cache line so the producer's tail writes never
/// invalidate the line the consumer's head lives on (false sharing).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CacheLine<T>(T);

#[derive(Debug)]
struct Waiter {
    /// True while the thread is (about to be) parked; checked by the peer.
    waiting: AtomicBool,
    /// The parked thread's handle, for `unpark`.
    thread: Mutex<Option<Thread>>,
}

impl Waiter {
    fn new() -> Self {
        Waiter {
            waiting: AtomicBool::new(false),
            thread: Mutex::new(None),
        }
    }

    /// Registers the current thread as waiting.  The caller must re-check its
    /// wait condition *after* this (then park), so a peer that misses the flag
    /// can only do so while the condition is already satisfied.
    fn prepare(&self) {
        *self.thread.lock().expect("waiter mutex poisoned") = Some(thread::current());
        self.waiting.store(true, Ordering::SeqCst);
    }

    fn done(&self) {
        self.waiting.store(false, Ordering::SeqCst);
    }

    /// Wakes the registered thread if it declared itself waiting.
    fn wake(&self) {
        if self.waiting.swap(false, Ordering::SeqCst) {
            if let Some(t) = self
                .thread
                .lock()
                .expect("waiter mutex poisoned")
                .as_ref()
            {
                t.unpark();
            }
        }
    }
}

/// Outcome of a non-blocking pop attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum PopState {
    /// At least one item was popped.
    Items,
    /// Nothing buffered right now; the producer may still push.
    Empty,
    /// Nothing buffered and the ring is closed: end-of-stream.
    Closed,
}

/// A bounded single-producer single-consumer ring with park/unpark edges.
#[derive(Debug)]
pub struct SpscRing<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Next slot the consumer will pop (monotone; slot = head % capacity).
    head: CacheLine<AtomicUsize>,
    /// Next slot the producer will fill (monotone; slot = tail % capacity).
    tail: CacheLine<AtomicUsize>,
    closed: AtomicBool,
    /// Serializes producers; uncontended when the ring is used as true SPSC.
    producer: Mutex<()>,
    /// Parked consumer waiting for items.
    pop_waiter: Waiter,
    /// Parked producer waiting for space.
    push_waiter: Waiter,
}

/// How long a parked side sleeps before re-checking on its own; a safety net —
/// wakeups normally arrive via `unpark` well before this.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

impl<T> SpscRing<T> {
    /// A ring holding at most `capacity` in-flight items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        SpscRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: CacheLine(AtomicUsize::new(0)),
            tail: CacheLine(AtomicUsize::new(0)),
            closed: AtomicBool::new(false),
            producer: Mutex::new(()),
            pop_waiter: Waiter::new(),
            push_waiter: Waiter::new(),
        }
    }

    /// Capacity the ring was built with.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of items currently buffered (a racy snapshot, exact when only
    /// the calling side is active).
    pub fn len(&self) -> usize {
        self.tail.0.load(Ordering::SeqCst) - self.head.0.load(Ordering::SeqCst)
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to push without blocking; returns the item back on a full
    /// ring so the caller can count the stall and fall back to
    /// [`push_blocking`](SpscRing::push_blocking).
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let _guard = self.producer.lock().expect("producer mutex poisoned");
        self.push_locked(value)
    }

    fn push_locked(&self, value: T) -> Result<(), T> {
        debug_assert!(
            !self.closed.load(Ordering::SeqCst),
            "push into a closed ring"
        );
        let tail = self.tail.0.load(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::SeqCst);
        if tail - head == self.slots.len() {
            return Err(value);
        }
        let slot = tail % self.slots.len();
        let prev = self.slots[slot]
            .lock()
            .expect("slot mutex poisoned")
            .replace(value);
        debug_assert!(prev.is_none(), "producer lapped the consumer");
        self.tail.0.store(tail + 1, Ordering::SeqCst);
        self.pop_waiter.wake();
        Ok(())
    }

    /// Pushes, parking until space is available.  The caller has already
    /// counted this as a backpressure stall.
    pub fn push_blocking(&self, value: T) {
        let _guard = self.producer.lock().expect("producer mutex poisoned");
        let mut value = value;
        loop {
            match self.push_locked(value) {
                Ok(()) => return,
                Err(back) => value = back,
            }
            self.push_waiter.prepare();
            // Re-check after declaring ourselves waiting: if the consumer
            // freed a slot in between, it either sees the flag and unparks us,
            // or space is already visible here.
            let tail = self.tail.0.load(Ordering::SeqCst);
            let head = self.head.0.load(Ordering::SeqCst);
            if tail - head < self.slots.len() {
                self.push_waiter.done();
                continue;
            }
            thread::park_timeout(PARK_TIMEOUT);
            self.push_waiter.done();
        }
    }

    /// Pops up to `max` items into `out` without blocking.
    pub fn try_pop_batch(&self, out: &mut Vec<T>, max: usize) -> PopState {
        let head = self.head.0.load(Ordering::SeqCst);
        let tail = self.tail.0.load(Ordering::SeqCst);
        let avail = (tail - head).min(max);
        if avail == 0 {
            return if self.closed.load(Ordering::SeqCst) && self.is_empty() {
                PopState::Closed
            } else {
                PopState::Empty
            };
        }
        for i in 0..avail {
            let slot = (head + i) % self.slots.len();
            let value = self.slots[slot]
                .lock()
                .expect("slot mutex poisoned")
                .take()
                .expect("consumer raced ahead of the producer");
            out.push(value);
        }
        self.head.0.store(head + avail, Ordering::SeqCst);
        self.push_waiter.wake();
        PopState::Items
    }

    /// Pops up to `max` items, parking while the ring is empty and open.
    /// Returns [`PopState::Closed`] only after every pushed item was popped.
    pub fn pop_batch_blocking(&self, out: &mut Vec<T>, max: usize) -> PopState {
        loop {
            match self.try_pop_batch(out, max) {
                PopState::Empty => {}
                done => return done,
            }
            self.pop_waiter.prepare();
            if !self.is_empty() || self.closed.load(Ordering::SeqCst) {
                self.pop_waiter.done();
                continue;
            }
            thread::park_timeout(PARK_TIMEOUT);
            self.pop_waiter.done();
        }
    }

    /// Marks end-of-stream: no further pushes will arrive.  Items already
    /// buffered remain poppable — close is a drain marker, not an abort.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.pop_waiter.wake();
    }

    /// True once [`close`](SpscRing::close) was called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let ring = SpscRing::new(8);
        for i in 0..5 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.len(), 5);
        let mut out = Vec::new();
        assert_eq!(ring.try_pop_batch(&mut out, 3), PopState::Items);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(ring.try_pop_batch(&mut out, 10), PopState::Items);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.try_pop_batch(&mut out, 10), PopState::Empty);
    }

    #[test]
    fn full_ring_rejects_then_accepts_after_pop() {
        let ring = SpscRing::new(2);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        assert_eq!(ring.try_push(3), Err(3));
        let mut out = Vec::new();
        ring.try_pop_batch(&mut out, 1);
        ring.try_push(3).unwrap();
        ring.try_pop_batch(&mut out, 10);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let ring = SpscRing::new(4);
        ring.try_push("a").unwrap();
        ring.close();
        let mut out = Vec::new();
        assert_eq!(ring.pop_batch_blocking(&mut out, 10), PopState::Items);
        assert_eq!(out, vec!["a"]);
        assert_eq!(ring.pop_batch_blocking(&mut out, 10), PopState::Closed);
    }

    #[test]
    fn blocking_push_and_pop_meet_across_threads() {
        let ring = Arc::new(SpscRing::new(2));
        let n = 10_000u64;
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut batch = Vec::new();
                loop {
                    batch.clear();
                    match ring.pop_batch_blocking(&mut batch, 16) {
                        PopState::Items => got.extend(batch.iter().copied()),
                        PopState::Closed => return got,
                        PopState::Empty => unreachable!("blocking pop never returns Empty"),
                    }
                }
            })
        };
        for i in 0..n {
            if let Err(v) = ring.try_push(i) {
                ring.push_blocking(v);
            }
        }
        ring.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "FIFO across the full run");
    }
}
