//! Online sharded multi-session monitoring runtime.
//!
//! Everything else in this workspace monitors one recorded execution at a time,
//! offline: `dlrv-trace` materializes a full trace, a substrate replays it, metrics
//! come out.  This crate is the *online* ingestion path the production road map
//! needs: events arrive incrementally — possibly as raw bytes — and many independent
//! monitored executions ("sessions") run concurrently over a fixed pool of worker
//! shards.
//!
//! * [`codec`] — the wire format: length-prefixed records ([`StreamRecord`]) as
//!   JSON (over the in-tree `dlrv-json`) or as the compact varint binary format
//!   of [`BinaryStreamEncoder`] (frame-header flag bit selects per frame), an
//!   incremental [`FrameDecoder`] that reads either, and the [`EventSource`]
//!   abstraction ([`VecSource`] for in-memory records, [`ReaderSource`] for any
//!   `std::io::Read`).
//! * [`varint`] — the LEB128 integer primitive shared with `dlrv-net`.
//! * [`ring`] — bounded SPSC rings with park/unpark backpressure, the
//!   lock-light mailbox behind [`StreamConfig::use_rings`].
//! * [`runtime`] — the [`ShardedRuntime`]: hash-sharded session routing onto N
//!   worker threads, bounded mailboxes with backpressure, batched event
//!   application, session open/feed/close lifecycle, graceful drain/shutdown, and
//!   per-shard [`ShardMetrics`](dlrv_monitor::ShardMetrics).
//!
//! Each session is an incremental [`FeedSession`](dlrv_monitor::FeedSession) of
//! decentralized token-algorithm monitors, so a streamed session produces exactly
//! the verdicts of the offline replay of the same events — the repository's
//! `stream_equivalence` integration test pins this for every paper property.
//!
//! # Example
//!
//! The wire format survives arbitrary chunking: frames encoded with
//! [`encode_stream`] decode record-for-record through a [`FrameDecoder`] even when
//! the bytes arrive one at a time:
//!
//! ```
//! use dlrv_stream::{encode_stream, FrameDecoder, StreamRecord};
//!
//! let records = vec![
//!     StreamRecord::Open {
//!         session: 7,
//!         property: "B".to_string(),
//!         n_processes: 2,
//!         initial_state: 0,
//!     },
//!     StreamRecord::Close { session: 7 },
//! ];
//! let bytes = encode_stream(&records);
//!
//! let mut decoder = FrameDecoder::new();
//! let mut decoded = Vec::new();
//! for chunk in bytes.chunks(1) {
//!     decoder.push(chunk);
//!     while let Some(record) = decoder.next_record().unwrap() {
//!         decoded.push(record);
//!     }
//! }
//! assert_eq!(decoded, records);
//! ```

#![forbid(unsafe_code)]

pub mod codec;
pub mod ring;
pub mod runtime;
pub mod varint;

pub use codec::{
    encode_frame, encode_stream, encode_stream_binary, event_from_binary, event_from_json,
    event_to_binary, event_to_json, interleave_sessions, record_from_json, record_to_json,
    BinaryStreamEncoder, EventSource, FrameDecoder, ReaderSource, SessionId, SessionStream,
    StreamError, StreamRecord, VecSource, BINARY_FRAME_FLAG, MAX_FRAME_LEN,
};
pub use ring::{PopState, SpscRing};
pub use runtime::{
    FleetMemberSpec, OpenRequest, PropertyOutcome, SessionOutcome, SessionSpec, ShardedRuntime,
    StreamConfig, StreamReport,
};
