//! The sharded multi-session runtime: N worker shards, each owning the incremental
//! [`FeedSession`](dlrv_monitor::FeedSession)s of the sessions hashed onto it.
//!
//! The design goals, in order:
//!
//! * **Isolation** — sessions are independent monitored executions; a session's
//!   monitors live on exactly one shard, so no lock is ever taken around monitor
//!   state.
//! * **Backpressure** — shard mailboxes are bounded: either
//!   `std::sync::mpsc::sync_channel`s or, with [`StreamConfig::use_rings`], the
//!   lock-light [`SpscRing`]s of [`crate::ring`].  Either
//!   way a producer that outruns a shard blocks (after a counted non-blocking
//!   miss) instead of growing an unbounded queue, and the per-shard stall count
//!   lands in [`ShardMetrics::backpressure_stalls`].
//! * **Batching** — a shard drains up to [`StreamConfig::batch_size`] records per
//!   wakeup and applies them in one go, amortizing channel overhead on hot shards.
//! * **Graceful drain** — shutdown delivers every in-flight record, finishes any
//!   session the stream never closed, and reports per-shard plus aggregate metrics.
//!
//! Shards are plain `std::thread`s — this workspace is fully offline, so there is no
//! async executor; the paper's monitors are CPU-bound anyway, which makes one thread
//! per shard the right shape.

use crate::codec::{EventSource, SessionId, StreamError, StreamRecord};
use crate::ring::{PopState, SpscRing};
use dlrv_automaton::MonitorAutomaton;
use dlrv_ltl::{Assignment, AtomRegistry, Verdict};
use dlrv_monitor::{
    combined_verdict, decentralized_session, fleet_member_detected, fleet_member_metrics,
    fleet_member_possible, fleet_session, DecentralizedSession, FleetMember, FleetSession,
    MonitorOptions, ShardMetrics,
};
use dlrv_vclock::Event;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing knobs of a [`ShardedRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of worker shards (threads).
    pub n_shards: usize,
    /// Bound of each shard's mailbox; a full mailbox blocks producers.
    pub mailbox_capacity: usize,
    /// Maximum records a shard applies per wakeup.
    pub batch_size: usize,
    /// Use [`SpscRing`] mailboxes instead of `sync_channel`s (the hot-path
    /// default; the channel path remains as the A/B reference).
    pub use_rings: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            n_shards: 4,
            mailbox_capacity: 1024,
            batch_size: 32,
            use_rings: true,
        }
    }
}

/// Everything a shard needs to instantiate a session's monitors.
///
/// Specs are shared (`Arc`) across sessions monitoring the same property, so the
/// expensive automaton synthesis happens once per property, not once per session.
#[derive(Debug)]
pub struct SessionSpec {
    /// Number of processes in the monitored execution.
    pub n_processes: usize,
    /// The monitor-automaton replica every per-process monitor shares.
    pub automaton: Arc<MonitorAutomaton>,
    /// The atom registry (conjunct ownership).
    pub registry: Arc<AtomRegistry>,
    /// Initial global state of the session.
    pub initial_state: Assignment,
    /// §4.3 optimization switches.
    pub options: MonitorOptions,
    /// Fleet mode: when non-empty, the session monitors this whole property
    /// fleet in one pass (`automaton`/`registry`/`initial_state` above are
    /// ignored — each member carries its own) and the shard instantiates one
    /// [`FleetSession`] instead of a solo [`DecentralizedSession`].
    pub fleet: Vec<FleetMemberSpec>,
}

/// One property of a fleet [`SessionSpec`].
#[derive(Debug, Clone)]
pub struct FleetMemberSpec {
    /// The property's name, reported per member in [`SessionOutcome::per_property`].
    pub property: String,
    /// The property's monitor automaton.
    pub automaton: Arc<MonitorAutomaton>,
    /// The property's atom registry.
    pub registry: Arc<AtomRegistry>,
    /// The initial global state of the property's monitors.
    pub initial_state: Assignment,
}

/// An [`StreamRecord::Open`] as seen by the spec resolver of [`ShardedRuntime::pump`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRequest<'a> {
    /// The session being opened.
    pub session: SessionId,
    /// Property name from the wire.
    pub property: &'a str,
    /// Process count from the wire.
    pub n_processes: usize,
    /// Initial global state decoded from the wire bits.
    pub initial_state: Assignment,
}

/// The final state of one monitored session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The combined final verdict (⊥ dominates ⊤ dominates ?).
    pub verdict: Verdict,
    /// Union of ⊤/⊥ verdicts detected by the session's monitors.
    pub detected_verdicts: BTreeSet<Verdict>,
    /// Union of verdicts the monitors still considered possible at close.
    pub possible_verdicts: BTreeSet<Verdict>,
    /// Monitor-to-monitor (token) messages exchanged inside the session.
    pub monitor_messages: usize,
    /// Tokens carried by those messages (≥ `monitor_messages`' token share when
    /// aggregation batches several tokens into one message).
    pub monitor_tokens: usize,
    /// Program events the session's monitors observed.
    pub events: usize,
    /// Global views created across the session's monitors.
    pub global_views: usize,
    /// Sum over the session's monitors of their peak concurrently-live view counts.
    pub peak_global_views: usize,
    /// True when the session was finished by shutdown drain rather than an explicit
    /// [`StreamRecord::Close`].
    pub drained: bool,
    /// Per-property outcomes of a fleet session, in member order (empty for a
    /// solo session).
    pub per_property: Vec<PropertyOutcome>,
}

/// The final state of one property of a fleet session.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyOutcome {
    /// The property's name (from its [`FleetMemberSpec`]).
    pub property: String,
    /// The property's combined final verdict.
    pub verdict: Verdict,
    /// ⊤/⊥ verdicts the property's monitors detected.
    pub detected_verdicts: BTreeSet<Verdict>,
    /// Verdicts the property's monitors still considered possible at close.
    pub possible_verdicts: BTreeSet<Verdict>,
    /// Tokens the property's monitors sent (byte-identical to a solo run of the
    /// same property — pinned by `tests/fleet_equivalence.rs`).
    pub monitor_tokens: usize,
    /// Global views the property's monitors created.
    pub global_views: usize,
    /// Sum of the property's monitors' peak concurrently-live view counts.
    pub peak_global_views: usize,
}

/// Aggregate result of a runtime's lifetime, produced by [`ShardedRuntime::shutdown`].
#[derive(Debug)]
pub struct StreamReport {
    /// Per-shard measurements, in shard order.
    pub per_shard: Vec<ShardMetrics>,
    /// Outcome of every session ever opened, keyed by session id.
    pub sessions: BTreeMap<SessionId, SessionOutcome>,
    /// Wall-clock seconds from start to the end of shutdown.
    pub wall_secs: f64,
    /// Program events applied across all shards.
    pub total_events: usize,
    /// `total_events / wall_secs` (0 for an empty run).
    pub events_per_sec: f64,
}

enum ShardMsg {
    Open {
        session: SessionId,
        spec: Arc<SessionSpec>,
        enqueued: Instant,
    },
    Event {
        session: SessionId,
        event: Event,
        enqueued: Instant,
    },
    Close {
        session: SessionId,
        enqueued: Instant,
    },
    /// Shutdown sentinel: sent last, so everything before it is already delivered.
    Drain,
}

struct ShardResult {
    metrics: ShardMetrics,
    outcomes: Vec<(SessionId, SessionOutcome)>,
}

/// Producer-side handle of one shard's mailbox.
enum ShardMailbox {
    Channel(SyncSender<ShardMsg>),
    Ring(Arc<SpscRing<ShardMsg>>),
}

/// Consumer-side handle of one shard's mailbox.
enum ShardInbox {
    Channel(Receiver<ShardMsg>),
    Ring(Arc<SpscRing<ShardMsg>>),
}

/// The online sharded monitoring engine.
///
/// ```
/// use dlrv_stream::{ShardedRuntime, SessionSpec, StreamConfig};
/// use dlrv_monitor::MonitorOptions;
/// use dlrv_ltl::{Assignment, AtomRegistry, Formula};
/// use dlrv_automaton::MonitorAutomaton;
/// use std::sync::Arc;
///
/// let mut reg = AtomRegistry::new();
/// let a = reg.intern("P0.p", 0);
/// let b = reg.intern("P1.p", 1);
/// let phi = Formula::eventually(Formula::and(Formula::Atom(a), Formula::Atom(b)));
/// let spec = Arc::new(SessionSpec {
///     n_processes: 2,
///     automaton: Arc::new(MonitorAutomaton::synthesize(&phi, &reg)),
///     registry: Arc::new(reg),
///     initial_state: Assignment::ALL_FALSE,
///     options: MonitorOptions::default(),
///     fleet: Vec::new(),
/// });
/// let runtime = ShardedRuntime::start(StreamConfig { n_shards: 2, ..Default::default() });
/// runtime.open_session(7, spec);
/// // … feed events with runtime.feed_event(7, event) …
/// runtime.close_session(7);
/// let report = runtime.shutdown();
/// assert!(report.sessions.contains_key(&7));
/// ```
pub struct ShardedRuntime {
    mailboxes: Vec<ShardMailbox>,
    handles: Vec<JoinHandle<ShardResult>>,
    stalls: Vec<AtomicUsize>,
    started: Instant,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("n_shards", &self.mailboxes.len())
            .finish_non_exhaustive()
    }
}

impl ShardedRuntime {
    /// Spawns `config.n_shards` worker threads and returns the handle used to route
    /// records at them.
    pub fn start(config: StreamConfig) -> ShardedRuntime {
        assert!(config.n_shards > 0, "need at least one shard");
        assert!(config.mailbox_capacity > 0, "mailboxes must hold at least one record");
        assert!(config.batch_size > 0, "batches must hold at least one record");
        let mut mailboxes = Vec::with_capacity(config.n_shards);
        let mut handles = Vec::with_capacity(config.n_shards);
        for shard in 0..config.n_shards {
            let batch_size = config.batch_size;
            let inbox = if config.use_rings {
                let ring = Arc::new(SpscRing::new(config.mailbox_capacity));
                mailboxes.push(ShardMailbox::Ring(Arc::clone(&ring)));
                ShardInbox::Ring(ring)
            } else {
                let (tx, rx) = sync_channel::<ShardMsg>(config.mailbox_capacity);
                mailboxes.push(ShardMailbox::Channel(tx));
                ShardInbox::Channel(rx)
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dlrv-shard-{shard}"))
                    .spawn(move || shard_worker(shard, inbox, batch_size))
                    .expect("spawning a shard worker failed"),
            );
        }
        ShardedRuntime {
            stalls: (0..config.n_shards).map(|_| AtomicUsize::new(0)).collect(),
            mailboxes,
            handles,
            started: Instant::now(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.mailboxes.len()
    }

    /// The shard a session is routed to (stable hash of the session id, so a
    /// session's records always land on the same mailbox and stay FIFO).
    pub fn shard_of(&self, session: SessionId) -> usize {
        (splitmix64(session) % self.mailboxes.len() as u64) as usize
    }

    /// Opens `session` with the monitors described by `spec`.
    pub fn open_session(&self, session: SessionId, spec: Arc<SessionSpec>) {
        self.send(
            self.shard_of(session),
            ShardMsg::Open {
                session,
                spec,
                enqueued: Instant::now(),
            },
        );
    }

    /// Routes one program event at its session.  Blocks when the shard's mailbox is
    /// full — that is the backpressure contract.
    pub fn feed_event(&self, session: SessionId, event: Event) {
        self.send(
            self.shard_of(session),
            ShardMsg::Event {
                session,
                event,
                enqueued: Instant::now(),
            },
        );
    }

    /// Closes `session`: its monitors observe end-of-stream and the final verdict is
    /// recorded for the shutdown report.
    pub fn close_session(&self, session: SessionId) {
        self.send(
            self.shard_of(session),
            ShardMsg::Close {
                session,
                enqueued: Instant::now(),
            },
        );
    }

    /// Drives an [`EventSource`] to exhaustion: every record is routed to its shard,
    /// with `resolve` turning each [`StreamRecord::Open`] into a [`SessionSpec`]
    /// (typically a cache keyed by property name and process count).
    ///
    /// Returns the number of records pumped.
    pub fn pump(
        &self,
        source: &mut dyn EventSource,
        resolve: &mut dyn FnMut(&OpenRequest<'_>) -> Result<Arc<SessionSpec>, StreamError>,
    ) -> Result<usize, StreamError> {
        let mut pumped = 0usize;
        while let Some(record) = source.next_record()? {
            match record {
                StreamRecord::Open {
                    session,
                    property,
                    n_processes,
                    initial_state,
                } => {
                    let spec = resolve(&OpenRequest {
                        session,
                        property: &property,
                        n_processes,
                        initial_state: Assignment(initial_state),
                    })?;
                    self.open_session(session, spec);
                }
                StreamRecord::Event { session, event } => self.feed_event(session, event),
                StreamRecord::Close { session } => self.close_session(session),
            }
            pumped += 1;
        }
        Ok(pumped)
    }

    /// Graceful shutdown: delivers everything still queued, finishes sessions the
    /// stream never closed, joins the workers and returns the report.
    pub fn shutdown(self) -> StreamReport {
        for mailbox in &self.mailboxes {
            match mailbox {
                // A full mailbox blocks here too; Drain must arrive after all records.
                ShardMailbox::Channel(tx) => {
                    let _ = tx.send(ShardMsg::Drain);
                }
                // Rings need no sentinel: close marks end-of-stream and the
                // consumer keeps popping until empty before it sees Closed.
                ShardMailbox::Ring(ring) => ring.close(),
            }
        }
        drop(self.mailboxes);
        let mut per_shard = Vec::with_capacity(self.handles.len());
        let mut sessions = BTreeMap::new();
        for (shard, handle) in self.handles.into_iter().enumerate() {
            let mut result = handle.join().expect("shard worker panicked");
            result.metrics.backpressure_stalls = self.stalls[shard].load(Ordering::Relaxed);
            per_shard.push(result.metrics);
            for (id, outcome) in result.outcomes {
                sessions.insert(id, outcome);
            }
        }
        let wall_secs = self.started.elapsed().as_secs_f64();
        let total_events: usize = per_shard.iter().map(|m| m.events_processed).sum();
        let events_per_sec = if wall_secs > 0.0 {
            total_events as f64 / wall_secs
        } else {
            0.0
        };
        StreamReport {
            per_shard,
            sessions,
            wall_secs,
            total_events,
            events_per_sec,
        }
    }

    fn send(&self, shard: usize, msg: ShardMsg) {
        dlrv_obs::counter!("stream.mailbox_enqueued").inc();
        match &self.mailboxes[shard] {
            ShardMailbox::Channel(tx) => match tx.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(msg)) => {
                    self.stalls[shard].fetch_add(1, Ordering::Relaxed);
                    dlrv_obs::counter!("stream.backpressure_stalls").inc();
                    let _stall = dlrv_obs::span("stream.backpressure_wait");
                    tx.send(msg)
                        .expect("shard worker terminated while its mailbox was full");
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("shard worker terminated before shutdown");
                }
            },
            ShardMailbox::Ring(ring) => {
                if let Err(msg) = ring.try_push(msg) {
                    self.stalls[shard].fetch_add(1, Ordering::Relaxed);
                    dlrv_obs::counter!("stream.backpressure_stalls").inc();
                    let _stall = dlrv_obs::span("stream.backpressure_wait");
                    ring.push_blocking(msg);
                }
            }
        }
    }
}

/// SplitMix64 finalizer: a cheap, deterministic session-id hash (the std hasher is
/// randomly seeded per process, which would make shard routing irreproducible).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard-resident session: solo (one property) or a whole fleet.
enum ShardSession {
    Solo(DecentralizedSession),
    Fleet {
        session: FleetSession,
        /// The fleet spec, kept for the per-property names of the outcome.
        spec: Arc<SessionSpec>,
    },
}

impl ShardSession {
    fn of(spec: &Arc<SessionSpec>) -> ShardSession {
        if spec.fleet.is_empty() {
            ShardSession::Solo(decentralized_session(
                spec.n_processes,
                &spec.automaton,
                &spec.registry,
                spec.initial_state,
                spec.options,
            ))
        } else {
            let members: Vec<FleetMember> = spec
                .fleet
                .iter()
                .map(|m| FleetMember {
                    automaton: m.automaton.clone(),
                    registry: m.registry.clone(),
                    initial_state: m.initial_state,
                })
                .collect();
            ShardSession::Fleet {
                session: fleet_session(spec.n_processes, &members, spec.options),
                spec: spec.clone(),
            }
        }
    }

    fn n_processes(&self) -> usize {
        match self {
            ShardSession::Solo(s) => s.n_processes(),
            ShardSession::Fleet { session, .. } => session.n_processes(),
        }
    }

    fn feed_owned(&mut self, event: Event) {
        match self {
            ShardSession::Solo(s) => {
                s.feed_owned(event);
            }
            ShardSession::Fleet { session, .. } => {
                session.feed_owned(event);
            }
        }
    }

    fn finish(&mut self) {
        match self {
            ShardSession::Solo(s) => {
                s.finish();
            }
            ShardSession::Fleet { session, .. } => {
                session.finish();
            }
        }
    }
}

fn shard_worker(shard: usize, inbox: ShardInbox, batch_size: usize) -> ShardResult {
    let mut sessions: BTreeMap<SessionId, ShardSession> = BTreeMap::new();
    let mut outcomes: Vec<(SessionId, SessionOutcome)> = Vec::new();
    let mut metrics = ShardMetrics {
        shard,
        ..ShardMetrics::default()
    };
    let mut latency_sum = 0.0f64;
    let mut latency_samples = 0usize;
    let mut batch: Vec<ShardMsg> = Vec::with_capacity(batch_size);
    let mut draining = false;

    while !draining {
        batch.clear();
        match &inbox {
            ShardInbox::Channel(rx) => {
                match rx.recv() {
                    Ok(msg) => batch.push(msg),
                    // All senders gone without a Drain (runtime dropped): treat as drain.
                    Err(_) => break,
                }
                while batch.len() < batch_size {
                    match rx.try_recv() {
                        Ok(msg) => batch.push(msg),
                        Err(_) => break,
                    }
                }
            }
            ShardInbox::Ring(ring) => match ring.pop_batch_blocking(&mut batch, batch_size) {
                PopState::Items => {}
                // Ring closed after its last record: everything is delivered.
                PopState::Closed => break,
                PopState::Empty => unreachable!("blocking pop never returns Empty"),
            },
        }

        let started = Instant::now();
        let _batch_span = dlrv_obs::span("stream.batch_apply");
        metrics.batches += 1;
        metrics.max_batch_len = metrics.max_batch_len.max(batch.len());
        for msg in batch.drain(..) {
            let mut note_latency = |enqueued: Instant| {
                let elapsed = enqueued.elapsed();
                let lat = elapsed.as_secs_f64();
                latency_sum += lat;
                latency_samples += 1;
                metrics.max_queue_latency_secs = metrics.max_queue_latency_secs.max(lat);
                dlrv_obs::histogram!("stream.queue_latency_nanos").record_duration(elapsed);
            };
            match msg {
                ShardMsg::Open {
                    session,
                    spec,
                    enqueued,
                } => {
                    note_latency(enqueued);
                    if sessions.contains_key(&session) {
                        metrics.routing_errors += 1;
                        continue;
                    }
                    sessions.insert(session, ShardSession::of(&spec));
                    metrics.sessions_opened += 1;
                }
                ShardMsg::Event {
                    session,
                    event,
                    enqueued,
                } => {
                    note_latency(enqueued);
                    match sessions.get_mut(&session) {
                        // A decodable but inconsistent event (process index or clock
                        // width not matching the session) must not panic the shard —
                        // the wire may carry anything; count it like a misroute.
                        Some(feed)
                            if event.process < feed.n_processes()
                                && event.vc.len() == feed.n_processes() =>
                        {
                            feed.feed_owned(event);
                            metrics.events_processed += 1;
                        }
                        _ => metrics.routing_errors += 1,
                    }
                }
                ShardMsg::Close { session, enqueued } => {
                    note_latency(enqueued);
                    match sessions.remove(&session) {
                        Some(mut feed) => {
                            feed.finish();
                            outcomes.push((session, outcome_of(feed, false)));
                            metrics.sessions_closed += 1;
                        }
                        None => metrics.routing_errors += 1,
                    }
                }
                ShardMsg::Drain => draining = true,
            }
        }
        metrics.busy_secs += started.elapsed().as_secs_f64();
    }

    // Graceful drain: the stream ended without closing these sessions.
    for (id, mut feed) in std::mem::take(&mut sessions) {
        feed.finish();
        outcomes.push((id, outcome_of(feed, true)));
    }
    metrics.avg_queue_latency_secs = if latency_samples > 0 {
        latency_sum / latency_samples as f64
    } else {
        0.0
    };
    ShardResult { metrics, outcomes }
}

fn outcome_of(session: ShardSession, drained: bool) -> SessionOutcome {
    match session {
        ShardSession::Solo(session) => {
            let mut events = 0usize;
            let mut global_views = 0usize;
            let mut monitor_tokens = 0usize;
            let mut peak_global_views = 0usize;
            for m in session.monitors() {
                let mm = m.metrics();
                events += mm.events_observed;
                global_views += mm.global_views_created;
                monitor_tokens += mm.tokens_sent;
                peak_global_views += mm.max_live_views;
            }
            SessionOutcome {
                verdict: session.verdict(),
                detected_verdicts: session.detected_verdicts(),
                possible_verdicts: session.possible_verdicts(),
                monitor_messages: session.monitor_messages(),
                monitor_tokens,
                events,
                global_views,
                peak_global_views,
                drained,
                per_property: Vec::new(),
            }
        }
        ShardSession::Fleet { session, spec } => {
            // `events` counts the stream's events once (every member observes
            // the same decoded events); the work metrics sum across members.
            let mut events = 0usize;
            let mut global_views = 0usize;
            let mut monitor_tokens = 0usize;
            let mut peak_global_views = 0usize;
            let mut per_property = Vec::with_capacity(spec.fleet.len());
            for (k, member) in spec.fleet.iter().enumerate() {
                let metrics = fleet_member_metrics(&session, k);
                let member_tokens: usize = metrics.iter().map(|m| m.tokens_sent).sum();
                let member_views: usize =
                    metrics.iter().map(|m| m.global_views_created).sum();
                let member_peak: usize = metrics.iter().map(|m| m.max_live_views).sum();
                if k == 0 {
                    events = metrics.iter().map(|m| m.events_observed).sum();
                }
                global_views += member_views;
                monitor_tokens += member_tokens;
                peak_global_views += member_peak;
                let detected = fleet_member_detected(&session, k);
                per_property.push(PropertyOutcome {
                    property: member.property.clone(),
                    verdict: combined_verdict(&detected),
                    detected_verdicts: detected,
                    possible_verdicts: fleet_member_possible(&session, k),
                    monitor_tokens: member_tokens,
                    global_views: member_views,
                    peak_global_views: member_peak,
                });
            }
            SessionOutcome {
                verdict: session.verdict(),
                detected_verdicts: session.detected_verdicts(),
                possible_verdicts: session.possible_verdicts(),
                monitor_messages: session.monitor_messages(),
                monitor_tokens,
                events,
                global_views,
                peak_global_views,
                drained,
                per_property,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_stream, ReaderSource};
    use dlrv_ltl::Formula;
    use dlrv_vclock::{EventKind, VectorClock};

    fn reachability_spec() -> Arc<SessionSpec> {
        let mut reg = AtomRegistry::new();
        let a = reg.intern("P0.p", 0);
        let b = reg.intern("P1.p", 1);
        let phi = Formula::eventually(Formula::and(Formula::Atom(a), Formula::Atom(b)));
        Arc::new(SessionSpec {
            n_processes: 2,
            automaton: Arc::new(MonitorAutomaton::synthesize(&phi, &reg)),
            registry: Arc::new(reg),
            initial_state: Assignment::ALL_FALSE,
            options: MonitorOptions::default(),
            fleet: Vec::new(),
        })
    }

    fn goal_events() -> Vec<Event> {
        // P0 raises its p at t=1, P1 at t=2; the concurrent cut satisfies F(a && b).
        vec![
            Event {
                process: 0,
                kind: EventKind::Internal,
                sn: 1,
                vc: VectorClock::from_entries(vec![1, 0]),
                state: Assignment(0b01),
                time: 1.0,
            },
            Event {
                process: 1,
                kind: EventKind::Internal,
                sn: 1,
                vc: VectorClock::from_entries(vec![0, 1]),
                state: Assignment(0b10),
                time: 2.0,
            },
        ]
    }

    #[test]
    fn sessions_reach_verdicts_across_shard_counts() {
        for use_rings in [false, true] {
            for n_shards in [1, 2, 4] {
                let runtime = ShardedRuntime::start(StreamConfig {
                    n_shards,
                    use_rings,
                    ..StreamConfig::default()
                });
                let spec = reachability_spec();
                for session in 0..10u64 {
                    runtime.open_session(session, spec.clone());
                    for e in goal_events() {
                        runtime.feed_event(session, e);
                    }
                    runtime.close_session(session);
                }
                let report = runtime.shutdown();
                let tag = format!("{n_shards} shards, rings={use_rings}");
                assert_eq!(report.sessions.len(), 10, "{tag}");
                for (id, outcome) in &report.sessions {
                    assert_eq!(outcome.verdict, Verdict::True, "session {id}, {tag}");
                    assert!(!outcome.drained);
                    assert_eq!(outcome.events, 2);
                    assert!(outcome.monitor_messages > 0);
                }
                assert_eq!(report.total_events, 20);
                assert_eq!(report.per_shard.len(), n_shards);
                let opened: usize = report.per_shard.iter().map(|m| m.sessions_opened).sum();
                assert_eq!(opened, 10);
                assert!(report.events_per_sec > 0.0);
            }
        }
    }

    #[test]
    fn unknown_sessions_count_as_routing_errors() {
        let runtime = ShardedRuntime::start(StreamConfig {
            n_shards: 1,
            ..StreamConfig::default()
        });
        runtime.feed_event(99, goal_events()[0].clone());
        runtime.close_session(99);
        let report = runtime.shutdown();
        assert_eq!(report.per_shard[0].routing_errors, 2);
        assert!(report.sessions.is_empty());
    }

    #[test]
    fn shutdown_drains_unclosed_sessions() {
        let runtime = ShardedRuntime::start(StreamConfig::default());
        let spec = reachability_spec();
        runtime.open_session(5, spec);
        for e in goal_events() {
            runtime.feed_event(5, e);
        }
        // No close: shutdown must finish the session anyway.
        let report = runtime.shutdown();
        let outcome = &report.sessions[&5];
        assert!(outcome.drained);
        assert_eq!(outcome.verdict, Verdict::True);
    }

    #[test]
    fn pump_routes_wire_records_end_to_end() {
        let mut records = Vec::new();
        for session in 0..4u64 {
            records.push(StreamRecord::Open {
                session,
                property: "goal".to_string(),
                n_processes: 2,
                initial_state: 0,
            });
        }
        for e in goal_events() {
            for session in 0..4u64 {
                records.push(StreamRecord::Event {
                    session,
                    event: e.clone(),
                });
            }
        }
        for session in 0..4u64 {
            records.push(StreamRecord::Close { session });
        }
        let bytes = encode_stream(&records);

        for use_rings in [false, true] {
            let runtime = ShardedRuntime::start(StreamConfig {
                n_shards: 2,
                mailbox_capacity: 2, // tiny mailbox: exercise the backpressure path
                batch_size: 4,
                use_rings,
            });
            let spec = reachability_spec();
            let mut source = ReaderSource::new(&bytes[..]);
            let pumped = runtime
                .pump(&mut source, &mut |open| {
                    assert_eq!(open.property, "goal");
                    assert_eq!(open.n_processes, 2);
                    Ok(spec.clone())
                })
                .unwrap();
            assert_eq!(pumped, records.len());
            let report = runtime.shutdown();
            assert_eq!(report.sessions.len(), 4, "rings={use_rings}");
            assert!(report.sessions.values().all(|o| o.verdict == Verdict::True));
        }
    }

    #[test]
    fn session_routing_is_deterministic() {
        let a = ShardedRuntime::start(StreamConfig {
            n_shards: 4,
            ..StreamConfig::default()
        });
        let b = ShardedRuntime::start(StreamConfig {
            n_shards: 4,
            ..StreamConfig::default()
        });
        for session in 0..100u64 {
            assert_eq!(a.shard_of(session), b.shard_of(session));
        }
        // All shards get some sessions (splitmix64 spreads consecutive ids).
        let mut seen = [false; 4];
        for session in 0..100u64 {
            seen[a.shard_of(session)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn inconsistent_events_do_not_kill_the_shard() {
        let runtime = ShardedRuntime::start(StreamConfig {
            n_shards: 1,
            ..StreamConfig::default()
        });
        let spec = reachability_spec(); // 2 processes
        runtime.open_session(1, spec);
        // Process index out of range for the session.
        let mut bad = goal_events()[0].clone();
        bad.process = 5;
        bad.vc = VectorClock::from_entries(vec![0, 0, 0, 0, 0, 1]);
        runtime.feed_event(1, bad);
        // Clock width not matching the session.
        let mut wide = goal_events()[0].clone();
        wide.vc = VectorClock::from_entries(vec![1, 0, 0]);
        runtime.feed_event(1, wide);
        // The shard must still be alive and able to finish the session normally.
        for e in goal_events() {
            runtime.feed_event(1, e);
        }
        runtime.close_session(1);
        let report = runtime.shutdown();
        assert_eq!(report.per_shard[0].routing_errors, 2);
        assert_eq!(report.sessions[&1].verdict, Verdict::True);
        assert_eq!(report.sessions[&1].events, 2);
    }

    #[test]
    fn zero_event_shards_still_report_zeroed_rows() {
        // A shard that never receives a record must still produce its metrics
        // row (all zeros, stall counter included) — consumers of per-shard
        // JSON index rows by shard, so omission would silently misalign them.
        for use_rings in [false, true] {
            let runtime = ShardedRuntime::start(StreamConfig {
                n_shards: 4,
                use_rings,
                ..StreamConfig::default()
            });
            let spec = reachability_spec();
            // One session: exactly one shard sees traffic.
            runtime.open_session(1, spec);
            for e in goal_events() {
                runtime.feed_event(1, e);
            }
            runtime.close_session(1);
            let report = runtime.shutdown();
            assert_eq!(report.per_shard.len(), 4, "rings={use_rings}");
            let mut idle_rows = 0;
            for (i, m) in report.per_shard.iter().enumerate() {
                assert_eq!(m.shard, i, "rows stay in shard order");
                if m.events_processed == 0 {
                    idle_rows += 1;
                    assert_eq!(m.sessions_opened, 0);
                    assert_eq!(m.backpressure_stalls, 0);
                    // (`batches` is not asserted: the channel path counts the
                    // Drain sentinel itself as one batch, the ring path does not.)
                }
            }
            assert_eq!(idle_rows, 3, "rings={use_rings}");
        }
    }

    #[test]
    fn duplicate_open_is_a_routing_error() {
        let runtime = ShardedRuntime::start(StreamConfig {
            n_shards: 1,
            ..StreamConfig::default()
        });
        let spec = reachability_spec();
        runtime.open_session(1, spec.clone());
        runtime.open_session(1, spec);
        runtime.close_session(1);
        let report = runtime.shutdown();
        assert_eq!(report.per_shard[0].routing_errors, 1);
        assert_eq!(report.per_shard[0].sessions_opened, 1);
        assert_eq!(report.sessions.len(), 1);
    }
}
