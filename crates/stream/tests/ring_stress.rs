//! Stress tests of the SPSC shard rings under adversarial scheduling.
//!
//! The streaming runtime's correctness rests on three ring guarantees that unit
//! tests only touch at toy scale: nothing pushed is ever lost (close is a drain
//! marker, not an abort), a session's records are never reordered (a session
//! maps to exactly one ring, and rings are FIFO), and backpressure stalls are
//! *counted*, never silently absorbed.  These tests hammer the rings with many
//! threads, tiny capacities (so the full/empty park paths fire constantly) and
//! seeded pseudo-random interleavings, then audit the complete delivery order.

use dlrv_stream::{PopState, SpscRing};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// SplitMix64 step: expands one seed into a reproducible pseudo-random sequence.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    *seed >> 17
}

/// Several producer threads share one ring (the runtime runs true SPSC, but the
/// type must stay safe under the unsupported many-producer shape: the internal
/// producer mutex serializes them).  Every item is tagged `(producer, seq)`;
/// after a full drain each producer's sequence must arrive complete and in
/// order, with not a single item lost — whatever the scheduler did.
#[test]
fn many_producers_one_consumer_lose_nothing_and_keep_per_producer_fifo() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 5_000;
    // Capacity far below the item count: the full-ring park path runs hot.
    let ring = Arc::new(SpscRing::new(8));
    let stalls = Arc::new(AtomicUsize::new(0));

    let consumer = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || {
            let mut got: Vec<(usize, usize)> = Vec::new();
            let mut batch = Vec::new();
            let mut s = 0xC0FFEEu64;
            loop {
                batch.clear();
                // Random batch sizes sweep the partial-drain edge cases.
                let max = 1 + (mix(&mut s) % 16) as usize;
                match ring.pop_batch_blocking(&mut batch, max) {
                    PopState::Items => got.extend(batch.iter().copied()),
                    PopState::Closed => return got,
                    PopState::Empty => unreachable!("blocking pop never returns Empty"),
                }
            }
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ring = Arc::clone(&ring);
            let stalls = Arc::clone(&stalls);
            thread::spawn(move || {
                for seq in 0..PER_PRODUCER {
                    // The runtime's exact discipline: try first, count the
                    // stall, then park until space frees up.
                    if let Err(v) = ring.try_push((p, seq)) {
                        stalls.fetch_add(1, Ordering::Relaxed);
                        ring.push_blocking(v);
                    }
                }
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer thread");
    }
    ring.close();
    let got = consumer.join().expect("consumer thread");

    assert_eq!(got.len(), PRODUCERS * PER_PRODUCER, "every push must be popped");
    let mut next = [0usize; PRODUCERS];
    for (p, seq) in got {
        assert_eq!(seq, next[p], "producer {p}: out-of-order or duplicated item");
        next[p] += 1;
    }
    assert!(next.iter().all(|&n| n == PER_PRODUCER));
    // Capacity 8 against 20k items cannot avoid stalling; the counter must have
    // seen it (backpressure is counted, never silent).
    assert!(stalls.load(Ordering::Relaxed) > 0, "expected backpressure stalls");
}

/// The runtime's actual shape: one pump thread feeds S shard rings, sessions
/// are pinned to shards (`session % S`), and each shard's consumer drains with
/// random batch sizes and random micro-naps.  Across many seeded interleavings,
/// every session's records must arrive complete and in emission order, and the
/// stall counter observed by the pump must be monotone.
#[test]
fn sharded_rings_preserve_session_fifo_under_random_interleavings() {
    const SHARDS: usize = 4;
    const SESSIONS: usize = 32;
    const RECORDS_PER_SESSION: usize = 400;

    for trial_seed in [1u64, 7, 42] {
        let rings: Vec<Arc<SpscRing<(usize, usize)>>> =
            (0..SHARDS).map(|_| Arc::new(SpscRing::new(16))).collect();
        let consumers: Vec<_> = rings
            .iter()
            .enumerate()
            .map(|(shard, ring)| {
                let ring = Arc::clone(ring);
                thread::spawn(move || {
                    let mut got: Vec<(usize, usize)> = Vec::new();
                    let mut batch = Vec::new();
                    let mut s = trial_seed ^ (shard as u64).wrapping_mul(0x9E37);
                    loop {
                        batch.clear();
                        let max = 1 + (mix(&mut s) % 8) as usize;
                        match ring.pop_batch_blocking(&mut batch, max) {
                            PopState::Items => got.extend(batch.iter().copied()),
                            PopState::Closed => return got,
                            PopState::Empty => unreachable!(),
                        }
                        // Occasional micro-naps force the producer into the
                        // full-ring path at unpredictable points.
                        if mix(&mut s).is_multiple_of(13) {
                            thread::sleep(Duration::from_micros(50));
                        }
                    }
                })
            })
            .collect();

        // Single pump: a seeded round-robin-ish interleaving of all sessions,
        // exactly one ring per session, stalls counted and snapshotted.
        let mut next_seq = [0usize; SESSIONS];
        let mut remaining: Vec<usize> = (0..SESSIONS).collect();
        let mut s = trial_seed;
        let mut stalls = 0usize;
        let mut last_snapshot = 0usize;
        while !remaining.is_empty() {
            let pick = (mix(&mut s) % remaining.len() as u64) as usize;
            let session = remaining[pick];
            let seq = next_seq[session];
            next_seq[session] += 1;
            if next_seq[session] == RECORDS_PER_SESSION {
                remaining.swap_remove(pick);
            }
            let ring = &rings[session % SHARDS];
            if let Err(v) = ring.try_push((session, seq)) {
                stalls += 1;
                ring.push_blocking(v);
            }
            // The stall count a metrics scraper would read mid-run must never
            // step backwards.
            assert!(stalls >= last_snapshot, "stall counter went backwards");
            last_snapshot = stalls;
        }
        for ring in &rings {
            ring.close();
        }

        let mut next = [0usize; SESSIONS];
        for (shard, consumer) in consumers.into_iter().enumerate() {
            let got = consumer.join().expect("consumer thread");
            for (session, seq) in got {
                assert_eq!(
                    session % SHARDS,
                    shard,
                    "seed {trial_seed}: session {session} leaked to shard {shard}"
                );
                assert_eq!(
                    seq, next[session],
                    "seed {trial_seed}: session {session} reordered or lost a record"
                );
                next[session] += 1;
            }
        }
        assert!(
            next.iter().all(|&n| n == RECORDS_PER_SESSION),
            "seed {trial_seed}: some session lost records: {next:?}"
        );
    }
}
