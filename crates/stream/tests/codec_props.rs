//! Property-based tests of the wire codec: arbitrary events and record sequences must
//! survive the JSON round-trip, and the frame decoder must reassemble any chunking of
//! the byte stream — the wire never guarantees record-aligned reads.
//!
//! The binary codec is pinned *differentially* against the JSON codec: for any
//! record sequence, decoding the binary encoding and decoding the JSON encoding
//! must produce identical records (timestamps bit-for-bit), under any chunking,
//! and even when the two frame formats are interleaved on a single stream.

use dlrv_ltl::Assignment;
use dlrv_stream::{
    encode_frame, encode_stream, encode_stream_binary, event_from_binary, event_to_binary,
    event_from_json, event_to_json, record_from_json, record_to_json, BinaryStreamEncoder,
    FrameDecoder, StreamRecord,
};
use dlrv_vclock::{Event, EventKind, VectorClock};
use proptest::prelude::*;

/// SplitMix64 step: expands one seed into a reproducible pseudo-random sequence.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    *seed >> 17
}

/// Builds an arbitrary (but internally consistent) event from a seed.
fn event_from_seed(mut seed: u64) -> Event {
    let n = 2 + (mix(&mut seed) % 6) as usize;
    let process = (mix(&mut seed) % n as u64) as usize;
    let kind = match mix(&mut seed) % 4 {
        0 => EventKind::Internal,
        1 => EventKind::Send {
            to: (process + 1) % n,
            msg_id: mix(&mut seed),
        },
        2 => EventKind::Broadcast {
            msg_id: mix(&mut seed),
        },
        _ => EventKind::Receive {
            from: (process + 1) % n,
            msg_id: mix(&mut seed),
        },
    };
    let entries: Vec<u64> = (0..n).map(|_| mix(&mut seed) % 1000).collect();
    let sn = entries[process].max(1);
    // Times are arbitrary finite doubles; dlrv-json prints shortest round-trip form.
    let time = (mix(&mut seed) % 1_000_000) as f64 * 0.001 + (mix(&mut seed) % 997) as f64 * 1e-9;
    Event {
        process,
        kind,
        sn,
        vc: VectorClock::from_entries(entries),
        state: Assignment(mix(&mut seed)),
        time,
    }
}

/// Builds an arbitrary record from a seed.
fn record_from_seed(mut seed: u64) -> StreamRecord {
    let session = mix(&mut seed);
    match mix(&mut seed) % 3 {
        0 => StreamRecord::Open {
            session,
            property: format!("prop-{}", mix(&mut seed) % 26),
            n_processes: 2 + (mix(&mut seed) % 6) as usize,
            initial_state: mix(&mut seed),
        },
        1 => StreamRecord::Event {
            session,
            event: event_from_seed(mix(&mut seed)),
        },
        _ => StreamRecord::Close { session },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_events_round_trip_exactly(seed in 0u64..1 << 48) {
        let event = event_from_seed(seed);
        let back = event_from_json(&event_to_json(&event))
            .map_err(|e| format!("{e}"))
            .unwrap();
        // Bit-for-bit: the timestamp float included.
        prop_assert_eq!(&back, &event);
        prop_assert_eq!(back.time.to_bits(), event.time.to_bits());
    }

    #[test]
    fn arbitrary_records_round_trip(seed in 0u64..1 << 48) {
        let record = record_from_seed(seed);
        let json = record_to_json(&record);
        let back = record_from_json(&json).map_err(|e| format!("{e}")).unwrap();
        prop_assert_eq!(back, record);
    }

    #[test]
    fn framed_streams_survive_arbitrary_chunking(
        seed in 0u64..1 << 48,
        n_records in 1usize..20,
        chunk_seed in 1u64..1 << 32,
    ) {
        let records: Vec<StreamRecord> =
            (0..n_records).map(|i| record_from_seed(seed.wrapping_add(i as u64 * 7919))).collect();
        let bytes = encode_stream(&records);

        // Slice the byte stream into pseudo-random chunks (1..=97 bytes each) and
        // feed them to the decoder one at a time.
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        let mut s = chunk_seed;
        while pos < bytes.len() {
            let len = (1 + mix(&mut s) % 97) as usize;
            let end = (pos + len).min(bytes.len());
            decoder.push(&bytes[pos..end]);
            pos = end;
            while let Some(r) = decoder.next_record().map_err(|e| format!("{e}"))? {
                decoded.push(r);
            }
        }
        prop_assert_eq!(decoded, records);
        prop_assert!(decoder.pending_bytes() == 0, "trailing bytes after full stream");
    }

    /// Differential event codec: for any event, the binary round-trip must land on
    /// exactly the same event as the JSON round-trip — timestamp bits included —
    /// and the binary decoder must consume exactly the bytes the encoder wrote.
    #[test]
    fn binary_and_json_event_codecs_agree(seed in 0u64..1 << 48) {
        let event = event_from_seed(seed);
        let mut buf = Vec::new();
        event_to_binary(&event, &mut buf);
        let mut pos = 0usize;
        let via_binary = event_from_binary(&buf, &mut pos).map_err(|e| format!("{e}"))?;
        prop_assert!(pos == buf.len(), "binary decoder must consume the whole encoding");
        let via_json = event_from_json(&event_to_json(&event)).map_err(|e| format!("{e}"))?;
        prop_assert_eq!(&via_binary, &via_json);
        prop_assert_eq!(&via_binary, &event);
        prop_assert_eq!(via_binary.time.to_bits(), event.time.to_bits());
    }

    /// Differential stream codec under arbitrary chunking: the binary encoding of
    /// a record sequence, sliced into pseudo-random chunks, must decode to exactly
    /// the records the JSON encoding decodes to.  Also pins the size win: the
    /// binary stream must never be larger than the JSON stream.
    #[test]
    fn binary_framed_streams_decode_identically_to_json(
        seed in 0u64..1 << 48,
        n_records in 1usize..20,
        chunk_seed in 1u64..1 << 32,
    ) {
        let records: Vec<StreamRecord> =
            (0..n_records).map(|i| record_from_seed(seed.wrapping_add(i as u64 * 7919))).collect();
        let json_bytes = encode_stream(&records);
        let binary_bytes = encode_stream_binary(&records);
        prop_assert!(
            binary_bytes.len() <= json_bytes.len(),
            "binary stream ({} B) larger than JSON stream ({} B)",
            binary_bytes.len(),
            json_bytes.len()
        );

        let mut via_json = Vec::new();
        let mut decoder = FrameDecoder::new();
        decoder.push(&json_bytes);
        while let Some(r) = decoder.next_record().map_err(|e| format!("{e}"))? {
            via_json.push(r);
        }

        let mut via_binary = Vec::new();
        let mut decoder = FrameDecoder::new();
        let mut pos = 0usize;
        let mut s = chunk_seed;
        while pos < binary_bytes.len() {
            let len = (1 + mix(&mut s) % 97) as usize;
            let end = (pos + len).min(binary_bytes.len());
            decoder.push(&binary_bytes[pos..end]);
            pos = end;
            while let Some(r) = decoder.next_record().map_err(|e| format!("{e}"))? {
                via_binary.push(r);
            }
        }
        prop_assert!(decoder.pending_bytes() == 0, "trailing bytes after full stream");
        prop_assert_eq!(&via_binary, &via_json);
        prop_assert_eq!(via_binary, records);
    }

    /// Mixed-format streams: each record independently picks the JSON or the
    /// binary framing (the decoder autodetects per frame via the header bit), the
    /// concatenation is sliced into arbitrary chunks, and the decoder must still
    /// reproduce every record in order.  This is the exact shape a connection
    /// takes when the wire format is renegotiated mid-stream.
    #[test]
    fn mixed_binary_and_json_frames_survive_arbitrary_chunking(
        seed in 0u64..1 << 48,
        n_records in 1usize..20,
        chunk_seed in 1u64..1 << 32,
    ) {
        let records: Vec<StreamRecord> =
            (0..n_records).map(|i| record_from_seed(seed.wrapping_add(i as u64 * 7919))).collect();
        let mut s = chunk_seed;
        let mut encoder = BinaryStreamEncoder::new();
        let mut bytes = Vec::new();
        for record in &records {
            if mix(&mut s).is_multiple_of(2) {
                bytes.extend(encode_frame(record));
            } else {
                encoder.encode_frame_into(record, &mut bytes);
            }
        }

        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let len = (1 + mix(&mut s) % 97) as usize;
            let end = (pos + len).min(bytes.len());
            decoder.push(&bytes[pos..end]);
            pos = end;
            while let Some(r) = decoder.next_record().map_err(|e| format!("{e}"))? {
                decoded.push(r);
            }
        }
        prop_assert_eq!(decoded, records);
        prop_assert!(decoder.pending_bytes() == 0, "trailing bytes after full stream");
    }
}
