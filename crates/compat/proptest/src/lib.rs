//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! subset the integration tests use: the [`proptest!`] macro over `name in range`
//! bindings, [`ProptestConfig::with_cases`], and `prop_assert!` / `prop_assert_eq!`.
//! Inputs are drawn deterministically from a fixed-seed RNG (no shrinking, no
//! persistence), so failures are reproducible by re-running the test.

pub use rand;

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

/// Value-producing strategy (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn pick(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut rand::rngs::StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut rand::rngs::StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u64, usize, u32, u16, u8);

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy};
}

/// Property-test macro: each `arg in strategy` binding is sampled per case from a
/// deterministic RNG, and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic per-test seed: derived from the test name so sibling
                // properties explore different inputs.
                let mut seed = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::pick(&($strategy), &mut rng); )+
                    let run = || -> Result<(), String> { $body Ok(()) };
                    if let Err(message) = run() {
                        panic!(
                            "proptest case {case} failed for {} = {:?}: {message}",
                            stringify!(($($arg),+)),
                            ($(&$arg),+)
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("assertion failed: {:?} == {:?}", l, r));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_are_respected(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x), "x out of range: {}", x);
            prop_assert!(y <= 4);
        }

        #[test]
        fn assert_eq_passes(a in 1u32..5) {
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        assert!(result.is_err(), "property should have failed");
    }

    #[test]
    fn cases_are_deterministic() {
        fn collect() -> Vec<u64> {
            let mut out = Vec::new();
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn gather(x in 0u64..1000) {
                    OUT.with(|o| o.borrow_mut().push(x));
                    prop_assert!(true);
                }
            }
            thread_local! {
                static OUT: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
            }
            // gather pushes into OUT via the thread-local above
            OUT.with(|o| o.borrow_mut().clear());
            gather();
            OUT.with(|o| out = o.borrow().clone());
            out
        }
        assert_eq!(collect(), collect());
    }
}
