//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! small API subset the workload generator needs: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods `gen_range` /
//! `gen_bool`.  The generator is xoshiro256++ (public domain reference algorithm by
//! Blackman & Vigna) seeded through SplitMix64, which gives deterministic,
//! statistically solid streams — the properties the experiments rely on.  Streams are
//! NOT bit-compatible with the real `rand::StdRng` (ChaCha12); nothing in this
//! repository depends on a specific stream, only on per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-bits source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry points (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed, expanding it to full state via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be uniformly sampled from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits scaled by 2^-53: every value in [0, 1) step 2^-53.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = unit_f64(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 sample range");
        let u = unit_f64(rng);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < span/2^64 — irrelevant for experiment workloads.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer sample range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u64, usize, u32, u16, u8);

/// User-facing extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(2.0..=3.0);
            assert!((2.0..=3.0).contains(&y));
            let k: usize = rng.gen_range(5usize..9);
            assert!((5..9).contains(&k));
            let j: u64 = rng.gen_range(1u64..=6);
            assert!((1..=6).contains(&j));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_samples_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
