//! A minimal safe wrapper over the Linux `epoll` syscalls.
//!
//! The workspace has no access to crates.io, so — like the `rand`/`criterion`/
//! `proptest` stand-ins next door — the readiness primitive underlying the
//! `dlrv-net` reactor is vendored here.  The surface is the small subset the
//! reactor needs: create an epoll instance, register/modify/deregister file
//! descriptors with a caller-chosen `u64` token, and wait (level-triggered) with a
//! millisecond timeout.
//!
//! This is the only crate in the workspace allowed to contain `unsafe` code (the
//! dlrv-* crates all `forbid(unsafe_code)`; the workspace lint table is not
//! inherited under `crates/compat/`).  The unsafety is confined to the four
//! `extern "C"` syscall wrappers; everything above them is safe: the [`Epoll`]
//! handle owns its file descriptor and closes it on drop, and `wait` only writes
//! into a buffer it sized itself.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

// Values from <sys/epoll.h> (stable kernel ABI).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`.  On x86-64 the kernel ABI packs the 64-bit
/// payload directly after the 32-bit mask; other architectures use natural
/// alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Which readiness conditions a registration asks for (level-triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or a peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification returned by [`Epoll::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable.
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// An error condition is pending (read/write will surface it).
    pub error: bool,
    /// The peer closed its end.
    pub hangup: bool,
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new (close-on-exec) epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers involved.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = RawEpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it synchronously.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given token and interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the token/interest of an already-registered descriptor.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL on kernels ≥ 2.6.9 but must be
        // non-null for portability; reuse a zeroed registration.
        let mut ev = RawEpollEvent { events: 0, data: 0 };
        // SAFETY: as in `ctl`.
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits up to `timeout_ms` milliseconds (`None` blocks indefinitely) and
    /// appends the ready events to `out`.  Returns the number of events appended;
    /// `0` means the timeout elapsed.  Interrupted waits (`EINTR`) retry.
    pub fn wait(&self, timeout_ms: Option<u64>, out: &mut Vec<Event>) -> io::Result<usize> {
        const CAPACITY: usize = 64;
        let mut raw = [RawEpollEvent { events: 0, data: 0 }; CAPACITY];
        let timeout = match timeout_ms {
            None => -1i32,
            Some(ms) => i32::try_from(ms).unwrap_or(i32::MAX),
        };
        loop {
            // SAFETY: `raw` is a valid buffer of CAPACITY entries; the kernel
            // writes at most `maxevents` of them.
            let n = unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), CAPACITY as i32, timeout) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            let n = n as usize;
            for ev in raw.iter().take(n) {
                // Copy out of the (possibly packed) struct before testing bits.
                let mask = ev.events;
                let token = ev.data;
                out.push(Event {
                    token,
                    readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: mask & EPOLLOUT != 0,
                    error: mask & EPOLLERR != 0,
                    hangup: mask & (EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            return Ok(n);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this handle and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn socketpair_readiness_round_trip() {
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        let epoll = Epoll::new().expect("epoll_create1");
        epoll.add(a.as_raw_fd(), 1, Interest::BOTH).expect("add a");
        epoll.add(b.as_raw_fd(), 2, Interest::READABLE).expect("add b");

        // An idle pair: `a` is writable (asked for BOTH), `b` has nothing to read.
        let mut events = Vec::new();
        epoll.wait(Some(100), &mut events).expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        assert!(!events.iter().any(|e| e.token == 2 && e.readable));

        // Data written on `a` makes `b` readable.
        a.write_all(b"ping").expect("write");
        events.clear();
        epoll.wait(Some(1000), &mut events).expect("wait");
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 8];
        let n = b.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");

        // Re-arm `a` read-only: no spurious writable wakeups afterwards.
        epoll.modify(a.as_raw_fd(), 7, Interest::READABLE).expect("modify");
        events.clear();
        epoll.wait(Some(50), &mut events).expect("wait");
        assert!(events.iter().all(|e| e.token != 7 || !e.writable));

        // Dropping `b` hangs `a` up.
        drop(b);
        events.clear();
        epoll.wait(Some(1000), &mut events).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.hangup));

        epoll.delete(a.as_raw_fd()).expect("delete");
        events.clear();
        epoll.wait(Some(20), &mut events).expect("wait");
        assert!(events.is_empty(), "deregistered fd must not report events");
    }

    #[test]
    fn timeout_returns_zero_events() {
        let epoll = Epoll::new().expect("epoll");
        let mut events = Vec::new();
        let n = epoll.wait(Some(10), &mut events).expect("wait");
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }
}
