//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! API subset the Chapter-5 benches use: [`Criterion`], [`BenchmarkId`],
//! `benchmark_group` / `bench_function` / `bench_with_input`, [`Bencher::iter`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.  Instead of criterion's
//! statistical engine it runs a fixed warm-up plus `sample_size` timed samples and
//! prints mean/min/max per benchmark — enough to compare the relative cost of the
//! paper's experiments, which is all the evaluation chapter needs.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque wrapper preventing the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    n_samples: usize,
}

impl Bencher {
    /// Times `routine`, recording `n_samples` samples of `iters_per_sample` calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        black_box(routine());
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!("{label:<50} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub has no target measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub warms up with a single call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            n_samples: self.sample_size,
        };
        routine(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Runs `routine` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            n_samples: self.sample_size,
        };
        routine(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Ends the group (report lines are printed eagerly).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` may execute harness-less bench binaries; keep runs short.
        Criterion {
            default_sample_size: 5,
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }
}

/// Declares a function running the listed benchmark targets with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // warm-up + 3 samples
        assert_eq!(runs, 4);
        group.finish();
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("id", 7), &21u64, |b, &x| {
            b.iter(|| seen = x * 2)
        });
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
