//! Normal-distribution sampling via the Box–Muller transform.
//!
//! The paper draws event and communication wait times from normal distributions with
//! configurable mean and standard deviation (§5.2).  To stay within the allowed
//! dependency set (no `rand_distr`), sampling is implemented directly on top of a
//! `rand` RNG.

use rand::Rng;

/// A sampler for a normal distribution `N(mean, sigma²)`, truncated below at `min`.
///
/// Wait times must be non-negative (a negative wait makes no sense for a trace), so the
/// sampler clamps at `min` — the paper's traces implicitly do the same since a device
/// cannot wait a negative amount of time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalSampler {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation.
    pub sigma: f64,
    /// Lower clamp applied to every sample.
    pub min: f64,
    /// Cached second Box–Muller variate.
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with the given mean and standard deviation, clamped at 0.
    pub fn new(mean: f64, sigma: f64) -> Self {
        NormalSampler {
            mean,
            sigma,
            min: 0.0,
            spare: None,
        }
    }

    /// Creates a sampler clamped at `min`.
    pub fn with_min(mean: f64, sigma: f64, min: f64) -> Self {
        NormalSampler {
            mean,
            sigma,
            min,
            spare: None,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let z = if let Some(z) = self.spare.take() {
            z
        } else {
            // Box–Muller: two uniform samples in (0, 1] give two independent standard
            // normal variates.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        };
        (self.mean + self.sigma * z).max(self.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_have_expected_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sampler = NormalSampler::new(3.0, 1.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        // The clamp at 0 slightly biases the mean upward; 3σ away from 0 the effect is
        // tiny, so generous tolerances suffice.
        assert!((mean - 3.0).abs() < 0.05, "mean was {mean}");
        assert!((var.sqrt() - 1.0).abs() < 0.05, "sigma was {}", var.sqrt());
    }

    #[test]
    fn samples_respect_lower_clamp() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = NormalSampler::with_min(0.5, 2.0, 0.1);
        for _ in 0..5_000 {
            assert!(sampler.sample(&mut rng) >= 0.1);
        }
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sampler = NormalSampler::new(5.0, 0.0);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn same_seed_same_samples() {
        let mut s1 = NormalSampler::new(3.0, 1.0);
        let mut s2 = NormalSampler::new(3.0, 1.0);
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(s1.sample(&mut r1), s2.sample(&mut r2));
        }
    }
}
