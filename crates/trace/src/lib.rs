//! Workload and trace generation for monitoring experiments.
//!
//! The evaluation chapter of the thesis (§5.1–§5.2) drives each device with a trace
//! file: a sequence of events, each preceded by a wait time drawn from a normal
//! distribution.  Events are either local proposition-value changes (each process has
//! two propositions `p` and `q`) or communication events (a broadcast to every other
//! process).  This crate reproduces that workload model:
//!
//! * [`distribution`] — normal sampling (Box–Muller over `rand`, to stay within the
//!   allowed dependency set).
//! * [`workload`] — the [`WorkloadConfig`] parameter set (`Evtµ`, `Evtσ`, `Commµ`,
//!   `Commσ`, process count, events per process, seed) and the generator producing
//!   [`ProcessTrace`]s, designed — like the paper's traces — so that some lattice path
//!   can reach a final automaton state.  Beyond the paper's single shape, workloads
//!   are parameterized by an [`ArrivalModel`] (normally-distributed or bursty event
//!   arrivals) and a [`CommTopology`] (broadcast, ring, pipeline, or hotspot
//!   communication), which is what the scenario registry in `dlrv-core` builds on.
//! * [`mod@format`] — JSON (de)serialization of trace files.

#![forbid(unsafe_code)]

pub mod distribution;
pub mod format;
pub mod workload;

pub use distribution::NormalSampler;
pub use workload::{
    generate_workload, ArrivalModel, CommTopology, ProcessTrace, TraceAction, TraceEntry,
    Workload, WorkloadConfig,
};
