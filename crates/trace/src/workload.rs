//! Workload model and trace generation (§5.1–§5.2 of the thesis).
//!
//! Each process `Pi` runs a trace: a list of entries, each with a wait time and an
//! action.  Actions are either a local update of the process's two propositions
//! (`Pi.p`, `Pi.q`) — an internal event — or a communication event, in which the
//! process sends a message to every other process (as in the paper: "when a
//! communication event occurs, the program at Pi sends a message to each other
//! process").  Wait times for internal and communication events are drawn from two
//! normal distributions `N(Evtµ, Evtσ)` and `N(Commµ, Commσ)`.

use crate::distribution::NormalSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The action of a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAction {
    /// Internal event: set the process's propositions `p` and `q`.
    SetProps {
        /// New value of the process's `p` proposition.
        p: bool,
        /// New value of the process's `q` proposition.
        q: bool,
    },
    /// Communication event: broadcast a message to every other process.
    Broadcast,
    /// Communication event: send a single message to process `to` (used by the
    /// ring/pipeline/hotspot topologies, where communication is point-to-point
    /// instead of the paper's broadcast).
    Send {
        /// Destination process.
        to: usize,
    },
}

/// How internal-event wait times are drawn (`Evtµ`/`Evtσ` stay the base
/// distribution in every model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// The paper's model: every wait is an independent `N(Evtµ, Evtσ)` sample.
    Normal,
    /// Bursty arrivals: events come in bursts of `burst_len`.  The first event of a
    /// burst waits `sample · gap_scale` (a long inter-burst gap), the remaining
    /// events of the burst wait `sample · intra_scale` (rapid fire).  With
    /// `intra_scale < 1 < gap_scale` the mean event rate stays comparable to
    /// [`ArrivalModel::Normal`] while the instantaneous rate oscillates.
    Bursty {
        /// Number of internal events per burst (≥ 1).
        burst_len: usize,
        /// Wait-time multiplier inside a burst (typically « 1).
        intra_scale: f64,
        /// Wait-time multiplier for the gap before each burst (typically > 1).
        gap_scale: f64,
    },
}

/// Who a process's communication events are addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommTopology {
    /// The paper's model: every communication event broadcasts to all other
    /// processes.
    Broadcast,
    /// Ring: process `i` sends to `(i + 1) mod n`.
    Ring,
    /// Pipeline: process `i` sends to `i + 1`; the last process generates no
    /// communication events.
    Pipeline,
    /// Hotspot: every process sends to the hub process only, and the hub
    /// broadcasts to everyone — all communication funnels through one process.
    Hotspot {
        /// The hub process (clamped to the process count at generation time).
        hub: usize,
    },
}

/// One entry of a process trace: wait `wait` seconds, then perform `action`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Wait time before the action, in (simulated) seconds.
    pub wait: f64,
    /// The action to perform.
    pub action: TraceAction,
}

/// The trace of one process.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProcessTrace {
    /// Initial values of the process's propositions `(p, q)`.
    pub initial: (bool, bool),
    /// The entries, executed in order.
    pub entries: Vec<TraceEntry>,
}

impl ProcessTrace {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of internal (proposition-change) entries.
    pub fn n_internal(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.action, TraceAction::SetProps { .. }))
            .count()
    }

    /// Number of communication (broadcast) entries.
    pub fn n_broadcasts(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.action, TraceAction::Broadcast))
            .count()
    }

    /// Number of point-to-point send entries.
    pub fn n_sends(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.action, TraceAction::Send { .. }))
            .count()
    }

    /// Number of communication entries of any kind (broadcasts + sends).
    pub fn n_comm(&self) -> usize {
        self.n_broadcasts() + self.n_sends()
    }

    /// Total simulated duration of the trace (sum of waits).
    pub fn duration(&self) -> f64 {
        self.entries.iter().map(|e| e.wait).sum()
    }
}

/// A complete workload: one trace per process, plus the configuration that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The generating configuration.
    pub config: WorkloadConfig,
    /// One trace per process.
    pub traces: Vec<ProcessTrace>,
}

/// Parameters of the workload generator (§5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of processes (devices).
    pub n_processes: usize,
    /// Number of internal (proposition-change) events per process.
    pub events_per_process: usize,
    /// Mean of the internal-event wait-time distribution (`Evtµ`, seconds).
    pub evt_mu: f64,
    /// Standard deviation of the internal-event wait time (`Evtσ`, seconds).
    pub evt_sigma: f64,
    /// Mean of the communication wait-time distribution (`Commµ`, seconds); `None`
    /// disables communication entirely (the "no comm" configuration of Fig. 5.9).
    pub comm_mu: Option<f64>,
    /// Standard deviation of the communication wait time (`Commσ`, seconds).
    pub comm_sigma: f64,
    /// RNG seed (experiments are averaged over several seeds).
    pub seed: u64,
    /// Fraction of the trace tail in which all propositions are forced to `true`, so
    /// that — as in the paper — some lattice path can reach a final automaton state.
    pub goal_tail_fraction: f64,
    /// Initial value of every process's `p` proposition.
    ///
    /// Until-style properties (`G (P U Q)`) need `p` to start true, otherwise the very
    /// first global state already violates them; reachability properties want it false
    /// so satisfaction is not trivial.  The paper's traces encode the initial values in
    /// the trace file; here they are part of the workload configuration.
    pub initial_p: bool,
    /// Initial value of every process's `q` proposition.
    pub initial_q: bool,
    /// How internal-event wait times are drawn.
    pub arrival: ArrivalModel,
    /// Who communication events are addressed to.
    pub topology: CommTopology,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_processes: 4,
            events_per_process: 20,
            evt_mu: 3.0,
            evt_sigma: 1.0,
            comm_mu: Some(3.0),
            comm_sigma: 1.0,
            seed: 1,
            goal_tail_fraction: 0.2,
            initial_p: false,
            initial_q: false,
            arrival: ArrivalModel::Normal,
            topology: CommTopology::Broadcast,
        }
    }
}

impl WorkloadConfig {
    /// The paper's default experimental setting: `Commµ = 3 s`, `Commσ = 1 s`,
    /// `Evtµ = 3 s`, `Evtσ = 1 s` for `n` processes.
    pub fn paper_default(n_processes: usize, seed: u64) -> Self {
        WorkloadConfig {
            n_processes,
            seed,
            ..WorkloadConfig::default()
        }
    }

    /// The communication-frequency sweep of Fig. 5.9: same event rate, varying `Commµ`
    /// (`None` = no communication).
    pub fn comm_sweep(n_processes: usize, comm_mu: Option<f64>, seed: u64) -> Self {
        WorkloadConfig {
            n_processes,
            comm_mu,
            seed,
            ..WorkloadConfig::default()
        }
    }

    /// The paper-default workload with bursty event arrivals: bursts of `burst_len`
    /// rapid events (waits scaled by 0.2) separated by long gaps (waits scaled by 3).
    pub fn bursty(n_processes: usize, burst_len: usize, seed: u64) -> Self {
        WorkloadConfig {
            n_processes,
            seed,
            arrival: ArrivalModel::Bursty {
                burst_len,
                intra_scale: 0.2,
                gap_scale: 3.0,
            },
            ..WorkloadConfig::default()
        }
    }

    /// The paper-default workload over a non-broadcast communication topology.
    pub fn with_topology(n_processes: usize, topology: CommTopology, seed: u64) -> Self {
        WorkloadConfig {
            n_processes,
            topology,
            seed,
            ..WorkloadConfig::default()
        }
    }
}

/// Generates a workload from `config`.
///
/// Internal events flip each proposition with a bias that rises over the trace, and the
/// final `goal_tail_fraction` of every process's internal events sets both propositions
/// to `true`, guaranteeing (as the paper's traces do) that a lattice path leading to a
/// final automaton state exists for the evaluation properties.
pub fn generate_workload(config: &WorkloadConfig) -> Workload {
    let n = config.n_processes;
    let mut traces = Vec::with_capacity(n);
    for p in 0..n {
        // Per-process RNG so that adding processes does not perturb existing traces.
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(p as u64));
        let mut evt_wait = NormalSampler::new(config.evt_mu, config.evt_sigma);
        // What this process's communication events do; `None` disables communication
        // for this process (point-to-point topologies need a peer to send to).
        let comm_action = match config.topology {
            CommTopology::Broadcast => Some(TraceAction::Broadcast),
            CommTopology::Ring if n >= 2 => Some(TraceAction::Send { to: (p + 1) % n }),
            CommTopology::Pipeline if p + 1 < n => Some(TraceAction::Send { to: p + 1 }),
            CommTopology::Hotspot { hub } if n >= 2 => {
                let hub = hub.min(n - 1);
                if p == hub {
                    Some(TraceAction::Broadcast)
                } else {
                    Some(TraceAction::Send { to: hub })
                }
            }
            _ => None,
        };
        let mut comm_wait = comm_action
            .and(config.comm_mu)
            .map(|mu| NormalSampler::new(mu, config.comm_sigma));

        let mut entries = Vec::new();
        let n_events = config.events_per_process;
        let goal_start = ((1.0 - config.goal_tail_fraction) * n_events as f64).floor() as usize;

        // Interleave communication events with internal events by tracking two virtual
        // clocks: the next internal event time and the next communication time.
        let mut next_comm = comm_wait.as_mut().map(|s| s.sample(&mut rng));
        let mut elapsed = 0.0f64;
        for k in 0..n_events {
            let wait = match config.arrival {
                ArrivalModel::Normal => evt_wait.sample(&mut rng),
                ArrivalModel::Bursty {
                    burst_len,
                    intra_scale,
                    gap_scale,
                } => {
                    let scale = if k % burst_len.max(1) == 0 { gap_scale } else { intra_scale };
                    evt_wait.sample(&mut rng) * scale
                }
            };
            let event_time = elapsed + wait;
            // Emit any communication events that fall before this internal event.
            while let Some(t) = next_comm {
                if t <= event_time {
                    entries.push(TraceEntry {
                        wait: (t - elapsed).max(0.0),
                        action: comm_action.expect("comm_wait implies comm_action"),
                    });
                    elapsed = t;
                    next_comm = comm_wait.as_mut().map(|s| t + s.sample(&mut rng));
                } else {
                    break;
                }
            }
            let (p_val, q_val) = if k >= goal_start {
                (true, true)
            } else {
                // Propositions that start true stay true with high probability so that
                // until-style properties remain live; propositions that start false
                // become true with a bias that rises over the trace.
                let rising = 0.35 + 0.4 * (k as f64 / n_events.max(1) as f64);
                let p_bias = if config.initial_p { 0.9 } else { rising };
                let q_bias = if config.initial_q { 0.9 } else { rising };
                (rng.gen_bool(p_bias), rng.gen_bool(q_bias))
            };
            entries.push(TraceEntry {
                wait: (event_time - elapsed).max(0.0),
                action: TraceAction::SetProps { p: p_val, q: q_val },
            });
            elapsed = event_time;
        }

        traces.push(ProcessTrace {
            initial: (config.initial_p, config.initial_q),
            entries,
        });
    }
    Workload {
        config: config.clone(),
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = WorkloadConfig::paper_default(3, 7);
        let w1 = generate_workload(&cfg);
        let w2 = generate_workload(&cfg);
        assert_eq!(w1, w2);
        let w3 = generate_workload(&WorkloadConfig::paper_default(3, 8));
        assert_ne!(w1, w3);
    }

    #[test]
    fn trace_counts_match_config() {
        let cfg = WorkloadConfig {
            n_processes: 5,
            events_per_process: 12,
            ..WorkloadConfig::default()
        };
        let w = generate_workload(&cfg);
        assert_eq!(w.traces.len(), 5);
        for t in &w.traces {
            assert_eq!(t.n_internal(), 12);
        }
    }

    #[test]
    fn goal_tail_forces_all_true() {
        let cfg = WorkloadConfig {
            n_processes: 2,
            events_per_process: 10,
            goal_tail_fraction: 0.3,
            ..WorkloadConfig::default()
        };
        let w = generate_workload(&cfg);
        for t in &w.traces {
            let last_internal = t
                .entries
                .iter()
                .rev()
                .find_map(|e| match e.action {
                    TraceAction::SetProps { p, q } => Some((p, q)),
                    TraceAction::Broadcast | TraceAction::Send { .. } => None,
                })
                .unwrap();
            assert_eq!(last_internal, (true, true));
        }
    }

    #[test]
    fn no_comm_configuration_has_no_broadcasts() {
        let cfg = WorkloadConfig::comm_sweep(4, None, 3);
        let w = generate_workload(&cfg);
        for t in &w.traces {
            assert_eq!(t.n_broadcasts(), 0);
        }
    }

    #[test]
    fn higher_comm_mu_means_fewer_broadcasts() {
        let fast = generate_workload(&WorkloadConfig::comm_sweep(4, Some(3.0), 11));
        let slow = generate_workload(&WorkloadConfig::comm_sweep(4, Some(15.0), 11));
        let fast_b: usize = fast.traces.iter().map(ProcessTrace::n_broadcasts).sum();
        let slow_b: usize = slow.traces.iter().map(ProcessTrace::n_broadcasts).sum();
        assert!(
            fast_b > slow_b,
            "expected more broadcasts at Commµ=3 ({fast_b}) than at Commµ=15 ({slow_b})"
        );
    }

    #[test]
    fn new_shapes_leave_default_workloads_untouched() {
        // The arrival/topology extension must not perturb the paper's workloads: a
        // default-shaped config draws exactly the same traces as before the fields
        // existed (same RNG consumption, same waits, same actions).
        let w = generate_workload(&WorkloadConfig::paper_default(3, 7));
        assert_eq!(w.config.arrival, ArrivalModel::Normal);
        assert_eq!(w.config.topology, CommTopology::Broadcast);
        for t in &w.traces {
            assert_eq!(t.n_sends(), 0, "broadcast topology must not emit sends");
        }
    }

    #[test]
    fn ring_topology_sends_to_successor() {
        let w = generate_workload(&WorkloadConfig::with_topology(4, CommTopology::Ring, 3));
        for (i, t) in w.traces.iter().enumerate() {
            assert_eq!(t.n_broadcasts(), 0);
            assert!(t.n_sends() > 0, "ring processes must communicate");
            for e in &t.entries {
                if let TraceAction::Send { to } = e.action {
                    assert_eq!(to, (i + 1) % 4);
                }
            }
        }
    }

    #[test]
    fn pipeline_last_process_is_silent() {
        let w = generate_workload(&WorkloadConfig::with_topology(3, CommTopology::Pipeline, 5));
        assert!(w.traces[0].n_sends() > 0);
        assert!(w.traces[1].n_sends() > 0);
        assert_eq!(w.traces[2].n_comm(), 0, "pipeline tail must not send");
        for e in &w.traces[0].entries {
            if let TraceAction::Send { to } = e.action {
                assert_eq!(to, 1);
            }
        }
    }

    #[test]
    fn hotspot_funnels_through_hub() {
        let hub = 1;
        let w = generate_workload(&WorkloadConfig::with_topology(
            4,
            CommTopology::Hotspot { hub },
            9,
        ));
        for (i, t) in w.traces.iter().enumerate() {
            if i == hub {
                assert!(t.n_broadcasts() > 0, "hub must broadcast");
                assert_eq!(t.n_sends(), 0);
            } else {
                assert_eq!(t.n_broadcasts(), 0);
                for e in &t.entries {
                    if let TraceAction::Send { to } = e.action {
                        assert_eq!(to, hub);
                    }
                }
            }
        }
    }

    #[test]
    fn bursty_arrivals_have_higher_wait_variance() {
        let normal = generate_workload(&WorkloadConfig::paper_default(2, 13));
        let bursty = generate_workload(&WorkloadConfig::bursty(2, 4, 13));
        let spread = |w: &Workload| {
            let waits: Vec<f64> = w.traces[0]
                .entries
                .iter()
                .filter(|e| matches!(e.action, TraceAction::SetProps { .. }))
                .map(|e| e.wait)
                .collect();
            let mean = waits.iter().sum::<f64>() / waits.len() as f64;
            waits.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / waits.len() as f64
        };
        assert!(
            spread(&bursty) > spread(&normal),
            "bursty waits must oscillate more than normal waits ({} vs {})",
            spread(&bursty),
            spread(&normal)
        );
    }

    #[test]
    fn waits_are_nonnegative_and_duration_positive() {
        let w = generate_workload(&WorkloadConfig::paper_default(4, 5));
        for t in &w.traces {
            assert!(t.entries.iter().all(|e| e.wait >= 0.0));
            assert!(t.duration() > 0.0);
            assert!(!t.is_empty());
            assert_eq!(t.len(), t.n_internal() + t.n_broadcasts());
        }
    }
}
