//! Trace-file (de)serialization.
//!
//! The paper's devices load their traces from files at startup; this module provides
//! the equivalent JSON round-trip for [`Workload`]s so experiments can be archived and
//! replayed byte-for-byte.

use crate::workload::Workload;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a workload to a pretty-printed JSON string.
pub fn to_json(workload: &Workload) -> String {
    serde_json::to_string_pretty(workload).expect("workload serialization cannot fail")
}

/// Parses a workload from JSON.
pub fn from_json(json: &str) -> Result<Workload, serde_json::Error> {
    serde_json::from_str(json)
}

/// Writes a workload to `path` as JSON.
pub fn save(workload: &Workload, path: &Path) -> io::Result<()> {
    fs::write(path, to_json(workload))
}

/// Loads a workload from a JSON file at `path`.
pub fn load(path: &Path) -> io::Result<Workload> {
    let text = fs::read_to_string(path)?;
    from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};

    #[test]
    fn json_roundtrip_preserves_workload() {
        let w = generate_workload(&WorkloadConfig::paper_default(3, 42));
        let json = to_json(&w);
        let back = from_json(&json).expect("parse");
        assert_eq!(w, back);
    }

    #[test]
    fn file_roundtrip() {
        let w = generate_workload(&WorkloadConfig::paper_default(2, 1));
        let dir = std::env::temp_dir().join("dlrv-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.json");
        save(&w, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(w, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{}").is_err());
    }
}
