//! Trace-file (de)serialization.
//!
//! The paper's devices load their traces from files at startup; this module provides
//! the equivalent JSON round-trip for [`Workload`]s so experiments can be archived and
//! replayed byte-for-byte.  Serialization is hand-written over [`dlrv_json`] (the
//! build environment has no registry access, so `serde`/`serde_json` are unavailable);
//! the field names below are the stable on-disk schema.

use crate::workload::{
    ArrivalModel, CommTopology, ProcessTrace, TraceAction, TraceEntry, Workload, WorkloadConfig,
};
use dlrv_json::{object, Json, JsonError};
use std::fs;
use std::io;
use std::path::Path;

/// Error type of [`from_json`]; re-exported so callers need not depend on `dlrv_json`.
pub type FormatError = JsonError;

/// Serializes an arrival model as a tagged object.
pub fn arrival_to_json(arrival: &ArrivalModel) -> Json {
    match arrival {
        ArrivalModel::Normal => object([("model", Json::from("normal"))]),
        ArrivalModel::Bursty {
            burst_len,
            intra_scale,
            gap_scale,
        } => object([
            ("model", Json::from("bursty")),
            ("burst_len", Json::from(*burst_len)),
            ("intra_scale", Json::from(*intra_scale)),
            ("gap_scale", Json::from(*gap_scale)),
        ]),
    }
}

/// Parses an arrival model from its tagged-object form.
pub fn arrival_from_json(v: &Json) -> Result<ArrivalModel, FormatError> {
    match v.get("model")?.as_str()? {
        "normal" => Ok(ArrivalModel::Normal),
        "bursty" => Ok(ArrivalModel::Bursty {
            burst_len: v.get("burst_len")?.as_usize()?,
            intra_scale: v.get("intra_scale")?.as_f64()?,
            gap_scale: v.get("gap_scale")?.as_f64()?,
        }),
        other => Err(JsonError::msg(format!("unknown arrival model `{other}`"))),
    }
}

/// Serializes a communication topology as a tagged object.
pub fn topology_to_json(topology: &CommTopology) -> Json {
    match topology {
        CommTopology::Broadcast => object([("kind", Json::from("broadcast"))]),
        CommTopology::Ring => object([("kind", Json::from("ring"))]),
        CommTopology::Pipeline => object([("kind", Json::from("pipeline"))]),
        CommTopology::Hotspot { hub } => object([
            ("kind", Json::from("hotspot")),
            ("hub", Json::from(*hub)),
        ]),
    }
}

/// Parses a communication topology from its tagged-object form.
pub fn topology_from_json(v: &Json) -> Result<CommTopology, FormatError> {
    match v.get("kind")?.as_str()? {
        "broadcast" => Ok(CommTopology::Broadcast),
        "ring" => Ok(CommTopology::Ring),
        "pipeline" => Ok(CommTopology::Pipeline),
        "hotspot" => Ok(CommTopology::Hotspot {
            hub: v.get("hub")?.as_usize()?,
        }),
        other => Err(JsonError::msg(format!("unknown topology kind `{other}`"))),
    }
}

fn config_to_json(config: &WorkloadConfig) -> Json {
    object([
        ("n_processes", Json::from(config.n_processes)),
        ("events_per_process", Json::from(config.events_per_process)),
        ("evt_mu", Json::from(config.evt_mu)),
        ("evt_sigma", Json::from(config.evt_sigma)),
        ("comm_mu", Json::from(config.comm_mu)),
        ("comm_sigma", Json::from(config.comm_sigma)),
        ("seed", Json::from(config.seed)),
        ("goal_tail_fraction", Json::from(config.goal_tail_fraction)),
        ("initial_p", Json::from(config.initial_p)),
        ("initial_q", Json::from(config.initial_q)),
        ("arrival", arrival_to_json(&config.arrival)),
        ("topology", topology_to_json(&config.topology)),
    ])
}

fn config_from_json(v: &Json) -> Result<WorkloadConfig, FormatError> {
    Ok(WorkloadConfig {
        n_processes: v.get("n_processes")?.as_usize()?,
        events_per_process: v.get("events_per_process")?.as_usize()?,
        evt_mu: v.get("evt_mu")?.as_f64()?,
        evt_sigma: v.get("evt_sigma")?.as_f64()?,
        comm_mu: match v.get("comm_mu")? {
            Json::Null => None,
            value => Some(value.as_f64()?),
        },
        comm_sigma: v.get("comm_sigma")?.as_f64()?,
        seed: v.get("seed")?.as_u64()?,
        goal_tail_fraction: v.get("goal_tail_fraction")?.as_f64()?,
        initial_p: v.get("initial_p")?.as_bool()?,
        initial_q: v.get("initial_q")?.as_bool()?,
        // Both fields postdate the first on-disk schema; archives written before
        // them carry the (then-only) paper shapes.
        arrival: v
            .get_opt("arrival")?
            .map_or(Ok(ArrivalModel::Normal), arrival_from_json)?,
        topology: v
            .get_opt("topology")?
            .map_or(Ok(CommTopology::Broadcast), topology_from_json)?,
    })
}

fn entry_to_json(entry: &TraceEntry) -> Json {
    let action = match entry.action {
        TraceAction::SetProps { p, q } => object([
            ("kind", Json::from("set_props")),
            ("p", Json::from(p)),
            ("q", Json::from(q)),
        ]),
        TraceAction::Broadcast => object([("kind", Json::from("broadcast"))]),
        TraceAction::Send { to } => object([
            ("kind", Json::from("send")),
            ("to", Json::from(to)),
        ]),
    };
    object([("wait", Json::from(entry.wait)), ("action", action)])
}

fn entry_from_json(v: &Json) -> Result<TraceEntry, FormatError> {
    let action_value = v.get("action")?;
    let action = match action_value.get("kind")?.as_str()? {
        "set_props" => TraceAction::SetProps {
            p: action_value.get("p")?.as_bool()?,
            q: action_value.get("q")?.as_bool()?,
        },
        "broadcast" => TraceAction::Broadcast,
        "send" => TraceAction::Send {
            to: action_value.get("to")?.as_usize()?,
        },
        other => return Err(JsonError::msg(format!("unknown action kind `{other}`"))),
    };
    Ok(TraceEntry {
        wait: v.get("wait")?.as_f64()?,
        action,
    })
}

fn trace_to_json(trace: &ProcessTrace) -> Json {
    object([
        ("initial_p", Json::from(trace.initial.0)),
        ("initial_q", Json::from(trace.initial.1)),
        (
            "entries",
            Json::Array(trace.entries.iter().map(entry_to_json).collect()),
        ),
    ])
}

fn trace_from_json(v: &Json) -> Result<ProcessTrace, FormatError> {
    Ok(ProcessTrace {
        initial: (
            v.get("initial_p")?.as_bool()?,
            v.get("initial_q")?.as_bool()?,
        ),
        entries: v
            .get("entries")?
            .as_array()?
            .iter()
            .map(entry_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// Serializes a workload to a pretty-printed JSON string.
pub fn to_json(workload: &Workload) -> String {
    object([
        ("config", config_to_json(&workload.config)),
        (
            "traces",
            Json::Array(workload.traces.iter().map(trace_to_json).collect()),
        ),
    ])
    .to_string_pretty()
}

/// Parses a workload from JSON.
///
/// Beyond syntactic validity, the workload is checked for internal consistency (one
/// trace per process, send targets that name an existing peer), so a malformed
/// archive fails here with a descriptive error instead of panicking later inside a
/// simulation substrate.
pub fn from_json(json: &str) -> Result<Workload, FormatError> {
    let v = Json::parse(json)?;
    let workload = Workload {
        config: config_from_json(v.get("config")?)?,
        traces: v
            .get("traces")?
            .as_array()?
            .iter()
            .map(trace_from_json)
            .collect::<Result<_, _>>()?,
    };
    let n = workload.config.n_processes;
    if workload.traces.len() != n {
        return Err(JsonError::msg(format!(
            "workload declares {n} processes but carries {} traces",
            workload.traces.len()
        )));
    }
    for (i, trace) in workload.traces.iter().enumerate() {
        for entry in &trace.entries {
            if let TraceAction::Send { to } = entry.action {
                if to >= n || to == i {
                    return Err(JsonError::msg(format!(
                        "process {i}: send target {to} is not a peer of a {n}-process workload"
                    )));
                }
            }
        }
    }
    Ok(workload)
}

/// Writes a workload to `path` as JSON.
pub fn save(workload: &Workload, path: &Path) -> io::Result<()> {
    fs::write(path, to_json(workload))
}

/// Loads a workload from a JSON file at `path`.
pub fn load(path: &Path) -> io::Result<Workload> {
    let text = fs::read_to_string(path)?;
    from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};

    #[test]
    fn json_roundtrip_preserves_workload() {
        let w = generate_workload(&WorkloadConfig::paper_default(3, 42));
        let json = to_json(&w);
        let back = from_json(&json).expect("parse");
        assert_eq!(w, back);
    }

    #[test]
    fn file_roundtrip() {
        let w = generate_workload(&WorkloadConfig::paper_default(2, 1));
        let dir = std::env::temp_dir().join("dlrv-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.json");
        save(&w, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(w, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{}").is_err());
    }

    #[test]
    fn inconsistent_workloads_are_rejected_at_parse_time() {
        // Round-trip a valid 2-process ring workload, then corrupt it: out-of-range
        // and self-targeted sends, and a missing trace, must all fail in from_json
        // (not panic later in a simulator).
        use crate::workload::CommTopology;
        let good = to_json(&generate_workload(&WorkloadConfig {
            events_per_process: 4,
            ..WorkloadConfig::with_topology(2, CommTopology::Ring, 8)
        }));
        assert!(from_json(&good).is_ok());

        let out_of_range = good.replacen("\"to\": 1", "\"to\": 9", 1);
        assert_ne!(out_of_range, good, "fixture must contain a send to process 1");
        let err = from_json(&out_of_range).unwrap_err();
        assert!(err.message.contains("not a peer"), "got: {}", err.message);

        let self_send = good.replacen("\"to\": 1", "\"to\": 0", 1);
        assert!(from_json(&self_send).unwrap_err().message.contains("not a peer"));

        let missing_trace =
            good.replacen("\"n_processes\": 2", "\"n_processes\": 3", 1);
        let err = from_json(&missing_trace).unwrap_err();
        assert!(err.message.contains("carries 2 traces"), "got: {}", err.message);
    }

    #[test]
    fn new_shapes_round_trip() {
        use crate::workload::{ArrivalModel, CommTopology};
        for cfg in [
            WorkloadConfig::bursty(3, 4, 21),
            WorkloadConfig::with_topology(4, CommTopology::Ring, 22),
            WorkloadConfig::with_topology(4, CommTopology::Pipeline, 23),
            WorkloadConfig::with_topology(4, CommTopology::Hotspot { hub: 2 }, 24),
            WorkloadConfig {
                arrival: ArrivalModel::Bursty {
                    burst_len: 5,
                    intra_scale: 0.1,
                    gap_scale: 4.0,
                },
                topology: CommTopology::Ring,
                ..WorkloadConfig::default()
            },
        ] {
            let w = generate_workload(&cfg);
            let back = from_json(&to_json(&w)).expect("parse");
            assert_eq!(w, back);
        }
    }

    #[test]
    fn pre_scenario_archives_still_parse() {
        // A config written before the arrival/topology fields existed must load with
        // the paper defaults.  This pins the schema's backward compatibility.
        let old = r#"{
          "config": {
            "n_processes": 2, "events_per_process": 0,
            "evt_mu": 3.0, "evt_sigma": 1.0, "comm_mu": 3.0, "comm_sigma": 1.0,
            "seed": 1, "goal_tail_fraction": 0.2, "initial_p": false, "initial_q": false
          },
          "traces": [
            {"initial_p": false, "initial_q": false, "entries": []},
            {"initial_p": false, "initial_q": false, "entries": []}
          ]
        }"#;
        let w = from_json(old).expect("old archive parses");
        assert_eq!(w.config.arrival, crate::workload::ArrivalModel::Normal);
        assert_eq!(w.config.topology, crate::workload::CommTopology::Broadcast);
    }

    #[test]
    fn no_comm_round_trips_none() {
        let w = generate_workload(&WorkloadConfig::comm_sweep(2, None, 9));
        let back = from_json(&to_json(&w)).expect("parse");
        assert_eq!(back.config.comm_mu, None);
        assert_eq!(w, back);
    }
}
