//! Trace-file (de)serialization.
//!
//! The paper's devices load their traces from files at startup; this module provides
//! the equivalent JSON round-trip for [`Workload`]s so experiments can be archived and
//! replayed byte-for-byte.  Serialization is hand-written over [`dlrv_json`] (the
//! build environment has no registry access, so `serde`/`serde_json` are unavailable);
//! the field names below are the stable on-disk schema.

use crate::workload::{ProcessTrace, TraceAction, TraceEntry, Workload, WorkloadConfig};
use dlrv_json::{object, Json, JsonError};
use std::fs;
use std::io;
use std::path::Path;

/// Error type of [`from_json`]; re-exported so callers need not depend on `dlrv_json`.
pub type FormatError = JsonError;

fn config_to_json(config: &WorkloadConfig) -> Json {
    object([
        ("n_processes", Json::from(config.n_processes)),
        ("events_per_process", Json::from(config.events_per_process)),
        ("evt_mu", Json::from(config.evt_mu)),
        ("evt_sigma", Json::from(config.evt_sigma)),
        ("comm_mu", Json::from(config.comm_mu)),
        ("comm_sigma", Json::from(config.comm_sigma)),
        ("seed", Json::from(config.seed)),
        ("goal_tail_fraction", Json::from(config.goal_tail_fraction)),
        ("initial_p", Json::from(config.initial_p)),
        ("initial_q", Json::from(config.initial_q)),
    ])
}

fn config_from_json(v: &Json) -> Result<WorkloadConfig, FormatError> {
    Ok(WorkloadConfig {
        n_processes: v.get("n_processes")?.as_usize()?,
        events_per_process: v.get("events_per_process")?.as_usize()?,
        evt_mu: v.get("evt_mu")?.as_f64()?,
        evt_sigma: v.get("evt_sigma")?.as_f64()?,
        comm_mu: match v.get("comm_mu")? {
            Json::Null => None,
            value => Some(value.as_f64()?),
        },
        comm_sigma: v.get("comm_sigma")?.as_f64()?,
        seed: v.get("seed")?.as_u64()?,
        goal_tail_fraction: v.get("goal_tail_fraction")?.as_f64()?,
        initial_p: v.get("initial_p")?.as_bool()?,
        initial_q: v.get("initial_q")?.as_bool()?,
    })
}

fn entry_to_json(entry: &TraceEntry) -> Json {
    let action = match entry.action {
        TraceAction::SetProps { p, q } => object([
            ("kind", Json::from("set_props")),
            ("p", Json::from(p)),
            ("q", Json::from(q)),
        ]),
        TraceAction::Broadcast => object([("kind", Json::from("broadcast"))]),
    };
    object([("wait", Json::from(entry.wait)), ("action", action)])
}

fn entry_from_json(v: &Json) -> Result<TraceEntry, FormatError> {
    let action_value = v.get("action")?;
    let action = match action_value.get("kind")?.as_str()? {
        "set_props" => TraceAction::SetProps {
            p: action_value.get("p")?.as_bool()?,
            q: action_value.get("q")?.as_bool()?,
        },
        "broadcast" => TraceAction::Broadcast,
        other => return Err(JsonError::msg(format!("unknown action kind `{other}`"))),
    };
    Ok(TraceEntry {
        wait: v.get("wait")?.as_f64()?,
        action,
    })
}

fn trace_to_json(trace: &ProcessTrace) -> Json {
    object([
        ("initial_p", Json::from(trace.initial.0)),
        ("initial_q", Json::from(trace.initial.1)),
        (
            "entries",
            Json::Array(trace.entries.iter().map(entry_to_json).collect()),
        ),
    ])
}

fn trace_from_json(v: &Json) -> Result<ProcessTrace, FormatError> {
    Ok(ProcessTrace {
        initial: (
            v.get("initial_p")?.as_bool()?,
            v.get("initial_q")?.as_bool()?,
        ),
        entries: v
            .get("entries")?
            .as_array()?
            .iter()
            .map(entry_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// Serializes a workload to a pretty-printed JSON string.
pub fn to_json(workload: &Workload) -> String {
    object([
        ("config", config_to_json(&workload.config)),
        (
            "traces",
            Json::Array(workload.traces.iter().map(trace_to_json).collect()),
        ),
    ])
    .to_string_pretty()
}

/// Parses a workload from JSON.
pub fn from_json(json: &str) -> Result<Workload, FormatError> {
    let v = Json::parse(json)?;
    Ok(Workload {
        config: config_from_json(v.get("config")?)?,
        traces: v
            .get("traces")?
            .as_array()?
            .iter()
            .map(trace_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// Writes a workload to `path` as JSON.
pub fn save(workload: &Workload, path: &Path) -> io::Result<()> {
    fs::write(path, to_json(workload))
}

/// Loads a workload from a JSON file at `path`.
pub fn load(path: &Path) -> io::Result<Workload> {
    let text = fs::read_to_string(path)?;
    from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};

    #[test]
    fn json_roundtrip_preserves_workload() {
        let w = generate_workload(&WorkloadConfig::paper_default(3, 42));
        let json = to_json(&w);
        let back = from_json(&json).expect("parse");
        assert_eq!(w, back);
    }

    #[test]
    fn file_roundtrip() {
        let w = generate_workload(&WorkloadConfig::paper_default(2, 1));
        let dir = std::env::temp_dir().join("dlrv-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.json");
        save(&w, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(w, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{}").is_err());
    }

    #[test]
    fn no_comm_round_trips_none() {
        let w = generate_workload(&WorkloadConfig::comm_sweep(2, None, 9));
        let back = from_json(&to_json(&w)).expect("parse");
        assert_eq!(back.config.comm_mu, None);
        assert_eq!(w, back);
    }
}
