//! Workspace-sanity smoke test: workload generation determinism and JSON archive.

use dlrv_trace::{format, generate_workload, WorkloadConfig};

#[test]
fn generation_is_deterministic_and_archivable() {
    let cfg = WorkloadConfig::paper_default(3, 1234);
    let w1 = generate_workload(&cfg);
    let w2 = generate_workload(&cfg);
    assert_eq!(w1, w2, "same seed must reproduce the same workload");
    assert_ne!(
        w1,
        generate_workload(&WorkloadConfig::paper_default(3, 1235)),
        "different seeds must differ"
    );
    let back = format::from_json(&format::to_json(&w1)).expect("round-trip");
    assert_eq!(w1, back);
}
