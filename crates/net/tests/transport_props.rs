//! Property-based tests of the socket transport: the framed-JSON layer must
//! reassemble any chunking, coalescing or partial-write pattern the kernel (or a
//! hostile sender) produces.  The wire never guarantees frame-aligned reads — a
//! length prefix may arrive one byte at a time, ten frames may coalesce into one
//! `read`, and a non-blocking `write` may stop inside a payload — so both
//! directions are driven through the epoll [`Reactor`], exactly like the
//! `monitord` event loop.

use dlrv_json::{object, Json};
use dlrv_ltl::Assignment;
use dlrv_monitor::{ConjunctEval, EvalState, MonitorMsg, Token, TokenTransition};
use dlrv_net::{
    connect_with_retry, encode_json_frame, encode_wire_frame, Endpoint, FramedConn, Interest,
    Listener, Reactor, Socket, WireMsg,
};
use dlrv_vclock::{Event, EventKind, VectorClock};
use proptest::prelude::*;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SplitMix64 step: expands one seed into a reproducible pseudo-random sequence.
fn mix(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    *seed >> 17
}

/// An arbitrary JSON frame payload: sizes range from a few bytes to well past the
/// 64 KiB read-chunk size, so reassembly crosses every internal buffer boundary.
fn frame_from_seed(seed: &mut u64, index: usize) -> Json {
    let fill = (b'a' + (mix(seed) % 26) as u8) as char;
    let len = match mix(seed) % 4 {
        0 => mix(seed) % 8,               // tiny: several coalesce into one read
        1 => 64 + mix(seed) % 1024,       // medium: typical token frame
        2 => 4096 + mix(seed) % 4096,     // large: spans several TCP segments
        _ => 60_000 + mix(seed) % 20_000, // huge: larger than the 64 KiB read chunk
    } as usize;
    object([
        ("i", Json::from(index as u64)),
        ("pad", Json::from(fill.to_string().repeat(len))),
    ])
}

/// An arbitrary hot-path wire message — the frames the binary codec covers.
/// Events and monitor tokens scale with the trace, so these are exactly the
/// shapes a binary-wire connection carries at volume.
fn hot_msg_from_seed(seed: &mut u64) -> WireMsg {
    let n = 2 + (mix(seed) % 4) as usize;
    let vc = |seed: &mut u64| VectorClock::from_entries((0..n).map(|_| mix(seed) % 500).collect());
    let transition = |seed: &mut u64| TokenTransition {
        transition_id: (mix(seed) % 32) as usize,
        gcut: vc(seed),
        depend: vc(seed),
        gstate: Assignment(mix(seed)),
        conjuncts: (0..n)
            .map(|_| match mix(seed) % 4 {
                0 => ConjunctEval::NotInvolved,
                1 => ConjunctEval::Unset,
                2 => ConjunctEval::True,
                _ => ConjunctEval::False,
            })
            .collect(),
        next_target_process: (mix(seed) % n as u64) as usize,
        next_target_event: mix(seed) % 1000,
        eval: match mix(seed) % 3 {
            0 => EvalState::Unset,
            1 => EvalState::Enabled,
            _ => EvalState::Disabled,
        },
    };
    let token = |seed: &mut u64| Token {
        property: (mix(seed) % 4) as u32,
        parent: (mix(seed) % n as u64) as usize,
        origin_state: (mix(seed) % 8) as usize,
        parent_gv: mix(seed),
        parent_event_vc: Arc::new(vc(seed)),
        transitions: (0..1 + mix(seed) % 3).map(|_| transition(seed)).collect(),
        next_target_process: (mix(seed) % n as u64) as usize,
        next_target_event: mix(seed) % 1000,
    };
    match mix(seed) % 5 {
        0 => {
            let process = (mix(seed) % n as u64) as usize;
            WireMsg::Event {
                event: Event {
                    process,
                    kind: match mix(seed) % 3 {
                        0 => EventKind::Internal,
                        1 => EventKind::Send { to: (process + 1) % n, msg_id: mix(seed) },
                        _ => EventKind::Receive { from: (process + 1) % n, msg_id: mix(seed) },
                    },
                    sn: 1 + mix(seed) % 500,
                    vc: vc(seed),
                    state: Assignment(mix(seed)),
                    time: (mix(seed) % 1_000_000) as f64 * 0.001,
                },
            }
        }
        1 => WireMsg::Monitor {
            from: (mix(seed) % n as u64) as usize,
            seq: mix(seed),
            time: (mix(seed) % 1_000_000) as f64 * 0.001,
            msg: MonitorMsg::Token(token(seed)),
        },
        2 => WireMsg::Monitor {
            from: (mix(seed) % n as u64) as usize,
            seq: mix(seed),
            time: (mix(seed) % 1_000_000) as f64 * 0.001,
            msg: MonitorMsg::Batch((0..1 + mix(seed) % 4).map(|_| token(seed)).collect()),
        },
        3 => WireMsg::Monitor {
            from: (mix(seed) % n as u64) as usize,
            seq: mix(seed),
            time: (mix(seed) % 1_000_000) as f64 * 0.001,
            msg: MonitorMsg::Terminated {
                process: (mix(seed) % n as u64) as usize,
                last_sn: mix(seed) % 1000,
            },
        },
        // Control frames stay JSON even on a binary connection; interleave some
        // so the decoder's per-frame autodetect is exercised both ways.
        _ => WireMsg::Finish {
            time: (mix(seed) % 1_000_000) as f64 * 0.001,
        },
    }
}

/// A connected non-blocking loopback pair (client, server).
fn loopback_sockets() -> (Socket, Socket) {
    let listener =
        Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").expect("parse")).expect("bind");
    let local = listener.local_endpoint().expect("local endpoint");
    let client = connect_with_retry(&local, Duration::from_secs(5)).expect("connect");
    let server = loop {
        if let Some(sock) = listener.accept().expect("accept") {
            break sock;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    (client, server)
}

/// Writes as much of `chunk` as the kernel accepts right now (possibly zero
/// bytes), without blocking — the raw-write primitive of the chunking test.
fn write_some(sock: &mut Socket, chunk: &[u8]) -> Result<usize, io::Error> {
    match sock.write(chunk) {
        Ok(n) => Ok(n),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
        Err(e) => Err(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw chunked writes: the concatenated byte stream of many frames is pushed
    /// through the socket in arbitrary slices (single bytes up to multi-frame
    /// coalescings), with the reactor deciding when the receiver reads.  The
    /// decoder must reproduce every frame, in order, bit-for-bit.
    #[test]
    fn arbitrary_chunking_reassembles_every_frame(seed in 0u64..1 << 48) {
        let mut s = seed;
        let n_frames = 2 + (mix(&mut s) % 24) as usize;
        let frames: Vec<Json> = (0..n_frames).map(|i| frame_from_seed(&mut s, i)).collect();
        let mut wire: Vec<u8> = Vec::new();
        for f in &frames {
            wire.extend(encode_json_frame(f));
        }

        let (mut tx, server) = loopback_sockets();
        let mut rx = FramedConn::new(server);
        let mut reactor = Reactor::new().expect("reactor");
        reactor
            .register(rx.raw_fd(), 1, Interest::READABLE)
            .expect("register rx");

        let mut sent = 0usize;
        let mut got: Vec<Json> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while got.len() < frames.len() {
            prop_assert!(Instant::now() < deadline, "timed out with {} frames", got.len());
            // Push one arbitrary-sized slice (1 byte .. ~100 KiB) while data remains.
            if sent < wire.len() {
                let max = wire.len() - sent;
                let chunk = match mix(&mut s) % 3 {
                    0 => 1 + (mix(&mut s) % 7) as usize,       // byte-dribble
                    1 => 1 + (mix(&mut s) % 1500) as usize,    // segment-ish
                    _ => 1 + (mix(&mut s) % 100_000) as usize, // coalesce frames
                }
                .min(max);
                match write_some(&mut tx, &wire[sent..sent + chunk]) {
                    Ok(n) => sent += n,
                    Err(e) => prop_assert!(false, "write: {e}"),
                }
            }
            let ready = reactor
                .poll(Some(50))
                .expect("poll")
                .iter()
                .any(|e| e.token == 1 && e.readable);
            if ready || sent == wire.len() {
                match rx.on_readable() {
                    Ok(decoded) => got.extend(decoded),
                    Err(e) => prop_assert!(false, "read: {e}"),
                }
            }
        }
        prop_assert_eq!(got, frames);
    }

    /// Partial writes through [`FramedConn`]: every frame is queued up front, the
    /// writer flushes only when the reactor reports the socket writable, and the
    /// reader drains concurrently.  With more queued bytes than the socket buffers
    /// hold, `flush` must stop mid-frame on `EWOULDBLOCK` and resume exactly
    /// where it left off; `frames_flushed` must count every frame exactly once.
    #[test]
    fn partial_writes_resume_across_reactor_wakeups(seed in 0u64..1 << 48) {
        let mut s = seed;
        let n_frames = 8 + (mix(&mut s) % 24) as usize;
        let frames: Vec<Json> = (0..n_frames).map(|i| frame_from_seed(&mut s, i)).collect();

        let (client, server) = loopback_sockets();
        let mut tx = FramedConn::new(client);
        let mut rx = FramedConn::new(server);
        let mut reactor = Reactor::new().expect("reactor");
        reactor
            .register(tx.raw_fd(), 0, Interest::BOTH)
            .expect("register tx");
        reactor
            .register(rx.raw_fd(), 1, Interest::READABLE)
            .expect("register rx");

        for f in &frames {
            tx.queue_bytes(encode_json_frame(f));
        }
        let mut got: Vec<Json> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while got.len() < frames.len() {
            prop_assert!(Instant::now() < deadline, "timed out with {} frames", got.len());
            let events: Vec<_> = reactor.poll(Some(50)).expect("poll").to_vec();
            for event in events {
                if event.token == 0 && event.writable && tx.wants_write() {
                    match tx.flush() {
                        Ok(_) => {}
                        Err(e) => prop_assert!(false, "flush: {e}"),
                    }
                }
                if event.token == 1 && event.readable {
                    match rx.on_readable() {
                        Ok(decoded) => got.extend(decoded),
                        Err(e) => prop_assert!(false, "read: {e}"),
                    }
                }
            }
        }
        prop_assert!(!tx.wants_write(), "queue must drain completely");
        prop_assert_eq!(tx.frames_flushed(), frames.len() as u64);
        prop_assert_eq!(got, frames);
    }

    /// Differential binary-wire transport: every frame independently picks the
    /// binary or the JSON encoding (a binary connection still sends control
    /// frames as JSON, so real streams are always mixed), the byte stream is
    /// pushed in arbitrary slices, and the typed receive path must reproduce
    /// every message exactly — the receiver autodetects the format per frame
    /// from the header bit, never from negotiated state.
    #[test]
    fn mixed_binary_and_json_wire_frames_reassemble_typed(seed in 0u64..1 << 48) {
        let mut s = seed;
        let n_msgs = 2 + (mix(&mut s) % 24) as usize;
        let msgs: Vec<WireMsg> = (0..n_msgs).map(|_| hot_msg_from_seed(&mut s)).collect();
        let mut wire: Vec<u8> = Vec::new();
        for msg in &msgs {
            wire.extend(encode_wire_frame(msg, mix(&mut s).is_multiple_of(2)));
        }

        let (mut tx, server) = loopback_sockets();
        let mut rx = FramedConn::new(server);
        let mut reactor = Reactor::new().expect("reactor");
        reactor
            .register(rx.raw_fd(), 1, Interest::READABLE)
            .expect("register rx");

        let mut sent = 0usize;
        let mut got: Vec<WireMsg> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while got.len() < msgs.len() {
            prop_assert!(Instant::now() < deadline, "timed out with {} messages", got.len());
            if sent < wire.len() {
                let max = wire.len() - sent;
                let chunk = match mix(&mut s) % 3 {
                    0 => 1 + (mix(&mut s) % 7) as usize,
                    1 => 1 + (mix(&mut s) % 1500) as usize,
                    _ => 1 + (mix(&mut s) % 100_000) as usize,
                }
                .min(max);
                match write_some(&mut tx, &wire[sent..sent + chunk]) {
                    Ok(n) => sent += n,
                    Err(e) => prop_assert!(false, "write: {e}"),
                }
            }
            let ready = reactor
                .poll(Some(50))
                .expect("poll")
                .iter()
                .any(|e| e.token == 1 && e.readable);
            if ready || sent == wire.len() {
                match rx.on_readable_msgs() {
                    Ok(decoded) => got.extend(decoded),
                    Err(e) => prop_assert!(false, "read: {e}"),
                }
            }
        }
        prop_assert_eq!(got, msgs);
    }
}
