//! Framed, non-blocking JSON connections.
//!
//! The deploy protocol reuses the `dlrv-stream` framing — a 4-byte big-endian
//! length prefix followed by compact JSON — but with arbitrary [`Json`] payloads
//! instead of [`dlrv_stream::StreamRecord`]s: control, peer and fault-shim frames
//! all travel through the same [`FramedConn`].
//!
//! A [`FramedConn`] wraps a non-blocking [`Socket`] with an incremental
//! [`JsonFrameDecoder`] on the read side and a frame-boundary-aware write queue on
//! the write side: [`flush`](FramedConn::flush) writes as much as the kernel
//! accepts and remembers the offset inside a partially-written frame, so the
//! reactor can resume exactly where `EWOULDBLOCK` interrupted.  The
//! [`frames_flushed`](FramedConn::frames_flushed) counter — frames fully handed to
//! the kernel — is the `sent` side of the deploy quiescence barrier.

use crate::endpoint::Socket;
use crate::wire::{self, WireMsg};
use dlrv_json::Json;
use dlrv_stream::{BINARY_FRAME_FLAG, MAX_FRAME_LEN};
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::os::unix::io::RawFd;

/// Error of the transport layer: framing, JSON or socket I/O.
#[derive(Debug)]
pub struct NetError {
    /// Human-readable description.
    pub message: String,
}

impl NetError {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        NetError {
            message: message.into(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::msg(format!("socket I/O: {e}"))
    }
}

impl From<dlrv_json::JsonError> for NetError {
    fn from(e: dlrv_json::JsonError) -> Self {
        NetError::msg(format!("wire JSON: {e}"))
    }
}

impl From<dlrv_stream::StreamError> for NetError {
    fn from(e: dlrv_stream::StreamError) -> Self {
        NetError::msg(format!("wire codec: {e}"))
    }
}

/// Encodes one JSON value as a frame: 4-byte big-endian length + compact payload.
pub fn encode_json_frame(value: &Json) -> Vec<u8> {
    let payload = value.to_string_compact().into_bytes();
    assert!(payload.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// An incremental frame decoder yielding [`Json`] payloads (the generic sibling of
/// `dlrv_stream::FrameDecoder`, which is specialized to stream records).
#[derive(Debug, Default)]
pub struct JsonFrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl JsonFrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        JsonFrameDecoder::default()
    }

    /// Appends raw bytes from the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame as `(binary-flag, payload)`, or `None`
    /// when more bytes are needed.  The flag is the header's bit 31 (see
    /// [`BINARY_FRAME_FLAG`]); interpreting the payload is the caller's job.
    pub fn next_raw_frame(&mut self) -> Result<Option<(bool, Vec<u8>)>, NetError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let header = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        let binary = header & BINARY_FRAME_FLAG != 0;
        let len = (header & !BINARY_FRAME_FLAG) as usize;
        if len > MAX_FRAME_LEN {
            return Err(NetError::msg(format!(
                "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
            )));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some((binary, payload)))
    }

    /// Decodes the next complete frame as JSON, or `None` when more bytes are
    /// needed.  Binary frames are an error on this legacy path — callers that
    /// negotiated the binary wire read typed messages through
    /// [`FramedConn::on_readable_msgs`] instead.
    pub fn next_frame(&mut self) -> Result<Option<Json>, NetError> {
        match self.next_raw_frame()? {
            None => Ok(None),
            Some((true, _)) => Err(NetError::msg(
                "binary frame on a JSON-only decode path (wire format not negotiated?)",
            )),
            Some((false, payload)) => {
                let text = std::str::from_utf8(&payload)
                    .map_err(|_| NetError::msg("frame payload is not UTF-8"))?;
                Ok(Some(Json::parse(text)?))
            }
        }
    }
}

/// A non-blocking socket carrying framed JSON in both directions.
#[derive(Debug)]
pub struct FramedConn {
    sock: Socket,
    decoder: JsonFrameDecoder,
    /// Outgoing frames not yet fully written; `out_pos` bytes of the front frame
    /// are already on the wire.
    outq: VecDeque<Vec<u8>>,
    out_pos: usize,
    frames_flushed: u64,
    eof: bool,
    read_chunk: Vec<u8>,
    binary_wire: bool,
}

impl FramedConn {
    /// Wraps an established non-blocking socket.
    pub fn new(sock: Socket) -> Self {
        FramedConn {
            sock,
            decoder: JsonFrameDecoder::new(),
            outq: VecDeque::new(),
            out_pos: 0,
            frames_flushed: 0,
            eof: false,
            read_chunk: vec![0u8; 64 * 1024],
            binary_wire: false,
        }
    }

    /// Selects the outgoing frame format for [`send_msg`](Self::send_msg):
    /// binary bodies for the hot frame types when `on`, JSON for everything
    /// (the default).  Reading needs no mode — each incoming frame declares its
    /// own format in the header.
    pub fn set_binary_wire(&mut self, on: bool) {
        self.binary_wire = on;
    }

    /// The outgoing frame format last set by [`set_binary_wire`](Self::set_binary_wire).
    pub fn binary_wire(&self) -> bool {
        self.binary_wire
    }

    /// The raw descriptor, for reactor registration.
    pub fn raw_fd(&self) -> RawFd {
        self.sock.raw_fd()
    }

    /// True once the peer closed its write side.
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Reads everything currently available and returns the complete frames
    /// decoded from it (possibly empty).  Sets [`is_eof`](Self::is_eof) on a clean
    /// peer close; trailing bytes of a truncated frame at EOF are an error.
    pub fn on_readable(&mut self) -> Result<Vec<Json>, NetError> {
        self.fill_from_socket()?;
        let mut frames = Vec::new();
        while let Some(frame) = self.decoder.next_frame()? {
            frames.push(frame);
        }
        self.check_eof_remainder()?;
        Ok(frames)
    }

    /// Reads everything currently available and returns the complete deploy
    /// messages decoded from it — the typed sibling of
    /// [`on_readable`](Self::on_readable), decoding each frame per its own
    /// header flag so JSON and binary peers share one receive path.
    pub fn on_readable_msgs(&mut self) -> Result<Vec<WireMsg>, NetError> {
        self.fill_from_socket()?;
        let mut msgs = Vec::new();
        while let Some((binary, payload)) = self.decoder.next_raw_frame()? {
            msgs.push(wire::decode_wire_frame(binary, &payload)?);
        }
        self.check_eof_remainder()?;
        Ok(msgs)
    }

    /// Pulls every available byte off the socket into the frame decoder.
    fn fill_from_socket(&mut self) -> Result<(), NetError> {
        loop {
            match self.sock.read(&mut self.read_chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    let chunk = self.read_chunk[..n].to_vec();
                    self.decoder.push(&chunk);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn check_eof_remainder(&self) -> Result<(), NetError> {
        if self.eof && self.decoder.pending_bytes() > 0 {
            return Err(NetError::msg(format!(
                "peer closed mid-frame ({} trailing bytes)",
                self.decoder.pending_bytes()
            )));
        }
        Ok(())
    }

    /// Queues one JSON value for sending (framed) and attempts an immediate flush.
    pub fn send(&mut self, value: &Json) -> Result<(), NetError> {
        self.queue_bytes(encode_json_frame(value));
        self.flush()?;
        Ok(())
    }

    /// Queues one deploy message in the connection's negotiated format (see
    /// [`set_binary_wire`](Self::set_binary_wire)) and attempts an immediate flush.
    pub fn send_msg(&mut self, msg: &WireMsg) -> Result<(), NetError> {
        self.queue_bytes(wire::encode_wire_frame(msg, self.binary_wire));
        self.flush()?;
        Ok(())
    }

    /// Queues an already-encoded frame without flushing (the fault shim re-emits
    /// byte-identical frames, possibly delayed).
    pub fn queue_bytes(&mut self, frame: Vec<u8>) {
        debug_assert!(frame.len() >= 4, "frames carry a 4-byte length prefix");
        self.outq.push_back(frame);
    }

    /// Writes queued frames until the kernel pushes back.  Returns `true` when the
    /// queue drained completely.
    pub fn flush(&mut self) -> Result<bool, NetError> {
        while let Some(front) = self.outq.front() {
            match self.sock.write(&front[self.out_pos..]) {
                Ok(n) => {
                    self.out_pos += n;
                    if self.out_pos == front.len() {
                        self.outq.pop_front();
                        self.out_pos = 0;
                        self.frames_flushed += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    /// True while queued frames are waiting for the socket to become writable.
    pub fn wants_write(&self) -> bool {
        !self.outq.is_empty()
    }

    /// Number of queued (not fully written) frames.
    pub fn queued_frames(&self) -> usize {
        self.outq.len()
    }

    /// Frames fully handed to the kernel since the connection opened.
    pub fn frames_flushed(&self) -> u64 {
        self.frames_flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{connect_with_retry, Endpoint, Listener};
    use dlrv_json::object;
    use std::time::{Duration, Instant};

    fn loopback_pair() -> (FramedConn, FramedConn) {
        let listener =
            Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").expect("parse")).expect("bind");
        let local = listener.local_endpoint().expect("local");
        let client = connect_with_retry(&local, Duration::from_secs(2)).expect("connect");
        let server = loop {
            if let Some(sock) = listener.accept().expect("accept") {
                break sock;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        (FramedConn::new(client), FramedConn::new(server))
    }

    fn pump_until(
        rx: &mut FramedConn,
        want: usize,
        timeout: Duration,
    ) -> Vec<Json> {
        let deadline = Instant::now() + timeout;
        let mut got = Vec::new();
        while got.len() < want {
            assert!(Instant::now() < deadline, "timed out with {} frames", got.len());
            got.extend(rx.on_readable().expect("read"));
            std::thread::sleep(Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn frames_round_trip_over_a_real_socket() {
        let (mut tx, mut rx) = loopback_pair();
        let frames: Vec<Json> = (0..10u64)
            .map(|i| object([("k", Json::from(i)), ("tag", Json::from("x"))]))
            .collect();
        for f in &frames {
            tx.send(f).expect("send");
        }
        // Finish any partial flush.
        let deadline = Instant::now() + Duration::from_secs(2);
        while tx.wants_write() && Instant::now() < deadline {
            tx.flush().expect("flush");
        }
        assert_eq!(tx.frames_flushed(), frames.len() as u64);
        let got = pump_until(&mut rx, frames.len(), Duration::from_secs(2));
        assert_eq!(got, frames);
    }

    #[test]
    fn json_frame_decoder_handles_split_prefixes() {
        let value = object([("answer", Json::from(42u64))]);
        let bytes = encode_json_frame(&value);
        let mut decoder = JsonFrameDecoder::new();
        // Push the length prefix one byte at a time: no frame must appear early.
        for b in &bytes[..3] {
            decoder.push(&[*b]);
            assert!(decoder.next_frame().expect("decode").is_none());
        }
        decoder.push(&bytes[3..]);
        assert_eq!(decoder.next_frame().expect("decode"), Some(value));
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut decoder = JsonFrameDecoder::new();
        decoder.push(&u32::MAX.to_be_bytes());
        assert!(decoder.next_frame().is_err());
    }
}
