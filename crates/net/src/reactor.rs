//! A thin single-threaded reactor over the vendored `epoll` crate.
//!
//! The daemon and the transport tests need exactly one primitive: "wake me when
//! any of these descriptors is ready, or after a timeout".  The [`Reactor`] wraps
//! the [`epoll::Epoll`] instance with an internal event buffer and re-exports the
//! registration [`Interest`] and the readiness [`IoEvent`] so callers never
//! depend on the compat crate directly.
//!
//! Registrations are level-triggered: a connection with unread bytes or a
//! non-empty write queue keeps waking the loop until it is drained, which makes
//! the daemon's state machine restartable at any point — the property the
//! partial-write proptests lean on.

use std::io;
use std::os::unix::io::RawFd;

pub use epoll::{Event as IoEvent, Interest};

/// A single-threaded epoll reactor.
#[derive(Debug)]
pub struct Reactor {
    epoll: epoll::Epoll,
    events: Vec<IoEvent>,
}

impl Reactor {
    /// Creates the underlying epoll instance.
    pub fn new() -> io::Result<Reactor> {
        Ok(Reactor {
            epoll: epoll::Epoll::new()?,
            events: Vec::new(),
        })
    }

    /// Registers `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.epoll.add(fd, token, interest)
    }

    /// Updates the interest (and token) of a registered descriptor.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.epoll.modify(fd, token, interest)
    }

    /// Removes a registration.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.epoll.delete(fd)
    }

    /// Waits up to `timeout_ms` (`None` = forever) and returns the ready events;
    /// an empty slice means the timeout elapsed.
    pub fn poll(&mut self, timeout_ms: Option<u64>) -> io::Result<&[IoEvent]> {
        self.events.clear();
        let _span = dlrv_obs::span("net.reactor_poll");
        self.epoll.wait(timeout_ms, &mut self.events)?;
        dlrv_obs::counter!("net.reactor_wakeups").inc();
        Ok(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reactor_reports_readable_peers() {
        let (mut a, b) = UnixStream::pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        let mut reactor = Reactor::new().expect("reactor");
        reactor
            .register(b.as_raw_fd(), 11, Interest::READABLE)
            .expect("register");
        assert!(reactor.poll(Some(20)).expect("poll").is_empty());
        a.write_all(b"x").expect("write");
        let events = reactor.poll(Some(1000)).expect("poll");
        assert!(events.iter().any(|e| e.token == 11 && e.readable));
        reactor.deregister(b.as_raw_fd()).expect("deregister");
    }
}
