//! The deploy wire protocol: every frame exchanged between the orchestrator, the
//! `monitord` daemons and their peer mesh.
//!
//! All frames are length-prefixed compact JSON (see [`crate::conn`]) with a
//! `type` tag.  Three planes share one message enum:
//!
//! * **control** (orchestrator ↔ daemon): `hello`/`hello_ok` handshake, `event`
//!   delivery, `status` quiescence polls, `finish` (end-of-trace), `report`
//!   (metrics collection) and `shutdown`;
//! * **peer** (daemon ↔ daemon): `peer_hello` identification and `monitor`
//!   frames carrying a [`MonitorMsg`] — a token, a §4.3.1 batch or a
//!   termination notice — plus the simulated timestamp it was sent at, so the
//!   receiving monitor processes it at exactly the time a co-located
//!   [`FeedSession`](dlrv_monitor::FeedSession) would have;
//! * **property payloads** stay opaque here: `hello` carries the property and the
//!   monitor options as raw [`Json`] interpreted by `dlrv-core`'s results codec,
//!   keeping this crate independent of the spec pipeline (and free of the
//!   dependency cycle `net → core → net`).

use crate::conn::NetError;
use crate::fault::{FaultSpec, FaultStats};
use dlrv_json::{object, Json, JsonError};
use dlrv_ltl::Assignment;
use dlrv_monitor::{ConjunctEval, EvalState, MonitorMetrics, MonitorMsg, Token, TokenTransition};
use dlrv_stream::{
    event_from_binary, event_from_json, event_to_binary, event_to_json, varint,
    BINARY_FRAME_FLAG, MAX_FRAME_LEN,
};
use dlrv_vclock::{Event, VectorClock};
use std::sync::Arc;

fn vc_to_json(vc: &VectorClock) -> Json {
    Json::Array(vc.entries().iter().map(|&e| Json::from(e)).collect())
}

fn vc_from_json(v: &Json) -> Result<VectorClock, JsonError> {
    Ok(VectorClock::from_entries(
        v.as_array()?
            .iter()
            .map(Json::as_u64)
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

/// Serializes one token transition.  Conjunct evaluations travel as a compact
/// string (one char per process: `-` not involved, `?` unset, `t`, `f`), the
/// overall evaluation as `?`/`e`/`d`.
fn transition_to_json(t: &TokenTransition) -> Json {
    let conjuncts: String = t
        .conjuncts
        .iter()
        .map(|c| match c {
            ConjunctEval::NotInvolved => '-',
            ConjunctEval::Unset => '?',
            ConjunctEval::True => 't',
            ConjunctEval::False => 'f',
        })
        .collect();
    let eval = match t.eval {
        EvalState::Unset => "?",
        EvalState::Enabled => "e",
        EvalState::Disabled => "d",
    };
    object([
        ("id", Json::from(t.transition_id)),
        ("gcut", vc_to_json(&t.gcut)),
        ("depend", vc_to_json(&t.depend)),
        ("gstate", Json::from(t.gstate.0)),
        ("conjuncts", Json::from(conjuncts)),
        ("next_p", Json::from(t.next_target_process)),
        ("next_e", Json::from(t.next_target_event)),
        ("eval", Json::from(eval)),
    ])
}

fn transition_from_json(v: &Json) -> Result<TokenTransition, JsonError> {
    let conjuncts = v
        .get("conjuncts")?
        .as_str()?
        .chars()
        .map(|c| match c {
            '-' => Ok(ConjunctEval::NotInvolved),
            '?' => Ok(ConjunctEval::Unset),
            't' => Ok(ConjunctEval::True),
            'f' => Ok(ConjunctEval::False),
            other => Err(JsonError::msg(format!("unknown conjunct eval `{other}`"))),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let eval = match v.get("eval")?.as_str()? {
        "?" => EvalState::Unset,
        "e" => EvalState::Enabled,
        "d" => EvalState::Disabled,
        other => return Err(JsonError::msg(format!("unknown eval state `{other}`"))),
    };
    Ok(TokenTransition {
        transition_id: v.get("id")?.as_usize()?,
        gcut: vc_from_json(v.get("gcut")?)?,
        depend: vc_from_json(v.get("depend")?)?,
        gstate: Assignment(v.get("gstate")?.as_u64()?),
        conjuncts,
        next_target_process: v.get("next_p")?.as_usize()?,
        next_target_event: v.get("next_e")?.as_u64()?,
        eval,
    })
}

/// Serializes a token.
pub fn token_to_json(t: &Token) -> Json {
    object([
        ("property", Json::from(t.property as u64)),
        ("parent", Json::from(t.parent)),
        ("origin_state", Json::from(t.origin_state)),
        ("parent_gv", Json::from(t.parent_gv)),
        ("parent_vc", vc_to_json(&t.parent_event_vc)),
        (
            "transitions",
            Json::Array(t.transitions.iter().map(transition_to_json).collect()),
        ),
        ("next_p", Json::from(t.next_target_process)),
        ("next_e", Json::from(t.next_target_event)),
    ])
}

/// Parses a token back from its [`token_to_json`] form.
pub fn token_from_json(v: &Json) -> Result<Token, JsonError> {
    Ok(Token {
        // Additive (absent in pre-fleet documents): `0` is the solo-run id.
        property: v.get_opt("property")?.map_or(Ok(0), Json::as_u64)? as u32,
        parent: v.get("parent")?.as_usize()?,
        origin_state: v.get("origin_state")?.as_usize()?,
        parent_gv: v.get("parent_gv")?.as_u64()?,
        parent_event_vc: Arc::new(vc_from_json(v.get("parent_vc")?)?),
        transitions: v
            .get("transitions")?
            .as_array()?
            .iter()
            .map(transition_from_json)
            .collect::<Result<_, _>>()?,
        next_target_process: v.get("next_p")?.as_usize()?,
        next_target_event: v.get("next_e")?.as_u64()?,
    })
}

/// Serializes a monitor-to-monitor message.
pub fn monitor_msg_to_json(msg: &MonitorMsg) -> Json {
    match msg {
        MonitorMsg::Token(t) => object([
            ("type", Json::from("token")),
            ("token", token_to_json(t)),
        ]),
        MonitorMsg::Batch(tokens) => object([
            ("type", Json::from("batch")),
            (
                "tokens",
                Json::Array(tokens.iter().map(token_to_json).collect()),
            ),
        ]),
        MonitorMsg::Terminated { process, last_sn } => object([
            ("type", Json::from("terminated")),
            ("process", Json::from(*process)),
            ("last_sn", Json::from(*last_sn)),
        ]),
    }
}

/// Parses a monitor-to-monitor message back.
pub fn monitor_msg_from_json(v: &Json) -> Result<MonitorMsg, JsonError> {
    match v.get("type")?.as_str()? {
        "token" => Ok(MonitorMsg::Token(token_from_json(v.get("token")?)?)),
        "batch" => Ok(MonitorMsg::Batch(
            v.get("tokens")?
                .as_array()?
                .iter()
                .map(token_from_json)
                .collect::<Result<_, _>>()?,
        )),
        "terminated" => Ok(MonitorMsg::Terminated {
            process: v.get("process")?.as_usize()?,
            last_sn: v.get("last_sn")?.as_u64()?,
        }),
        other => Err(JsonError::msg(format!("unknown monitor msg `{other}`"))),
    }
}

/// One daemon's transport counters, polled by the orchestrator's quiescence
/// barrier after every fed event.
///
/// The system is quiescent when, across all daemons, `sent[i][j] == received[j][i]`
/// for every pair, every `pending` is zero, and two consecutive polls agree — the
/// classic counter-balance termination test, with `dropped` excluded from `sent`
/// so deliberately lossy channels still drain.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonStatus {
    /// The reporting daemon's process index.
    pub process: usize,
    /// Program events delivered to this daemon so far.
    pub events_seen: u64,
    /// Monitor frames fully handed to the kernel, per destination process
    /// (duplicates counted individually, drops excluded).
    pub sent: Vec<u64>,
    /// Monitor frames decoded from each source process.
    pub received: Vec<u64>,
    /// Frames still inside this daemon: queued on sockets, held by the reorder
    /// shim, or waiting in the delay queue.
    pub pending: u64,
    /// Frames the fault shim discarded.
    pub dropped: u64,
}

impl DaemonStatus {
    /// Serializes the status.
    pub fn to_json(&self) -> Json {
        object([
            ("process", Json::from(self.process)),
            ("events_seen", Json::from(self.events_seen)),
            (
                "sent",
                Json::Array(self.sent.iter().map(|&c| Json::from(c)).collect()),
            ),
            (
                "received",
                Json::Array(self.received.iter().map(|&c| Json::from(c)).collect()),
            ),
            ("pending", Json::from(self.pending)),
            ("dropped", Json::from(self.dropped)),
        ])
    }

    /// Parses the status back.
    pub fn from_json(v: &Json) -> Result<DaemonStatus, JsonError> {
        let counts = |key: &str| -> Result<Vec<u64>, JsonError> {
            v.get(key)?.as_array()?.iter().map(Json::as_u64).collect()
        };
        Ok(DaemonStatus {
            process: v.get("process")?.as_usize()?,
            events_seen: v.get("events_seen")?.as_u64()?,
            sent: counts("sent")?,
            received: counts("received")?,
            pending: v.get("pending")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
        })
    }
}

/// One daemon's end-of-run report.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonReport {
    /// The reporting daemon's process index.
    pub process: usize,
    /// Its monitor's metrics, exactly as a co-located monitor would report them.
    pub metrics: MonitorMetrics,
    /// Logical monitor messages this daemon's monitor emitted (pre-shim: the
    /// number a [`FeedSession`](dlrv_monitor::FeedSession) would count).
    pub logical_monitor_msgs: u64,
    /// What the fault shim did across all of this daemon's outgoing channels.
    pub fault_stats: FaultStats,
    /// The daemon process's peak RSS in bytes (`VmHWM`); `0` when not measured
    /// or when the peer predates the field (additive, like the schema-v1
    /// `RunMetrics` field it feeds).
    pub peak_rss_bytes: u64,
}

impl DaemonReport {
    /// Serializes the report.
    pub fn to_json(&self) -> Json {
        object([
            ("process", Json::from(self.process)),
            ("metrics", self.metrics.to_json()),
            ("logical_monitor_msgs", Json::from(self.logical_monitor_msgs)),
            ("fault_stats", self.fault_stats.to_json()),
            ("peak_rss_bytes", Json::from(self.peak_rss_bytes)),
        ])
    }

    /// Parses the report back.
    pub fn from_json(v: &Json) -> Result<DaemonReport, JsonError> {
        Ok(DaemonReport {
            process: v.get("process")?.as_usize()?,
            metrics: MonitorMetrics::from_json(v.get("metrics")?)?,
            logical_monitor_msgs: v.get("logical_monitor_msgs")?.as_u64()?,
            fault_stats: FaultStats::from_json(v.get("fault_stats")?)?,
            peak_rss_bytes: v.get_opt("peak_rss_bytes")?.map_or(Ok(0), Json::as_u64)?,
        })
    }
}

/// One live progress sample from a running daemon (see [`WireMsg::Telemetry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonTelemetry {
    /// The reporting daemon's process index.
    pub process: usize,
    /// Program events observed so far (the cadence anchor: samples are taken at
    /// fixed event counts, so two runs of the same trace sample at the same
    /// points).
    pub events_seen: u64,
    /// Global views currently alive in the monitor.
    pub live_views: u64,
    /// Tokens sent so far.
    pub tokens_sent: u64,
    /// Tokens received so far.
    pub tokens_received: u64,
    /// Monitor-to-monitor frames currently queued (delay shim + unflushed).
    pub queued_frames: u64,
    /// The daemon's peak RSS in bytes at sample time (`0` = not measured).
    pub peak_rss_bytes: u64,
}

impl DaemonTelemetry {
    /// Serializes the sample (also the JSONL timeline row format the deploy
    /// orchestrator writes to `telemetry-daemon<i>.jsonl`).
    pub fn to_json(&self) -> Json {
        object([
            ("process", Json::from(self.process)),
            ("events_seen", Json::from(self.events_seen)),
            ("live_views", Json::from(self.live_views)),
            ("tokens_sent", Json::from(self.tokens_sent)),
            ("tokens_received", Json::from(self.tokens_received)),
            ("queued_frames", Json::from(self.queued_frames)),
            ("peak_rss_bytes", Json::from(self.peak_rss_bytes)),
        ])
    }

    /// Parses the sample back.
    pub fn from_json(v: &Json) -> Result<DaemonTelemetry, JsonError> {
        Ok(DaemonTelemetry {
            process: v.get("process")?.as_usize()?,
            events_seen: v.get("events_seen")?.as_u64()?,
            live_views: v.get("live_views")?.as_u64()?,
            tokens_sent: v.get("tokens_sent")?.as_u64()?,
            tokens_received: v.get("tokens_received")?.as_u64()?,
            queued_frames: v.get("queued_frames")?.as_u64()?,
            peak_rss_bytes: v.get("peak_rss_bytes")?.as_u64()?,
        })
    }
}

/// A daemon emits one [`WireMsg::Telemetry`] sample each time `events_seen`
/// crosses a multiple of this count (and one final sample at finish time).
pub const TELEMETRY_EVERY_EVENTS: u64 = 16;

/// Every frame of the deploy protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Orchestrator → daemon: configuration + mesh topology.  `property` and
    /// `options` are opaque payloads decoded by the daemon via `dlrv-core`.
    Hello {
        /// The daemon's process index.
        process: usize,
        /// Total number of monitor processes.
        n_processes: usize,
        /// Property payload (a `dlrv_core::results::property_to_json` document).
        property: Json,
        /// Monitor options payload (`dlrv_core::results::options_to_json`).
        options: Json,
        /// Initial global state, as raw [`Assignment`] bits.
        initial_state: u64,
        /// Fault spec applied to this daemon's *outgoing* peer channels.
        fault: Option<FaultSpec>,
        /// Listen endpoints of all daemons, indexed by process.
        peers: Vec<String>,
        /// True when the orchestrator will send binary event frames and the
        /// daemon should encode its peer monitor frames in the binary format
        /// too.  Travels as an additive `"wire":"binary"` field: peers that
        /// predate it read plain JSON hellos unchanged, and a missing field
        /// decodes as `false` — so JSON stays the bootstrap format and the
        /// binary path is negotiated per connection, never assumed.
        binary_wire: bool,
    },
    /// Daemon → orchestrator: mesh established, ready for events.
    HelloOk {
        /// The daemon's process index.
        process: usize,
    },
    /// Orchestrator → daemon: one program event of the daemon's process.
    Event {
        /// The event, exactly as a co-located monitor would observe it.
        event: Event,
    },
    /// Orchestrator → daemon: report transport counters.
    Status,
    /// Daemon → orchestrator: the counters.
    StatusOk(DaemonStatus),
    /// Orchestrator → daemon: end-of-trace at simulated time `time` — run local
    /// termination and emit the resulting messages.
    Finish {
        /// The global last event timestamp (every daemon terminates at the same
        /// simulated time, mirroring `FeedSession::finish`).
        time: f64,
    },
    /// Daemon → orchestrator: termination processed.
    FinishOk,
    /// Orchestrator → daemon: report metrics.
    Report,
    /// Daemon → orchestrator: the end-of-run report.
    ReportOk(DaemonReport),
    /// Orchestrator → daemon: drain and exit 0.
    Shutdown,
    /// Daemon → orchestrator: about to exit.
    ShutdownOk,
    /// Daemon → orchestrator: unsolicited live progress, emitted on the control
    /// connection every `TELEMETRY_EVERY_EVENTS` observed events (an event-count
    /// cadence, not a timer, so runs stay deterministic).  The orchestrator
    /// folds these into per-daemon timelines in the run artifact directory;
    /// peers that never send them are simply quiet (the frame is additive).
    Telemetry(DaemonTelemetry),
    /// Daemon → orchestrator: fatal protocol error (the daemon exits non-zero).
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Daemon → daemon: identifies the dialing peer.
    PeerHello {
        /// The dialing daemon's process index.
        from: usize,
    },
    /// Daemon → daemon: one monitor message at simulated time `time`.
    Monitor {
        /// The sending process.
        from: usize,
        /// Per-channel sequence number, assigned by the sender *before* the fault
        /// shim.  Receivers use it to suppress duplicated frames: without the
        /// suppression, every duplicate provokes monitor responses that are
        /// themselves duplicated, and at `dup=1` the traffic amplifies
        /// geometrically per token hop instead of quiescing.
        seq: u64,
        /// The simulated timestamp of the activation that produced the message.
        time: f64,
        /// The payload.
        msg: MonitorMsg,
    },
}

impl WireMsg {
    /// Serializes the message as a tagged object (the frame payload).
    pub fn to_json(&self) -> Json {
        match self {
            WireMsg::Hello {
                process,
                n_processes,
                property,
                options,
                initial_state,
                fault,
                peers,
                binary_wire,
            } => object([
                ("type", Json::from("hello")),
                ("process", Json::from(*process)),
                ("n_processes", Json::from(*n_processes)),
                ("property", property.clone()),
                ("options", options.clone()),
                ("initial_state", Json::from(*initial_state)),
                (
                    "fault",
                    fault.as_ref().map_or(Json::Null, FaultSpec::to_json),
                ),
                (
                    "peers",
                    Json::Array(peers.iter().map(|p| Json::from(p.as_str())).collect()),
                ),
                (
                    "wire",
                    Json::from(if *binary_wire { "binary" } else { "json" }),
                ),
            ]),
            WireMsg::HelloOk { process } => object([
                ("type", Json::from("hello_ok")),
                ("process", Json::from(*process)),
            ]),
            WireMsg::Event { event } => object([
                ("type", Json::from("event")),
                ("event", event_to_json(event)),
            ]),
            WireMsg::Status => object([("type", Json::from("status"))]),
            WireMsg::StatusOk(status) => object([
                ("type", Json::from("status_ok")),
                ("status", status.to_json()),
            ]),
            WireMsg::Finish { time } => object([
                ("type", Json::from("finish")),
                ("time", Json::from(*time)),
            ]),
            WireMsg::FinishOk => object([("type", Json::from("finish_ok"))]),
            WireMsg::Report => object([("type", Json::from("report"))]),
            WireMsg::ReportOk(report) => object([
                ("type", Json::from("report_ok")),
                ("report", report.to_json()),
            ]),
            WireMsg::Shutdown => object([("type", Json::from("shutdown"))]),
            WireMsg::ShutdownOk => object([("type", Json::from("shutdown_ok"))]),
            WireMsg::Telemetry(sample) => object([
                ("type", Json::from("telemetry")),
                ("sample", sample.to_json()),
            ]),
            WireMsg::Error { message } => object([
                ("type", Json::from("error")),
                ("message", Json::from(message.as_str())),
            ]),
            WireMsg::PeerHello { from } => object([
                ("type", Json::from("peer_hello")),
                ("from", Json::from(*from)),
            ]),
            WireMsg::Monitor {
                from,
                seq,
                time,
                msg,
            } => object([
                ("type", Json::from("monitor")),
                ("from", Json::from(*from)),
                ("seq", Json::from(*seq)),
                ("time", Json::from(*time)),
                ("msg", monitor_msg_to_json(msg)),
            ]),
        }
    }

    /// Parses a message back from its [`to_json`](Self::to_json) form.
    pub fn from_json(v: &Json) -> Result<WireMsg, JsonError> {
        match v.get("type")?.as_str()? {
            "hello" => Ok(WireMsg::Hello {
                process: v.get("process")?.as_usize()?,
                n_processes: v.get("n_processes")?.as_usize()?,
                property: v.get("property")?.clone(),
                options: v.get("options")?.clone(),
                initial_state: v.get("initial_state")?.as_u64()?,
                fault: match v.get("fault")? {
                    Json::Null => None,
                    spec => Some(FaultSpec::from_json(spec)?),
                },
                peers: v
                    .get("peers")?
                    .as_array()?
                    .iter()
                    .map(|p| Ok(p.as_str()?.to_string()))
                    .collect::<Result<_, JsonError>>()?,
                // Additive: hellos written before the binary wire existed carry
                // no `wire` field, and their senders speak JSON only.
                binary_wire: match v.get_opt("wire")? {
                    None => false,
                    Some(w) => w.as_str()? == "binary",
                },
            }),
            "hello_ok" => Ok(WireMsg::HelloOk {
                process: v.get("process")?.as_usize()?,
            }),
            "event" => Ok(WireMsg::Event {
                event: event_from_json(v.get("event")?)?,
            }),
            "status" => Ok(WireMsg::Status),
            "status_ok" => Ok(WireMsg::StatusOk(DaemonStatus::from_json(v.get("status")?)?)),
            "finish" => Ok(WireMsg::Finish {
                time: v.get("time")?.as_f64()?,
            }),
            "finish_ok" => Ok(WireMsg::FinishOk),
            "report" => Ok(WireMsg::Report),
            "report_ok" => Ok(WireMsg::ReportOk(DaemonReport::from_json(v.get("report")?)?)),
            "shutdown" => Ok(WireMsg::Shutdown),
            "shutdown_ok" => Ok(WireMsg::ShutdownOk),
            "telemetry" => Ok(WireMsg::Telemetry(DaemonTelemetry::from_json(
                v.get("sample")?,
            )?)),
            "error" => Ok(WireMsg::Error {
                message: v.get("message")?.as_str()?.to_string(),
            }),
            "peer_hello" => Ok(WireMsg::PeerHello {
                from: v.get("from")?.as_usize()?,
            }),
            "monitor" => Ok(WireMsg::Monitor {
                from: v.get("from")?.as_usize()?,
                seq: v.get("seq")?.as_u64()?,
                time: v.get("time")?.as_f64()?,
                msg: monitor_msg_from_json(v.get("msg")?)?,
            }),
            other => Err(JsonError::msg(format!("unknown wire message `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary frame format for the two per-event hot messages.
//
// Control-plane traffic (hello, status, report, …) is a handful of frames per
// run; only `event` and `monitor` frames scale with the trace, so only they get
// a binary body.  A binary deploy frame reuses the `dlrv-stream` frame header —
// 4-byte big-endian length with [`BINARY_FRAME_FLAG`] in bit 31 — so one
// [`crate::conn::FramedConn`] decodes JSON and binary frames from the same
// connection, frame by frame.  Payload grammar (unsigned LEB128 varints unless
// noted; `vc` and events exactly as in `dlrv_stream`'s binary codec):
//
//   payload    = 0x01 event | 0x02 monitor
//   event      = event-binary                      -- dlrv_stream::event_to_binary
//   monitor    = from seq time(8-byte LE f64) monmsg
//   monmsg     = 0x00 token | 0x01 len token* | 0x02 process last_sn
//   token      = parent origin_state parent_gv vc n-transitions transition* next_p next_e
//   transition = id vc(gcut) vc(depend) gstate n-conjuncts conjunct-byte* next_p next_e eval-byte
//   conjunct   = 0 not-involved | 1 unset | 2 true | 3 false
//   eval       = 0 unset | 1 enabled | 2 disabled
//
// No intern table, so the codec is stateless: the fault shim may drop, delay,
// duplicate or reorder whole frames without desynchronizing the decoder.
// ---------------------------------------------------------------------------

const NET_EVENT: u8 = 1;
const NET_MONITOR: u8 = 2;

const MSG_TOKEN: u8 = 0;
const MSG_BATCH: u8 = 1;
const MSG_TERMINATED: u8 = 2;

fn truncated(what: &str) -> NetError {
    NetError::msg(format!("binary wire frame truncated or corrupt at {what}"))
}

fn read_uv(buf: &[u8], pos: &mut usize, what: &str) -> Result<u64, NetError> {
    varint::read_u64(buf, pos).ok_or_else(|| truncated(what))
}

fn read_usize(buf: &[u8], pos: &mut usize, what: &str) -> Result<usize, NetError> {
    usize::try_from(read_uv(buf, pos, what)?).map_err(|_| truncated(what))
}

fn read_f64(buf: &[u8], pos: &mut usize, what: &str) -> Result<f64, NetError> {
    let bytes: [u8; 8] = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| truncated(what))?
        .try_into()
        .expect("slice of length 8");
    *pos += 8;
    Ok(f64::from_bits(u64::from_le_bytes(bytes)))
}

fn vc_to_binary(vc: &VectorClock, out: &mut Vec<u8>) {
    varint::write_u64(out, vc.len() as u64);
    for &entry in vc.entries() {
        varint::write_u64(out, entry);
    }
}

fn vc_from_binary(buf: &[u8], pos: &mut usize, what: &str) -> Result<VectorClock, NetError> {
    let n = read_usize(buf, pos, what)?;
    if n > buf.len().saturating_sub(*pos) + 1 {
        // Entries take at least one byte each; a longer length prefix is
        // corruption, not a request to allocate.
        return Err(truncated(what));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(read_uv(buf, pos, what)?);
    }
    Ok(VectorClock::from_entries(entries))
}

fn transition_to_binary(t: &TokenTransition, out: &mut Vec<u8>) {
    varint::write_u64(out, t.transition_id as u64);
    vc_to_binary(&t.gcut, out);
    vc_to_binary(&t.depend, out);
    varint::write_u64(out, t.gstate.0);
    varint::write_u64(out, t.conjuncts.len() as u64);
    for c in &t.conjuncts {
        out.push(match c {
            ConjunctEval::NotInvolved => 0,
            ConjunctEval::Unset => 1,
            ConjunctEval::True => 2,
            ConjunctEval::False => 3,
        });
    }
    varint::write_u64(out, t.next_target_process as u64);
    varint::write_u64(out, t.next_target_event);
    out.push(match t.eval {
        EvalState::Unset => 0,
        EvalState::Enabled => 1,
        EvalState::Disabled => 2,
    });
}

fn transition_from_binary(buf: &[u8], pos: &mut usize) -> Result<TokenTransition, NetError> {
    let transition_id = read_usize(buf, pos, "transition id")?;
    let gcut = vc_from_binary(buf, pos, "transition gcut")?;
    let depend = vc_from_binary(buf, pos, "transition depend")?;
    let gstate = Assignment(read_uv(buf, pos, "transition gstate")?);
    let n = read_usize(buf, pos, "conjunct count")?;
    if n > buf.len().saturating_sub(*pos) {
        return Err(truncated("conjunct count"));
    }
    let mut conjuncts = Vec::with_capacity(n);
    for _ in 0..n {
        let byte = *buf.get(*pos).ok_or_else(|| truncated("conjunct"))?;
        *pos += 1;
        conjuncts.push(match byte {
            0 => ConjunctEval::NotInvolved,
            1 => ConjunctEval::Unset,
            2 => ConjunctEval::True,
            3 => ConjunctEval::False,
            other => return Err(truncated(&format!("conjunct byte {other}"))),
        });
    }
    let next_target_process = read_usize(buf, pos, "transition next_p")?;
    let next_target_event = read_uv(buf, pos, "transition next_e")?;
    let eval_byte = *buf.get(*pos).ok_or_else(|| truncated("eval state"))?;
    *pos += 1;
    let eval = match eval_byte {
        0 => EvalState::Unset,
        1 => EvalState::Enabled,
        2 => EvalState::Disabled,
        other => return Err(truncated(&format!("eval byte {other}"))),
    };
    Ok(TokenTransition {
        transition_id,
        gcut,
        depend,
        gstate,
        conjuncts,
        next_target_process,
        next_target_event,
        eval,
    })
}

fn token_to_binary(t: &Token, out: &mut Vec<u8>) {
    varint::write_u64(out, t.property as u64);
    varint::write_u64(out, t.parent as u64);
    varint::write_u64(out, t.origin_state as u64);
    varint::write_u64(out, t.parent_gv);
    vc_to_binary(&t.parent_event_vc, out);
    varint::write_u64(out, t.transitions.len() as u64);
    for tran in &t.transitions {
        transition_to_binary(tran, out);
    }
    varint::write_u64(out, t.next_target_process as u64);
    varint::write_u64(out, t.next_target_event);
}

fn token_from_binary(buf: &[u8], pos: &mut usize) -> Result<Token, NetError> {
    let property = read_uv(buf, pos, "token property")? as u32;
    let parent = read_usize(buf, pos, "token parent")?;
    let origin_state = read_usize(buf, pos, "token origin_state")?;
    let parent_gv = read_uv(buf, pos, "token parent_gv")?;
    let parent_event_vc = Arc::new(vc_from_binary(buf, pos, "token parent_vc")?);
    let n = read_usize(buf, pos, "transition count")?;
    if n > buf.len().saturating_sub(*pos) {
        return Err(truncated("transition count"));
    }
    let mut transitions = Vec::with_capacity(n);
    for _ in 0..n {
        transitions.push(transition_from_binary(buf, pos)?);
    }
    Ok(Token {
        property,
        parent,
        origin_state,
        parent_gv,
        parent_event_vc,
        transitions,
        next_target_process: read_usize(buf, pos, "token next_p")?,
        next_target_event: read_uv(buf, pos, "token next_e")?,
    })
}

fn monitor_msg_to_binary(msg: &MonitorMsg, out: &mut Vec<u8>) {
    match msg {
        MonitorMsg::Token(t) => {
            out.push(MSG_TOKEN);
            token_to_binary(t, out);
        }
        MonitorMsg::Batch(tokens) => {
            out.push(MSG_BATCH);
            varint::write_u64(out, tokens.len() as u64);
            for t in tokens {
                token_to_binary(t, out);
            }
        }
        MonitorMsg::Terminated { process, last_sn } => {
            out.push(MSG_TERMINATED);
            varint::write_u64(out, *process as u64);
            varint::write_u64(out, *last_sn);
        }
    }
}

fn monitor_msg_from_binary(buf: &[u8], pos: &mut usize) -> Result<MonitorMsg, NetError> {
    let tag = *buf.get(*pos).ok_or_else(|| truncated("monitor msg tag"))?;
    *pos += 1;
    match tag {
        MSG_TOKEN => Ok(MonitorMsg::Token(token_from_binary(buf, pos)?)),
        MSG_BATCH => {
            let n = read_usize(buf, pos, "batch length")?;
            if n > buf.len().saturating_sub(*pos) {
                return Err(truncated("batch length"));
            }
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                tokens.push(token_from_binary(buf, pos)?);
            }
            Ok(MonitorMsg::Batch(tokens))
        }
        MSG_TERMINATED => Ok(MonitorMsg::Terminated {
            process: read_usize(buf, pos, "terminated process")?,
            last_sn: read_uv(buf, pos, "terminated last_sn")?,
        }),
        other => Err(truncated(&format!("monitor msg tag {other}"))),
    }
}

/// Encodes one deploy frame (header + payload) for `msg`.
///
/// With `binary` set, `event` and `monitor` messages — the only frame types
/// whose count scales with the trace — are emitted in the compact binary format
/// (bit 31 of the header set); every other message, and everything when `binary`
/// is off, travels as self-describing JSON.  [`decode_wire_frame`] dispatches on
/// the header bit, so mixed connections always decode.
pub fn encode_wire_frame(msg: &WireMsg, binary: bool) -> Vec<u8> {
    if binary {
        let body: Option<Vec<u8>> = match msg {
            WireMsg::Event { event } => {
                let mut body = vec![NET_EVENT];
                event_to_binary(event, &mut body);
                Some(body)
            }
            WireMsg::Monitor {
                from,
                seq,
                time,
                msg,
            } => {
                let mut body = vec![NET_MONITOR];
                varint::write_u64(&mut body, *from as u64);
                varint::write_u64(&mut body, *seq);
                body.extend_from_slice(&time.to_bits().to_le_bytes());
                monitor_msg_to_binary(msg, &mut body);
                Some(body)
            }
            _ => None,
        };
        if let Some(body) = body {
            assert!(body.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
            let mut out = Vec::with_capacity(4 + body.len());
            out.extend_from_slice(&((body.len() as u32) | BINARY_FRAME_FLAG).to_be_bytes());
            out.extend_from_slice(&body);
            return out;
        }
    }
    crate::conn::encode_json_frame(&msg.to_json())
}

/// Decodes one deploy frame payload; `binary` is the header's bit-31 flag.
pub fn decode_wire_frame(binary: bool, payload: &[u8]) -> Result<WireMsg, NetError> {
    if !binary {
        let text = std::str::from_utf8(payload)
            .map_err(|_| NetError::msg("frame payload is not UTF-8"))?;
        return Ok(WireMsg::from_json(&Json::parse(text)?)?);
    }
    let mut pos = 0usize;
    let tag = *payload.get(pos).ok_or_else(|| truncated("frame tag"))?;
    pos += 1;
    let msg = match tag {
        NET_EVENT => WireMsg::Event {
            event: event_from_binary(payload, &mut pos)
                .map_err(|e| NetError::msg(e.message))?,
        },
        NET_MONITOR => {
            let from = read_usize(payload, &mut pos, "monitor from")?;
            let seq = read_uv(payload, &mut pos, "monitor seq")?;
            let time = read_f64(payload, &mut pos, "monitor time")?;
            WireMsg::Monitor {
                from,
                seq,
                time,
                msg: monitor_msg_from_binary(payload, &mut pos)?,
            }
        }
        other => return Err(truncated(&format!("frame tag {other}"))),
    };
    if pos != payload.len() {
        return Err(NetError::msg(format!(
            "binary wire frame has {} trailing payload bytes",
            payload.len() - pos
        )));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_vclock::EventKind;
    use std::collections::BTreeSet;

    fn sample_token(seq: u64) -> Token {
        Token {
            property: (seq % 3) as u32,
            parent: 1,
            origin_state: 3,
            parent_gv: 40 + seq,
            parent_event_vc: Arc::new(VectorClock::from_entries(vec![2, 5, 0])),
            transitions: vec![
                TokenTransition {
                    transition_id: 7,
                    gcut: VectorClock::from_entries(vec![1, 2, 0]),
                    depend: VectorClock::from_entries(vec![1, 2, 3]),
                    gstate: Assignment(0b110),
                    conjuncts: vec![ConjunctEval::True, ConjunctEval::NotInvolved, ConjunctEval::Unset],
                    next_target_process: 2,
                    next_target_event: 4,
                    eval: EvalState::Unset,
                },
                TokenTransition {
                    transition_id: 9,
                    gcut: VectorClock::from_entries(vec![0, 0, 0]),
                    depend: VectorClock::from_entries(vec![0, 0, 0]),
                    gstate: Assignment::ALL_FALSE,
                    conjuncts: vec![ConjunctEval::False, ConjunctEval::Unset, ConjunctEval::True],
                    next_target_process: 0,
                    next_target_event: 1,
                    eval: EvalState::Disabled,
                },
            ],
            next_target_process: 2,
            next_target_event: 4,
        }
    }

    #[test]
    fn monitor_messages_round_trip() {
        for msg in [
            MonitorMsg::Token(sample_token(0)),
            MonitorMsg::Batch(vec![sample_token(1), sample_token(2)]),
            MonitorMsg::Terminated {
                process: 2,
                last_sn: 17,
            },
        ] {
            let text = monitor_msg_to_json(&msg).to_string_compact();
            let back =
                monitor_msg_from_json(&Json::parse(&text).expect("parse")).expect("decode");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_wire_message_round_trips() {
        let event = Event {
            process: 0,
            kind: EventKind::Broadcast { msg_id: 5 },
            sn: 2,
            vc: VectorClock::from_entries(vec![2, 0, 1]),
            state: Assignment(0b01),
            time: 6.5,
        };
        let mut detected = BTreeSet::new();
        detected.insert(dlrv_ltl::Verdict::True);
        let metrics = MonitorMetrics {
            tokens_sent: 4,
            tokens_received: 3,
            global_views_created: 7,
            last_activity_time: 9.25,
            detected_final_verdicts: detected,
            ..MonitorMetrics::default()
        };
        let messages = vec![
            WireMsg::Hello {
                process: 1,
                n_processes: 3,
                property: Json::from("B"),
                options: object([("aggregate_tokens", Json::from(true))]),
                initial_state: 0b101,
                fault: Some(FaultSpec::parse("drop=0.5,seed=3").expect("spec")),
                peers: vec![
                    "tcp:127.0.0.1:4000".to_string(),
                    "tcp:127.0.0.1:4001".to_string(),
                    "tcp:127.0.0.1:4002".to_string(),
                ],
                binary_wire: true,
            },
            WireMsg::Hello {
                process: 0,
                n_processes: 2,
                property: Json::from("A"),
                options: Json::Null,
                initial_state: 0,
                fault: None,
                peers: vec![],
                binary_wire: false,
            },
            WireMsg::HelloOk { process: 1 },
            WireMsg::Event { event },
            WireMsg::Status,
            WireMsg::StatusOk(DaemonStatus {
                process: 1,
                events_seen: 12,
                sent: vec![3, 0, 9],
                received: vec![2, 0, 4],
                pending: 1,
                dropped: 2,
            }),
            WireMsg::Finish { time: 61.75 },
            WireMsg::FinishOk,
            WireMsg::Report,
            WireMsg::ReportOk(DaemonReport {
                process: 1,
                metrics,
                logical_monitor_msgs: 15,
                fault_stats: FaultStats {
                    passed: 13,
                    dropped: 2,
                    duplicated: 0,
                    reordered: 1,
                },
                peak_rss_bytes: 7 << 20,
            }),
            WireMsg::Shutdown,
            WireMsg::ShutdownOk,
            WireMsg::Telemetry(DaemonTelemetry {
                process: 2,
                events_seen: 48,
                live_views: 5,
                tokens_sent: 17,
                tokens_received: 13,
                queued_frames: 2,
                peak_rss_bytes: 9 << 20,
            }),
            WireMsg::Error {
                message: "boom".to_string(),
            },
            WireMsg::PeerHello { from: 2 },
            WireMsg::Monitor {
                from: 0,
                seq: 11,
                time: 3.5,
                msg: MonitorMsg::Token(sample_token(3)),
            },
        ];
        for msg in messages {
            let text = msg.to_json().to_string_compact();
            let back = WireMsg::from_json(&Json::parse(&text).expect("parse")).expect("decode");
            assert_eq!(back, msg);

            // The frame codec must round-trip every message in both modes: the
            // hot frames through their binary bodies, everything else as JSON
            // regardless of the connection's negotiated format.
            for binary in [false, true] {
                let frame = encode_wire_frame(&msg, binary);
                let header = u32::from_be_bytes(frame[..4].try_into().expect("header"));
                let is_binary = header & BINARY_FRAME_FLAG != 0;
                let hot = matches!(msg, WireMsg::Event { .. } | WireMsg::Monitor { .. });
                assert_eq!(is_binary, binary && hot, "only hot frames go binary");
                let back = decode_wire_frame(is_binary, &frame[4..]).expect("decode frame");
                assert_eq!(back, msg);
            }
        }
    }

    #[test]
    fn hello_without_a_wire_field_decodes_as_json_mode() {
        // A frame written before the negotiation field existed.
        let old = object([
            ("type", Json::from("hello")),
            ("process", Json::from(0usize)),
            ("n_processes", Json::from(1usize)),
            ("property", Json::from("A")),
            ("options", Json::Null),
            ("initial_state", Json::from(0u64)),
            ("fault", Json::Null),
            ("peers", Json::Array(vec![Json::from("tcp:127.0.0.1:1")])),
        ]);
        match WireMsg::from_json(&old).expect("decode") {
            WireMsg::Hello { binary_wire, .. } => assert!(!binary_wire),
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn binary_monitor_frames_are_much_smaller_than_json() {
        let msg = WireMsg::Monitor {
            from: 0,
            seq: 11,
            time: 3.5,
            msg: MonitorMsg::Batch(vec![sample_token(1), sample_token(2), sample_token(3)]),
        };
        let json = encode_wire_frame(&msg, false);
        let binary = encode_wire_frame(&msg, true);
        assert!(
            binary.len() < json.len() / 3,
            "binary ({}) should be well under a third of JSON ({})",
            binary.len(),
            json.len()
        );
    }

    #[test]
    fn corrupt_binary_frames_are_rejected() {
        // Unknown frame tag.
        assert!(decode_wire_frame(true, &[9]).is_err());
        // Truncation at every prefix of a valid monitor frame.
        let msg = WireMsg::Monitor {
            from: 1,
            seq: 2,
            time: 0.5,
            msg: MonitorMsg::Token(sample_token(0)),
        };
        let frame = encode_wire_frame(&msg, true);
        let payload = &frame[4..];
        for cut in 0..payload.len() {
            assert!(
                decode_wire_frame(true, &payload[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing garbage after a complete message.
        let mut padded = payload.to_vec();
        padded.push(0);
        assert!(decode_wire_frame(true, &padded).is_err());
    }
}
