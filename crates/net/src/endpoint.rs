//! Network endpoints: parsing, listening and connecting over TCP or Unix sockets.
//!
//! An [`Endpoint`] is written `tcp:HOST:PORT` or `unix:PATH` everywhere the
//! repository names a socket (the `monitord --listen` flag, the deploy
//! orchestrator's peer lists, test fixtures).  `tcp:127.0.0.1:0` asks the kernel
//! for an ephemeral port; the bound [`Listener`] reports the actual endpoint via
//! [`Listener::local_endpoint`], which the daemon prints as its `LISTEN` line.

use std::fmt;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A parseable socket address: TCP or Unix-domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// `tcp:HOST:PORT`.
    Tcp(String),
    /// `unix:PATH`.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:HOST:PORT` or `unix:PATH`.
    pub fn parse(text: &str) -> Result<Endpoint, String> {
        if let Some(addr) = text.strip_prefix("tcp:") {
            if addr.rsplit_once(':').is_none() {
                return Err(format!("tcp endpoint `{text}` must be tcp:HOST:PORT"));
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(format!("unix endpoint `{text}` must name a path"));
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else {
            Err(format!(
                "endpoint `{text}` must start with `tcp:` or `unix:`"
            ))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A connected stream socket (always non-blocking once established).
#[derive(Debug)]
pub enum Socket {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Socket {
    /// Connects to `endpoint` (blocking connect, then switches the socket to
    /// non-blocking mode).  TCP connections disable Nagle: token frames are small
    /// and latency-bound.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Socket> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                stream.set_nonblocking(true)?;
                Ok(Socket::Tcp(stream))
            }
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                stream.set_nonblocking(true)?;
                Ok(Socket::Unix(stream))
            }
        }
    }

    /// The raw descriptor, for reactor registration.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            Socket::Tcp(s) => s.as_raw_fd(),
            Socket::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Non-blocking read; `Ok(0)` is end-of-stream.
    pub fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Socket::Tcp(s) => io::Read::read(s, buf),
            Socket::Unix(s) => io::Read::read(s, buf),
        }
    }

    /// Non-blocking write.
    pub fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Socket::Tcp(s) => io::Write::write(s, buf),
            Socket::Unix(s) => io::Write::write(s, buf),
        }
    }
}

/// A non-blocking listening socket over either transport.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener (owns its socket file; removed on drop).
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `endpoint` and switches the listener to non-blocking mode.
    ///
    /// For Unix endpoints a leftover socket file from a crashed daemon is cleaned
    /// up automatically: if the path exists but nothing accepts connections on it,
    /// the stale file is removed and the bind retried.  A path with a *live*
    /// listener fails with [`io::ErrorKind::AddrInUse`].
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            Endpoint::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        // Distinguish a live daemon from a stale socket file: only
                        // a connect refusal proves nobody is accepting.
                        match UnixStream::connect(path) {
                            Ok(_) => return Err(e),
                            Err(probe) if probe.kind() == io::ErrorKind::ConnectionRefused => {
                                std::fs::remove_file(path)?;
                                UnixListener::bind(path)?
                            }
                            Err(_) => return Err(e),
                        }
                    }
                    Err(e) => return Err(e),
                };
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener, path.clone()))
            }
        }
    }

    /// The endpoint actually bound (resolves `tcp:…:0` to the kernel-chosen port).
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }

    /// Accepts one pending connection, or `None` when no connection is pending.
    pub fn accept(&self) -> io::Result<Option<Socket>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true)?;
                    stream.set_nonblocking(true)?;
                    Ok(Some(Socket::Tcp(stream)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    Ok(Some(Socket::Unix(stream)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    /// The raw descriptor, for reactor registration.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Blocking connect with retry until `deadline`, for racing a just-spawned
/// listener: `ConnectionRefused`/`NotFound` are retried, anything else fails
/// immediately.
pub fn connect_with_retry(endpoint: &Endpoint, timeout: Duration) -> io::Result<Socket> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        match Socket::connect(endpoint) {
            Ok(sock) => return Ok(sock),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused | io::ErrorKind::NotFound
                ) && std::time::Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_display() {
        let tcp = Endpoint::parse("tcp:127.0.0.1:9000").expect("tcp");
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:9000".to_string()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:9000");
        let unix = Endpoint::parse("unix:/tmp/x.sock").expect("unix");
        assert_eq!(unix.to_string(), "unix:/tmp/x.sock");
        assert!(Endpoint::parse("udp:1.2.3.4:1").is_err());
        assert!(Endpoint::parse("tcp:no-port").is_err());
        assert!(Endpoint::parse("unix:").is_err());
    }

    #[test]
    fn tcp_port_zero_resolves_to_a_real_port() {
        let listener =
            Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").expect("parse")).expect("bind");
        let local = listener.local_endpoint().expect("local");
        match &local {
            Endpoint::Tcp(addr) => assert!(!addr.ends_with(":0"), "got {addr}"),
            other => panic!("expected tcp endpoint, got {other}"),
        }
        // A client can actually connect to the resolved endpoint.
        let sock = connect_with_retry(&local, Duration::from_secs(2)).expect("connect");
        assert!(sock.raw_fd() >= 0);
        assert!(listener.accept().expect("accept").is_some());
    }

    #[test]
    fn stale_unix_sockets_are_cleaned_up_and_live_ones_rejected() {
        let dir = std::env::temp_dir().join(format!("dlrv-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("stale.sock");
        let ep = Endpoint::Unix(path.clone());

        // A stale socket file (no listener behind it) must be swept aside.
        {
            let l = UnixListener::bind(&path).expect("first bind");
            drop(l); // file remains, nobody accepts
        }
        assert!(path.exists(), "socket file must be left behind");
        let reborn = Listener::bind(&ep).expect("rebind over stale socket");

        // While `reborn` is alive the endpoint is genuinely busy.
        let err = Listener::bind(&ep).expect_err("double bind");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);

        drop(reborn);
        assert!(!path.exists(), "listener drop must remove its socket file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
