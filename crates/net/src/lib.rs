//! Real-socket transport for decentralized monitors.
//!
//! `dlrv-net` turns the `dlrv-stream` wire codec into a true multi-process
//! transport: TCP/Unix [endpoints](endpoint), framed non-blocking
//! [connections](conn), a vendored epoll [reactor], a deterministic
//! seeded [fault-injection shim](fault) and the [deploy wire protocol](wire)
//! spoken between the orchestrator (`dlrv-core`'s `deploy` module), the
//! `monitord` daemons and their peer mesh.
//!
//! Layering: this crate sits below `dlrv-core` (which orchestrates deploy
//! scenarios) and beside `dlrv-stream` (whose framing and event codec it
//! reuses).  Property and option payloads travel as opaque [`dlrv_json::Json`]
//! so the spec pipeline stays in `dlrv-core`.

#![forbid(unsafe_code)]

pub mod conn;
pub mod endpoint;
pub mod fault;
pub mod reactor;
pub mod wire;

pub use conn::{encode_json_frame, FramedConn, JsonFrameDecoder, NetError};
pub use endpoint::{connect_with_retry, Endpoint, Listener, Socket};
pub use fault::{FaultInjector, FaultSpec, FaultStats};
pub use reactor::{IoEvent, Interest, Reactor};
pub use wire::{
    decode_wire_frame, encode_wire_frame, DaemonReport, DaemonStatus, DaemonTelemetry, WireMsg,
    TELEMETRY_EVERY_EVENTS,
};
