//! The fault-injection shim: deterministic drop / delay / duplicate / reorder on a
//! token channel.
//!
//! The paper assumes reliable FIFO channels between monitors.  The shim wraps one
//! directed daemon-to-daemon channel and relaxes exactly one or more of those
//! guarantees, so the `deploy` fault matrix can pin where soundness survives:
//!
//! * `drop=p` — each frame vanishes with probability `p` (reliability broken),
//! * `delay=ms` — every surviving frame is released `ms` milliseconds later
//!   (timing relaxed; ordering kept),
//! * `dup=p` — each frame is sent twice with probability `p` (at-most-once
//!   delivery broken),
//! * `reorder=p` — a frame is held back with probability `p` and released *after*
//!   the next frame on the same channel (FIFO broken by one-slot swaps).
//!
//! All decisions come from a SplitMix64 generator seeded per channel from the
//! spec's seed, so a run's fault pattern is a pure function of the channel's send
//! sequence — never of wall-clock time.  A held frame that sees no successor is
//! released unswapped when the daemon answers a status poll (the quiescence
//! barrier would otherwise never terminate); only actual swaps count as
//! `reordered` in [`FaultStats`].

use dlrv_json::{object, Json, JsonError};
use std::fmt;

/// Parsed `--fault drop=p,delay=ms,dup=p,reorder=p[,seed=n]` specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-frame drop probability in `[0, 1]`.
    pub drop: f64,
    /// Fixed extra latency per frame, milliseconds.
    pub delay_ms: f64,
    /// Per-frame duplication probability in `[0, 1]`.
    pub dup: f64,
    /// Per-frame hold-back (one-slot reorder) probability in `[0, 1]`.
    pub reorder: f64,
    /// Base seed; each channel derives its own stream from it.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            drop: 0.0,
            delay_ms: 0.0,
            dup: 0.0,
            reorder: 0.0,
            seed: 1,
        }
    }
}

impl FaultSpec {
    /// Parses a comma-separated `key=value` list; unknown keys and out-of-range
    /// probabilities are rejected.  The empty string is the no-fault spec.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for part in text.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{part}` must be key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let prob = |what: &str| -> Result<f64, String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("{what} `{value}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{what} `{value}` must be within [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "drop" => spec.drop = prob("drop probability")?,
                "dup" => spec.dup = prob("dup probability")?,
                "reorder" => spec.reorder = prob("reorder probability")?,
                "delay" => {
                    let ms: f64 = value
                        .parse()
                        .map_err(|_| format!("delay `{value}` is not a number"))?;
                    if !(ms >= 0.0 && ms.is_finite()) {
                        return Err(format!("delay `{value}` must be a finite non-negative ms"));
                    }
                    spec.delay_ms = ms;
                }
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|_| format!("seed `{value}` is not an integer"))?;
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(spec)
    }

    /// True when the spec injects nothing (the identity shim).
    pub fn is_noop(&self) -> bool {
        self.drop == 0.0 && self.delay_ms == 0.0 && self.dup == 0.0 && self.reorder == 0.0
    }

    /// Serializes the spec for the results schema and the daemon handshake.
    pub fn to_json(&self) -> Json {
        object([
            ("drop", Json::from(self.drop)),
            ("delay_ms", Json::from(self.delay_ms)),
            ("dup", Json::from(self.dup)),
            ("reorder", Json::from(self.reorder)),
            ("seed", Json::from(self.seed)),
        ])
    }

    /// Parses the spec back from its [`to_json`](Self::to_json) form.
    pub fn from_json(v: &Json) -> Result<FaultSpec, JsonError> {
        Ok(FaultSpec {
            drop: v.get("drop")?.as_f64()?,
            delay_ms: v.get("delay_ms")?.as_f64()?,
            dup: v.get("dup")?.as_f64()?,
            reorder: v.get("reorder")?.as_f64()?,
            seed: v.get("seed")?.as_u64()?,
        })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drop={},delay={},dup={},reorder={},seed={}",
            self.drop, self.delay_ms, self.dup, self.reorder, self.seed
        )
    }
}

/// What the shim did to a channel's traffic so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames that reached the wire (duplicates counted individually).
    pub passed: u64,
    /// Frames silently discarded.
    pub dropped: u64,
    /// Frames sent twice (counted once per duplicated original).
    pub duplicated: u64,
    /// Actual one-slot swaps (a held frame overtaken by its successor).
    pub reordered: u64,
}

impl FaultStats {
    /// Component-wise sum.
    pub fn merge(&mut self, other: &FaultStats) {
        self.passed += other.passed;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
    }

    /// Serializes the counters.
    pub fn to_json(&self) -> Json {
        object([
            ("passed", Json::from(self.passed)),
            ("dropped", Json::from(self.dropped)),
            ("duplicated", Json::from(self.duplicated)),
            ("reordered", Json::from(self.reordered)),
        ])
    }

    /// Parses the counters back.
    pub fn from_json(v: &Json) -> Result<FaultStats, JsonError> {
        Ok(FaultStats {
            passed: v.get("passed")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
            duplicated: v.get("duplicated")?.as_u64()?,
            reordered: v.get("reordered")?.as_u64()?,
        })
    }
}

/// SplitMix64 step.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-channel fault injector: feed it outgoing frames, get back the frames
/// that should actually hit the wire (in wire order).
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: u64,
    hold: Option<Vec<u8>>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates the injector for one directed channel; `channel_id` (e.g.
    /// `sender * n + receiver`) decorrelates channels sharing a spec seed.
    pub fn new(spec: FaultSpec, channel_id: u64) -> Self {
        FaultInjector {
            spec,
            rng: spec
                .seed
                .wrapping_mul(0x100_0193)
                .wrapping_add(channel_id)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                | 1,
            hold: None,
            stats: FaultStats::default(),
        }
    }

    fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            // Still consume a draw so `drop=1.0` and `drop=0.999…` walk the same
            // decision sequence.
            let _ = splitmix64(&mut self.rng);
            return true;
        }
        let draw = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }

    /// Admits one outgoing frame and returns the frames to put on the wire, in
    /// order.  May return zero frames (dropped, or held for reordering), one, or
    /// several (duplicates and/or a released held frame).
    pub fn on_send(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        if self.roll(self.spec.drop) {
            self.stats.dropped += 1;
            dlrv_obs::counter!("net.fault.dropped").inc();
        } else {
            let copies = if self.roll(self.spec.dup) {
                self.stats.duplicated += 1;
                dlrv_obs::counter!("net.fault.duplicated").inc();
                2
            } else {
                1
            };
            for _copy in 0..copies {
                let f = frame.clone();
                if self.hold.is_none() && self.roll(self.spec.reorder) {
                    self.hold = Some(f);
                } else {
                    out.push(f);
                }
            }
        }
        // Anything emitted overtakes a frame held from an earlier send: release it
        // after the newcomers — that is the one-slot swap.
        if !out.is_empty() {
            if let Some(held) = self.hold.take() {
                out.push(held);
                self.stats.reordered += 1;
                dlrv_obs::counter!("net.fault.reordered").inc();
            }
        }
        self.stats.passed += out.len() as u64;
        out
    }

    /// Releases a held frame without a swap (used at barrier/finish time so the
    /// channel drains).  Counts as passed, not as reordered.
    pub fn flush_hold(&mut self) -> Option<Vec<u8>> {
        let held = self.hold.take();
        if held.is_some() {
            self.stats.passed += 1;
        }
        held
    }

    /// Number of frames currently held back (0 or 1).
    pub fn held(&self) -> usize {
        usize::from(self.hold.is_some())
    }

    /// The channel's extra latency, if any.
    pub fn delay_ms(&self) -> f64 {
        self.spec.delay_ms
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(i: u8) -> Vec<u8> {
        vec![0, 0, 0, 1, i]
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        let spec = FaultSpec::parse("drop=0.25,delay=5,dup=0.5,reorder=0.1,seed=9").expect("parse");
        assert_eq!(
            spec,
            FaultSpec {
                drop: 0.25,
                delay_ms: 5.0,
                dup: 0.5,
                reorder: 0.1,
                seed: 9
            }
        );
        let back = FaultSpec::from_json(&spec.to_json()).expect("json");
        assert_eq!(back, spec);
        assert_eq!(FaultSpec::parse("").expect("empty"), FaultSpec::default());
        assert!(FaultSpec::default().is_noop());
        assert!(!spec.is_noop());
        assert!(FaultSpec::parse("drop=2").is_err());
        assert!(FaultSpec::parse("delay=-1").is_err());
        assert!(FaultSpec::parse("jitter=3").is_err());
        assert!(FaultSpec::parse("drop").is_err());
        // Display form parses back to the same spec.
        assert_eq!(FaultSpec::parse(&spec.to_string()).expect("redisplay"), spec);
    }

    #[test]
    fn noop_injector_is_the_identity() {
        let mut inj = FaultInjector::new(FaultSpec::default(), 3);
        for i in 0..20 {
            assert_eq!(inj.on_send(frame(i)), vec![frame(i)]);
        }
        assert_eq!(
            inj.stats(),
            FaultStats {
                passed: 20,
                ..FaultStats::default()
            }
        );
        assert_eq!(inj.flush_hold(), None);
    }

    #[test]
    fn drop_one_discards_everything() {
        let spec = FaultSpec::parse("drop=1").expect("parse");
        let mut inj = FaultInjector::new(spec, 0);
        for i in 0..10 {
            assert!(inj.on_send(frame(i)).is_empty());
        }
        assert_eq!(inj.stats().dropped, 10);
        assert_eq!(inj.stats().passed, 0);
    }

    #[test]
    fn dup_one_doubles_everything() {
        let spec = FaultSpec::parse("dup=1").expect("parse");
        let mut inj = FaultInjector::new(spec, 0);
        let out = inj.on_send(frame(7));
        assert_eq!(out, vec![frame(7), frame(7)]);
        assert_eq!(inj.stats().duplicated, 1);
        assert_eq!(inj.stats().passed, 2);
    }

    #[test]
    fn reorder_swaps_with_the_next_frame() {
        // reorder=1: the first frame is held, the second send releases it swapped;
        // the second frame itself cannot be held (one-slot shim).
        let spec = FaultSpec::parse("reorder=1").expect("parse");
        let mut inj = FaultInjector::new(spec, 0);
        assert!(inj.on_send(frame(1)).is_empty());
        assert_eq!(inj.held(), 1);
        let out = inj.on_send(frame(2));
        assert_eq!(out, vec![frame(2), frame(1)], "successor overtakes held frame");
        assert_eq!(inj.stats().reordered, 1);
        // A lone trailing frame is held again and must drain via flush_hold.
        assert!(inj.on_send(frame(3)).is_empty());
        assert_eq!(inj.flush_hold(), Some(frame(3)));
        assert_eq!(inj.stats().reordered, 1, "flush is not a swap");
        assert_eq!(inj.stats().passed, 3);
    }

    #[test]
    fn decisions_are_deterministic_per_channel_seed() {
        let spec = FaultSpec::parse("drop=0.3,dup=0.3,reorder=0.3,seed=42").expect("parse");
        let run = |channel| {
            let mut inj = FaultInjector::new(spec, channel);
            let mut wire = Vec::new();
            for i in 0..100 {
                wire.extend(inj.on_send(frame(i)));
            }
            wire.extend(inj.flush_hold());
            (wire, inj.stats())
        };
        let (wire_a, stats_a) = run(0);
        let (wire_b, stats_b) = run(0);
        assert_eq!(wire_a, wire_b, "same channel seed, same fault pattern");
        assert_eq!(stats_a, stats_b);
        let (wire_c, _) = run(1);
        assert_ne!(wire_a, wire_c, "channels must decorrelate");
        // With all three faults at 0.3 every counter should have fired over 100 frames.
        assert!(stats_a.dropped > 0 && stats_a.duplicated > 0 && stats_a.reordered > 0);
    }

    #[test]
    fn merged_stats_accumulate() {
        let mut total = FaultStats::default();
        total.merge(&FaultStats {
            passed: 3,
            dropped: 1,
            duplicated: 2,
            reordered: 1,
        });
        total.merge(&FaultStats {
            passed: 4,
            ..FaultStats::default()
        });
        assert_eq!(total.passed, 7);
        assert_eq!(total.dropped, 1);
        let back = FaultStats::from_json(&total.to_json()).expect("json");
        assert_eq!(back, total);
    }
}
