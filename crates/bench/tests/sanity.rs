//! Workspace-sanity smoke test: the benchmark-harness helpers produce consistent
//! Table 5.1 rows and a runnable data point.

use dlrv_bench::{comm_frequency_run, transition_counts};
use dlrv_core::PaperProperty;

#[test]
fn harness_helpers_produce_consistent_numbers() {
    let row = transition_counts(PaperProperty::A, 2);
    assert_eq!(row.n_processes, 2);
    assert!(row.states >= 2);
    assert_eq!(row.total, row.outgoing + row.self_loops);

    let metrics = comm_frequency_run(None, 5);
    assert!(metrics.total_events > 0);
    assert!(metrics.monitor_messages > 0, "monitors must exchange tokens");
}
