//! Bench over the extended (non-paper) registry scenarios: bursty arrivals, hotspot /
//! ring / pipeline communication topologies.
//!
//! The paper's own sweeps are covered by the `fig5_*` benches; this one tracks the
//! workload shapes the scenario registry adds on top, so a perf regression in a new
//! shape (e.g. the point-to-point send path) is caught by the same harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrv_bench::registry_scenario;
use std::time::Duration;

const EVENTS: usize = 10;

/// The extended scenarios, scaled to the bench time budget (fewer events, one seed).
const SCENARIOS: [&str; 4] = ["bursty-C-n4", "hotspot-D-n4", "ring-B-n4", "pipeline-A-n4"];

fn bench_extended_scenarios(c: &mut Criterion) {
    println!("\nExtended registry scenarios (regenerated, {EVENTS} events/process):");
    for name in SCENARIOS {
        let mut scenario = registry_scenario(name);
        scenario.config.events_per_process = EVENTS;
        scenario.config.seeds = vec![1];
        let m = scenario.run().avg;
        println!(
            "  {name}: events={} monitor_messages={} global_views={} delayed={:.2}",
            m.total_events, m.monitor_messages, m.total_global_views, m.avg_delayed_events
        );
    }

    let mut group = c.benchmark_group("extended_scenarios");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for name in SCENARIOS {
        let mut scenario = registry_scenario(name);
        scenario.config.events_per_process = EVENTS;
        scenario.config.seeds = vec![1];
        group.bench_with_input(BenchmarkId::from_parameter(name), &scenario, |b, s| {
            b.iter(|| s.run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extended_scenarios);
criterion_main!(benches);
