//! Bench over the streaming throughput family: concurrent sessions pumped through
//! the sharded `dlrv-stream` runtime, scaled to the bench time budget.
//!
//! The shard-scaling scenarios (`throughput-C-s400-sh{1,2,4}`) are the interesting
//! series: a regression in the ingestion path (codec, routing, batching, or the
//! incremental feed itself) shows up here before it shows up in production-sized
//! sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrv_bench::registry_scenario;
use dlrv_core::StreamParams;
use std::time::Duration;

const EVENTS: usize = 5;
const SESSIONS: usize = 40;

const SCENARIOS: [&str; 3] = [
    "throughput-C-s400-sh1",
    "throughput-C-s400-sh2",
    "throughput-C-s400-sh4",
];

/// A registry throughput scenario scaled to the bench budget (fewer sessions and
/// events; the shard count under test is preserved).
fn scaled(name: &str) -> dlrv_core::Scenario {
    let mut scenario = registry_scenario(name);
    scenario.config.events_per_process = EVENTS;
    let n_shards = scenario.stream.expect("throughput scenario").n_shards;
    scenario.stream = Some(StreamParams::sized(SESSIONS, n_shards));
    scenario
}

fn bench_throughput_scenarios(c: &mut Criterion) {
    println!("\nStreaming throughput scenarios ({SESSIONS} sessions, {EVENTS} events/process):");
    for name in SCENARIOS {
        let m = scaled(name).run().avg;
        println!(
            "  {name}: events={} events/sec={:.0} wall={:.3}s shards={}",
            m.total_events,
            m.events_per_sec,
            m.wall_clock_secs,
            m.per_shard.len()
        );
    }

    let mut group = c.benchmark_group("throughput_scenarios");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for name in SCENARIOS {
        let scenario = scaled(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &scenario, |b, s| {
            b.iter(|| s.run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput_scenarios);
criterion_main!(benches);
