//! Bench for experiments E3/E4 (Fig. 5.4 and Fig. 5.5): monitoring-message overhead of
//! the decentralized algorithm for all six properties as the process count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use dlrv_bench::paper_run;
use dlrv_core::PaperProperty;

const EVENTS: usize = 10;

fn bench_messages(c: &mut Criterion) {
    println!("\nFig 5.4 / 5.5 (regenerated, {EVENTS} events/process): monitoring messages");
    for property in PaperProperty::ALL {
        for n in [2usize, 3, 4] {
            let m = paper_run(property, n, EVENTS);
            println!(
                "  {} n={}: events={} monitor_messages={}",
                property.name(),
                n,
                m.total_events,
                m.monitor_messages
            );
        }
    }

    let mut group = c.benchmark_group("monitoring_run");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for property in [PaperProperty::A, PaperProperty::B, PaperProperty::D] {
        for n in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(property.name(), n),
                &(property, n),
                |b, &(property, n)| b.iter(|| paper_run(property, n, EVENTS)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_messages);
criterion_main!(benches);
