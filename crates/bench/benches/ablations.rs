//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * the three §4.3 optimizations (token aggregation, duplicate-global-view avoidance,
//!   disjunctive-transition pruning) toggled individually, and
//! * decentralized monitoring vs. the centralized baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use dlrv_automaton::MonitorAutomaton;
use dlrv_core::{run_experiment_with_options, ExperimentConfig, PaperProperty};
use dlrv_distsim::{initial_global_state, run_simulation, SimConfig};
use dlrv_ltl::Assignment;
use dlrv_monitor::{CentralizedMonitor, MonitorOptions};
use dlrv_trace::{generate_workload, WorkloadConfig};
use std::sync::Arc;

/// The registry scenario `paper-C-n3`, scaled down to the bench time budget.
fn config() -> ExperimentConfig {
    ExperimentConfig {
        events_per_process: 8,
        seeds: vec![1],
        ..dlrv_bench::registry_scenario("paper-C-n3").config
    }
}

fn bench_optimizations(c: &mut Criterion) {
    let variants: [(&str, MonitorOptions); 4] = [
        ("all_on", MonitorOptions::default()),
        (
            "no_aggregation",
            MonitorOptions {
                aggregate_tokens: false,
                ..MonitorOptions::default()
            },
        ),
        (
            "no_dedup",
            MonitorOptions {
                dedup_global_views: false,
                ..MonitorOptions::default()
            },
        ),
        (
            "no_disjunctive_pruning",
            MonitorOptions {
                prune_disjunctive: false,
                ..MonitorOptions::default()
            },
        ),
    ];

    println!("\nAblation (property C, 3 processes, 8 events/process):");
    for (name, opts) in variants {
        let result = run_experiment_with_options(&config(), opts);
        println!(
            "  {name}: monitor_messages={} global_views={}",
            result.avg.monitor_messages, result.avg.total_global_views
        );
    }

    let mut group = c.benchmark_group("optimization_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| run_experiment_with_options(&config(), opts))
        });
    }
    group.finish();
}

fn bench_central_vs_decentral(c: &mut Criterion) {
    let (formula, registry) = PaperProperty::B.build(3);
    let automaton = Arc::new(MonitorAutomaton::synthesize(&formula, &registry));
    let registry = Arc::new(registry);
    let workload = generate_workload(&WorkloadConfig {
        n_processes: 3,
        events_per_process: 6,
        seed: 1,
        ..WorkloadConfig::default()
    });

    let mut group = c.benchmark_group("central_vs_decentral");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("decentralized", |b| {
        b.iter(|| {
            dlrv_core::run_single(
                &workload,
                &registry,
                &automaton,
                MonitorOptions::default(),
            )
        })
    });
    group.bench_function("centralized", |b| {
        let initial_states = vec![Assignment::ALL_FALSE; 3];
        b.iter(|| {
            let _initial = initial_global_state(&workload, &registry);
            run_simulation(&workload, &registry, &SimConfig::default(), |i| {
                CentralizedMonitor::new(
                    i,
                    3,
                    0,
                    automaton.clone(),
                    registry.clone(),
                    initial_states.clone(),
                )
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimizations, bench_central_vs_decentral);
criterion_main!(benches);
