//! Bench for experiment E7 (Fig. 5.8): memory overhead measured as the total number of
//! global views created by all monitors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use dlrv_bench::paper_run;
use dlrv_core::PaperProperty;

const EVENTS: usize = 10;

fn bench_memory(c: &mut Criterion) {
    println!("\nFig 5.8 (regenerated, {EVENTS} events/process): total global views");
    for property in PaperProperty::ALL {
        for n in [2usize, 3, 4] {
            let m = paper_run(property, n, EVENTS);
            println!(
                "  {} n={}: global_views={}",
                property.name(),
                n,
                m.total_global_views
            );
        }
    }

    let mut group = c.benchmark_group("memory_overhead_run");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("property_C", n), &n, |b, &n| {
            b.iter(|| paper_run(PaperProperty::C, n, EVENTS))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
