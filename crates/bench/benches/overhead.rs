//! The §4.3 overhead A/B bench: every registry `overhead-*` pair timed with the
//! optimization suite on vs. off.
//!
//! The `ablations` bench toggles each switch *individually* on one property; this
//! bench measures the *whole suite* across every property, mirroring what
//! `experiments --target overhead` reports as counters — so a wall-clock regression
//! in the optimized hot path (hash-keyed view merging, token batching, subsumption
//! pruning) shows up here even when the message/memory counters stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrv_core::PaperProperty;
use std::time::Duration;

/// Scaled-down copy of a registry overhead scenario (fewer events and one seed keep
/// each iteration inside the bench time budget without changing the config shape).
fn scaled(name: &str) -> dlrv_core::Scenario {
    let mut scenario = dlrv_bench::registry_scenario(name);
    scenario.config.events_per_process = 8;
    scenario.config.seeds = vec![1];
    scenario
}

fn bench_overhead_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_suite");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for property in PaperProperty::ALL {
        for suffix in ["opts", "noopt"] {
            let scenario = scaled(&format!("overhead-{}-{}", property.name(), suffix));
            group.bench_with_input(
                BenchmarkId::new(property.name(), suffix),
                &scenario,
                |b, scenario| b.iter(|| scenario.run()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_overhead_pairs);
criterion_main!(benches);
