//! Bench for experiment E8 (Fig. 5.9): the communication-frequency sweep — how message
//! overhead, delay and global views of property C on 4 processes change as the
//! program's communication rate drops from Commµ = 3 s to no communication at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use dlrv_bench::comm_frequency_run;

const EVENTS: usize = 10;

fn bench_comm_frequency(c: &mut Criterion) {
    println!("\nFig 5.9 (regenerated, {EVENTS} events/process, 4 processes, property C)");
    for comm_mu in [Some(3.0), Some(6.0), Some(9.0), Some(15.0), None] {
        let m = comm_frequency_run(comm_mu, EVENTS);
        println!(
            "  commMu={:?}: events={} monitor_messages={} global_views={} delayed={:.2}",
            comm_mu, m.total_events, m.monitor_messages, m.total_global_views, m.avg_delayed_events
        );
    }

    let mut group = c.benchmark_group("comm_frequency");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (label, comm_mu) in [("mu3", Some(3.0)), ("mu15", Some(15.0)), ("none", None)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &comm_mu, |b, &mu| {
            b.iter(|| comm_frequency_run(mu, EVENTS))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_comm_frequency);
criterion_main!(benches);
