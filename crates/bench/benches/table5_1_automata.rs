//! Bench for experiment E1 (Table 5.1 / Fig. 5.1): LTL₃ monitor-automaton synthesis
//! for every evaluation property, across process counts.  Also prints the regenerated
//! table rows so `cargo bench` output documents the counts themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use dlrv_bench::transition_counts;
use dlrv_core::PaperProperty;

fn bench_synthesis(c: &mut Criterion) {
    // Print the table itself once (the benchmark's real deliverable).
    println!("\nTable 5.1 (regenerated): property, procs, total/outgoing/self-loop transitions");
    for property in PaperProperty::ALL {
        for n in [2usize, 3, 4] {
            let row = transition_counts(property, n);
            println!(
                "  {} n={}: total={} outgoing={} self_loops={}",
                property.name(),
                n,
                row.total,
                row.outgoing,
                row.self_loops
            );
        }
    }

    let mut group = c.benchmark_group("automaton_synthesis");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for property in PaperProperty::ALL {
        for n in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(property.name(), n),
                &(property, n),
                |b, &(property, n)| b.iter(|| transition_counts(property, n)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
