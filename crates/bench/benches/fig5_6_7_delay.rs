//! Bench for experiments E5/E6 (Fig. 5.6 and Fig. 5.7): detection latency — delay-time
//! percentage per global state and the number of delayed (queued) events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use dlrv_bench::paper_run;
use dlrv_core::PaperProperty;

const EVENTS: usize = 10;

fn bench_delay(c: &mut Criterion) {
    println!("\nFig 5.6 / 5.7 (regenerated, {EVENTS} events/process): delay metrics");
    for property in PaperProperty::ALL {
        for n in [2usize, 3, 4] {
            let m = paper_run(property, n, EVENTS);
            println!(
                "  {} n={}: delay_pct_per_gv={:.4} delayed_events={:.2}",
                property.name(),
                n,
                m.delay_time_pct_per_gv,
                m.avg_delayed_events
            );
        }
    }

    let mut group = c.benchmark_group("delay_measurement");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for property in [PaperProperty::C, PaperProperty::F] {
        for n in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(property.name(), n),
                &(property, n),
                |b, &(property, n)| b.iter(|| paper_run(property, n, EVENTS)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_delay);
criterion_main!(benches);
