//! Bench over the custom LTL property family: the scenarios `--target custom` runs,
//! plus the property-compilation path itself (parse → synthesis) that `--property`
//! exposes to users.
//!
//! The paper's six properties are covered by the `fig5_*` benches; this harness
//! tracks the free-form `PropertySpec` pipeline so a regression in the parser, the
//! registry-derived atom layout or the monitor synthesis of user-style formulas is
//! caught by the same tooling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlrv_bench::registry_scenario;
use dlrv_core::{CompiledProperty, PropertySpec};
use std::time::Duration;

const EVENTS: usize = 8;

/// A representative slice of the custom family, scaled to the bench time budget.
const SCENARIOS: [&str; 4] = [
    "custom-reqack-n2",
    "custom-mutex-n2",
    "custom-nested-until-n3",
    "custom-mixed-n4",
];

fn bench_custom_scenarios(c: &mut Criterion) {
    println!("\nCustom property scenarios (regenerated, {EVENTS} events/process):");
    for name in SCENARIOS {
        let mut scenario = registry_scenario(name);
        scenario.config.events_per_process = EVENTS;
        scenario.config.seeds = vec![1];
        let m = scenario.run().avg;
        println!(
            "  {name}: events={} monitor_messages={} global_views={} delayed={:.2}",
            m.total_events, m.monitor_messages, m.total_global_views, m.avg_delayed_events
        );
    }

    let mut group = c.benchmark_group("custom_scenarios");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for name in SCENARIOS {
        let mut scenario = registry_scenario(name);
        scenario.config.events_per_process = EVENTS;
        scenario.config.seeds = vec![1];
        group.bench_with_input(BenchmarkId::from_parameter(name), &scenario, |b, s| {
            b.iter(|| s.run())
        });
    }
    group.finish();
}

fn bench_property_compilation(c: &mut Criterion) {
    // Parse + monitor synthesis for a user formula: the cold-start cost every
    // `--property` invocation (and every new property in a long-running service)
    // pays once before monitoring begins.
    let mut group = c.benchmark_group("property_compile");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for (label, ltl, procs) in [
        ("reqack", "G(P0.req -> F P1.ack)", 2),
        ("nested_until", "G(P0.p U (P1.p U P2.p))", 3),
        ("stress8", "G((P0.p || P1.p) U (P6.p && P7.p))", 8),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let spec = PropertySpec::parse(ltl).expect("valid LTL");
                CompiledProperty::compile(&spec, procs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_custom_scenarios, bench_property_compilation);
criterion_main!(benches);
