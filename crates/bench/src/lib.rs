//! Shared helpers for the benchmark harness and the `experiments` binary.
//!
//! Every table and figure of the thesis' evaluation chapter (Chapter 5) is regenerated
//! by a function in this crate; the `experiments` binary prints them as text tables
//! and the Criterion benches time the underlying runs.

#![forbid(unsafe_code)]

use dlrv_automaton::MonitorAutomaton;
use dlrv_core::{run_experiment, ExperimentConfig, PaperProperty, Scenario, ScenarioRegistry};
use dlrv_monitor::RunMetrics;
use std::sync::OnceLock;

/// Process counts evaluated by the paper.
pub const PROCESS_COUNTS: [usize; 4] = [2, 3, 4, 5];

/// The standard registry, built once — `registry_scenario` is called inside criterion
/// measurement loops, which must not time registry construction.
fn standard_registry() -> &'static ScenarioRegistry {
    static REGISTRY: OnceLock<ScenarioRegistry> = OnceLock::new();
    REGISTRY.get_or_init(ScenarioRegistry::standard)
}

/// Looks up a scenario in the standard registry, panicking with a helpful message on
/// unknown names (benches and figures reference scenarios by their stable names).
pub fn registry_scenario(name: &str) -> Scenario {
    standard_registry()
        .get(name)
        .unwrap_or_else(|| panic!("scenario `{name}` is not in the standard registry"))
        .clone()
}

/// Runs a registry scenario with its events-per-process overridden (benches and the
/// figure experiments scale the workload to their time budget) and returns the
/// averaged metrics.
pub fn scenario_run(name: &str, events_per_process: usize) -> RunMetrics {
    let mut scenario = registry_scenario(name);
    scenario.config.events_per_process = events_per_process;
    scenario.run().avg
}

/// One row of Table 5.1 / one series point of Fig. 5.1.
#[derive(Debug, Clone)]
pub struct TransitionRow {
    /// The property.
    pub property: PaperProperty,
    /// Number of processes.
    pub n_processes: usize,
    /// Total transitions of the synthesized monitor.
    pub total: usize,
    /// Outgoing (state-changing) transitions.
    pub outgoing: usize,
    /// Self-loop transitions.
    pub self_loops: usize,
    /// Number of automaton states.
    pub states: usize,
}

/// Synthesizes the monitor of `property` for `n` processes and reports its transition
/// statistics (Table 5.1, Fig. 5.1a/b).
pub fn transition_counts(property: PaperProperty, n: usize) -> TransitionRow {
    let (formula, registry) = property.build(n);
    let automaton = MonitorAutomaton::synthesize(&formula, &registry);
    let counts = automaton.transition_counts();
    TransitionRow {
        property,
        n_processes: n,
        total: counts.total,
        outgoing: counts.outgoing,
        self_loops: counts.self_loops,
        states: automaton.n_states(),
    }
}

/// Runs the paper-default experiment for one property / process count
/// (Figures 5.4–5.8) with a configurable number of events per process.
///
/// This is the registry scenario `paper-<property>-n<n>`; going through the registry
/// keeps the figures, the benches and `BENCH_results.json` measuring the same
/// configurations.  Process counts outside the registered 2–5 sweep still run — the
/// function stays total — just as an unnamed paper-default configuration.
pub fn paper_run(property: PaperProperty, n: usize, events_per_process: usize) -> RunMetrics {
    let name = format!("paper-{}-n{}", property.name(), n);
    if standard_registry().get(&name).is_some() {
        return scenario_run(&name, events_per_process);
    }
    run_experiment(&ExperimentConfig {
        events_per_process,
        ..ExperimentConfig::paper_default(property, n)
    })
    .avg
}

/// Runs one point of the communication-frequency sweep of Fig. 5.9 (4 processes,
/// property C) — the registry scenario `commfreq-mu<µ>` / `commfreq-nocomm` when
/// `comm_mu` is one of the registered points, an unnamed equivalent configuration
/// otherwise (the name embeds a truncated µ, so the scenario is only used when its
/// `comm_mu` matches the request exactly).
pub fn comm_frequency_run(comm_mu: Option<f64>, events_per_process: usize) -> RunMetrics {
    let name = match comm_mu {
        Some(mu) => format!("commfreq-mu{}", mu as u64),
        None => "commfreq-nocomm".to_string(),
    };
    match standard_registry().get(&name) {
        Some(scenario) if scenario.config.comm_mu == comm_mu => {
            scenario_run(&name, events_per_process)
        }
        _ => {
            run_experiment(&ExperimentConfig {
                events_per_process,
                comm_mu,
                ..ExperimentConfig::paper_default(PaperProperty::C, 4)
            })
            .avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Zero the fields that measure the host rather than the algorithm: wall-clock
    /// duration, derived throughput, and the process-wide RSS high-water mark all
    /// legitimately vary between two runs of the same scenario.
    fn strip_host_measurements(mut m: RunMetrics) -> RunMetrics {
        m.wall_clock_secs = 0.0;
        m.events_per_sec = 0.0;
        m.peak_rss_bytes = 0;
        m
    }

    #[test]
    fn transition_counts_grow_with_processes() {
        let two = transition_counts(PaperProperty::D, 2);
        let three = transition_counts(PaperProperty::D, 3);
        assert!(three.total > two.total);
        assert_eq!(two.total, two.outgoing + two.self_loops);
    }

    #[test]
    fn paper_run_produces_metrics() {
        let m = paper_run(PaperProperty::B, 2, 5);
        assert!(m.total_events > 0);
        assert!(m.program_time > 0.0);
    }

    #[test]
    fn scenario_run_matches_direct_execution() {
        // The registry indirection must not change what is measured, host-side
        // timing/RSS measurements aside.
        let mut scenario = registry_scenario("paper-B-n2");
        scenario.config.events_per_process = 5;
        let via_helper = strip_host_measurements(scenario_run("paper-B-n2", 5));
        let direct = strip_host_measurements(scenario.run().avg);
        assert_eq!(via_helper, direct);
    }

    #[test]
    #[should_panic(expected = "not in the standard registry")]
    fn unknown_scenarios_panic_with_context() {
        registry_scenario("paper-Z-n99");
    }

    #[test]
    fn paper_run_stays_total_outside_the_registry() {
        // n=6 has no `paper-*-n6` scenario; the function must fall back to the
        // equivalent unnamed configuration instead of panicking.
        let m = paper_run(PaperProperty::B, 6, 4);
        assert_eq!(m.n_processes, 6);
        assert!(m.total_events > 0);
    }

    #[test]
    fn comm_frequency_run_honors_non_registry_mu() {
        // mu=3.9 would truncate to the registered `commfreq-mu3` name; the function
        // must run the requested µ, not the name-collided scenario.
        let requested = strip_host_measurements(comm_frequency_run(Some(3.9), 4));
        let direct = strip_host_measurements(
            run_experiment(&ExperimentConfig {
                events_per_process: 4,
                comm_mu: Some(3.9),
                ..ExperimentConfig::paper_default(PaperProperty::C, 4)
            })
            .avg,
        );
        assert_eq!(requested, direct);
    }
}
