//! Shared helpers for the benchmark harness and the `experiments` binary.
//!
//! Every table and figure of the thesis' evaluation chapter (Chapter 5) is regenerated
//! by a function in this crate; the `experiments` binary prints them as text tables
//! and the Criterion benches time the underlying runs.

use dlrv_automaton::MonitorAutomaton;
use dlrv_core::{run_experiment, ExperimentConfig, PaperProperty};
use dlrv_monitor::RunMetrics;

/// Process counts evaluated by the paper.
pub const PROCESS_COUNTS: [usize; 4] = [2, 3, 4, 5];

/// One row of Table 5.1 / one series point of Fig. 5.1.
#[derive(Debug, Clone)]
pub struct TransitionRow {
    /// The property.
    pub property: PaperProperty,
    /// Number of processes.
    pub n_processes: usize,
    /// Total transitions of the synthesized monitor.
    pub total: usize,
    /// Outgoing (state-changing) transitions.
    pub outgoing: usize,
    /// Self-loop transitions.
    pub self_loops: usize,
    /// Number of automaton states.
    pub states: usize,
}

/// Synthesizes the monitor of `property` for `n` processes and reports its transition
/// statistics (Table 5.1, Fig. 5.1a/b).
pub fn transition_counts(property: PaperProperty, n: usize) -> TransitionRow {
    let (formula, registry) = property.build(n);
    let automaton = MonitorAutomaton::synthesize(&formula, &registry);
    let counts = automaton.transition_counts();
    TransitionRow {
        property,
        n_processes: n,
        total: counts.total,
        outgoing: counts.outgoing,
        self_loops: counts.self_loops,
        states: automaton.n_states(),
    }
}

/// Runs the paper-default experiment for one property / process count
/// (Figures 5.4–5.8) with a configurable number of events per process.
pub fn paper_run(property: PaperProperty, n: usize, events_per_process: usize) -> RunMetrics {
    let config = ExperimentConfig {
        events_per_process,
        ..ExperimentConfig::paper_default(property, n)
    };
    run_experiment(&config).avg
}

/// Runs the communication-frequency sweep of Fig. 5.9 (4 processes, property C).
pub fn comm_frequency_run(comm_mu: Option<f64>, events_per_process: usize) -> RunMetrics {
    let config = ExperimentConfig {
        events_per_process,
        comm_mu,
        ..ExperimentConfig::paper_default(PaperProperty::C, 4)
    };
    run_experiment(&config).avg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_counts_grow_with_processes() {
        let two = transition_counts(PaperProperty::D, 2);
        let three = transition_counts(PaperProperty::D, 3);
        assert!(three.total > two.total);
        assert_eq!(two.total, two.outgoing + two.self_loops);
    }

    #[test]
    fn paper_run_produces_metrics() {
        let m = paper_run(PaperProperty::B, 2, 5);
        assert!(m.total_events > 0);
        assert!(m.program_time > 0.0);
    }
}
