//! Regenerates every table and figure of the thesis' evaluation chapter as text.
//!
//! ```bash
//! cargo run --release -p dlrv-bench --bin experiments -- all
//! cargo run --release -p dlrv-bench --bin experiments -- table5_1
//! cargo run --release -p dlrv-bench --bin experiments -- fig5_4 fig5_5 fig5_6 fig5_7 fig5_8 fig5_9
//! cargo run --release -p dlrv-bench --bin experiments -- automata_dot
//! cargo run --release -p dlrv-bench --bin experiments -- all --jobs 8
//! ```
//!
//! `--jobs N` (or the `DLRV_JOBS` environment variable) caps the worker threads used
//! to fan out independent seeds and configurations; the default uses every core.
//! Results are byte-identical for every thread count — each (property, process count,
//! seed) data point is a deterministic simulation collected in a fixed order.
//!
//! The numbers are produced by the discrete-event simulator substitute for the paper's
//! iOS testbed (see DESIGN.md), so absolute values differ from the thesis; the shapes
//! (growth trends, relative ordering of the properties) are what EXPERIMENTS.md
//! compares.

use dlrv_automaton::{dot, MonitorAutomaton};
use dlrv_bench::{comm_frequency_run, paper_run, transition_counts, PROCESS_COUNTS};
use dlrv_core::{parallel_map_indexed, set_jobs, PaperProperty};
use dlrv_monitor::RunMetrics;

/// Events per process used for the figure experiments (the thesis uses 20).
const EVENTS: usize = 20;

/// Strips `--jobs N` / `--jobs=N` out of `args`, applying it via [`set_jobs`].
fn parse_jobs(args: Vec<String>) -> Vec<String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let value = if arg == "--jobs" {
            iter.next()
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else {
            rest.push(arg);
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(jobs)) if jobs > 0 => set_jobs(jobs),
            _ => {
                eprintln!("error: --jobs expects a positive integer");
                std::process::exit(2);
            }
        }
    }
    rest
}

/// Everything a positional argument may select.
const KNOWN_TARGETS: [&str; 9] = [
    "all", "table5_1", "automata_dot", "fig5_4", "fig5_5", "fig5_6", "fig5_7", "fig5_8",
    "fig5_9",
];

fn main() {
    let args = parse_jobs(std::env::args().skip(1).collect());
    if let Some(unknown) = args.iter().find(|a| !KNOWN_TARGETS.contains(&a.as_str())) {
        eprintln!("error: unknown target `{unknown}`; expected one of: {}", KNOWN_TARGETS.join(", "));
        std::process::exit(2);
    }
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let wants = |name: &str| run_all || args.iter().any(|a| a == name);

    if wants("table5_1") {
        table5_1();
    }
    if wants("automata_dot") {
        automata_dot();
    }
    // Figures 5.4–5.8 all report different metrics of the *same* runs (paper-default
    // workload, every property × process count), so the sweep is executed once and
    // printed per figure.
    let figure_names = ["fig5_4", "fig5_5", "fig5_6", "fig5_7", "fig5_8"];
    if figure_names.iter().any(|f| wants(f)) {
        let sweep = run_sweep();
        if wants("fig5_4") {
            messages_figure(
                "Fig 5.4 — messages overhead (properties A, B, C)",
                &[PaperProperty::A, PaperProperty::B, PaperProperty::C],
                &sweep,
            );
        }
        if wants("fig5_5") {
            messages_figure(
                "Fig 5.5 — messages overhead (properties D, E, F)",
                &[PaperProperty::D, PaperProperty::E, PaperProperty::F],
                &sweep,
            );
        }
        if wants("fig5_6") {
            sweep_figure("Fig 5.6 — delay-time percentage per global state", &sweep);
        }
        if wants("fig5_7") {
            sweep_figure("Fig 5.7 — delayed (queued) events", &sweep);
        }
        if wants("fig5_8") {
            sweep_figure("Fig 5.8 — memory overhead (total global views)", &sweep);
        }
    }
    if wants("fig5_9") {
        comm_frequency_figure();
    }
}

/// One simulated data point per (property, process count) under the paper-default
/// workload parameters.
///
/// Configurations are independent simulations, so the sweep fans out across worker
/// threads (bounded by `--jobs`); collecting by index keeps the output order — and
/// every metric in it — identical to the sequential sweep.
fn run_sweep() -> Vec<(PaperProperty, usize, RunMetrics)> {
    let points: Vec<(PaperProperty, usize)> = PaperProperty::ALL
        .into_iter()
        .flat_map(|property| PROCESS_COUNTS.map(|n| (property, n)))
        .collect();
    parallel_map_indexed(points.len(), dlrv_core::effective_jobs(), |i| {
        let (property, n) = points[i];
        (property, n, paper_run(property, n, EVENTS))
    })
}

fn table5_1() {
    println!("== Table 5.1 / Fig 5.1 — number of transitions per automaton ==");
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>11} {:>8}",
        "property", "procs", "total", "outgoing", "self-loops", "states"
    );
    for property in PaperProperty::ALL {
        for n in PROCESS_COUNTS {
            let row = transition_counts(property, n);
            println!(
                "{:<10} {:>6} {:>8} {:>10} {:>11} {:>8}",
                property.name(),
                n,
                row.total,
                row.outgoing,
                row.self_loops,
                row.states
            );
        }
    }
    println!();
}

fn automata_dot() {
    println!("== Fig 5.2 / 5.3 — monitor automata (DOT) ==");
    for (property, n) in [
        (PaperProperty::A, 2),
        (PaperProperty::B, 4),
        (PaperProperty::D, 2),
        (PaperProperty::E, 4),
        (PaperProperty::F, 2),
    ] {
        let (formula, registry) = property.build(n);
        let automaton = MonitorAutomaton::synthesize(&formula, &registry);
        println!("--- {} with {} processes ---", property, n);
        println!(
            "{}",
            dot::to_dot(&automaton, &registry, &format!("{property} ({n} procs)"))
        );
    }
}

fn print_metrics_header() {
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>11} {:>13} {:>11} {:>10}",
        "property", "procs", "events", "mon.msgs", "glob.views", "delayed.evts", "delay%/GV", "verdicts"
    );
}

fn print_metrics_row(property: PaperProperty, n: usize, m: &RunMetrics) {
    let verdicts: Vec<&str> = m
        .detected_final_verdicts
        .iter()
        .map(|v| v.symbol())
        .collect();
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>11} {:>13.2} {:>11.4} {:>10}",
        property.name(),
        n,
        m.total_events,
        m.monitor_messages,
        m.total_global_views,
        m.avg_delayed_events,
        m.delay_time_pct_per_gv,
        verdicts.join(",")
    );
}

fn messages_figure(
    title: &str,
    properties: &[PaperProperty],
    sweep: &[(PaperProperty, usize, RunMetrics)],
) {
    println!("== {title} ==");
    println!("(Commµ = 3 s, Commσ = 1 s, Evtµ = 3 s, Evtσ = 1 s, {EVENTS} events/process, 3 seeds)");
    print_metrics_header();
    for &(property, n, ref m) in sweep {
        if properties.contains(&property) {
            print_metrics_row(property, n, m);
        }
    }
    println!();
}

fn sweep_figure(title: &str, sweep: &[(PaperProperty, usize, RunMetrics)]) {
    println!("== {title} ==");
    print_metrics_header();
    for &(property, n, ref m) in sweep {
        print_metrics_row(property, n, m);
    }
    println!();
}

fn comm_frequency_figure() {
    println!("== Fig 5.9 — communication-frequency sweep (4 processes, property C) ==");
    println!(
        "{:<22} {:>8} {:>10} {:>11} {:>13} {:>11}",
        "configuration", "events", "mon.msgs", "glob.views", "delayed.evts", "delay%/GV"
    );
    for comm_mu in [Some(3.0), Some(6.0), Some(9.0), Some(15.0), None] {
        let m = comm_frequency_run(comm_mu, EVENTS);
        let label = match comm_mu {
            Some(mu) => format!("commMu={mu}, evtMu=3"),
            None => "no comm, evtMu=3".to_string(),
        };
        println!(
            "{:<22} {:>8} {:>10} {:>11} {:>13.2} {:>11.4}",
            label,
            m.total_events,
            m.monitor_messages,
            m.total_global_views,
            m.avg_delayed_events,
            m.delay_time_pct_per_gv
        );
    }
    println!();
}
