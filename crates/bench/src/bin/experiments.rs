//! Regenerates every table and figure of the thesis' evaluation chapter as text.
//!
//! ```bash
//! cargo run --release -p dlrv-bench --bin experiments -- all
//! cargo run --release -p dlrv-bench --bin experiments -- table5_1
//! cargo run --release -p dlrv-bench --bin experiments -- fig5_4 fig5_5 fig5_6 fig5_7 fig5_8 fig5_9
//! cargo run --release -p dlrv-bench --bin experiments -- automata_dot
//! ```
//!
//! The numbers are produced by the discrete-event simulator substitute for the paper's
//! iOS testbed (see DESIGN.md), so absolute values differ from the thesis; the shapes
//! (growth trends, relative ordering of the properties) are what EXPERIMENTS.md
//! compares.

use dlrv_automaton::{dot, MonitorAutomaton};
use dlrv_bench::{comm_frequency_run, paper_run, transition_counts, PROCESS_COUNTS};
use dlrv_core::PaperProperty;
use dlrv_monitor::RunMetrics;

/// Events per process used for the figure experiments (the thesis uses 20).
const EVENTS: usize = 20;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty() || args.iter().any(|a| a == "all");
    let wants = |name: &str| run_all || args.iter().any(|a| a == name);

    if wants("table5_1") {
        table5_1();
    }
    if wants("automata_dot") {
        automata_dot();
    }
    // Figures 5.4–5.8 all report different metrics of the *same* runs (paper-default
    // workload, every property × process count), so the sweep is executed once and
    // printed per figure.
    let figure_names = ["fig5_4", "fig5_5", "fig5_6", "fig5_7", "fig5_8"];
    if figure_names.iter().any(|f| wants(f)) {
        let sweep = run_sweep();
        if wants("fig5_4") {
            messages_figure(
                "Fig 5.4 — messages overhead (properties A, B, C)",
                &[PaperProperty::A, PaperProperty::B, PaperProperty::C],
                &sweep,
            );
        }
        if wants("fig5_5") {
            messages_figure(
                "Fig 5.5 — messages overhead (properties D, E, F)",
                &[PaperProperty::D, PaperProperty::E, PaperProperty::F],
                &sweep,
            );
        }
        if wants("fig5_6") {
            sweep_figure("Fig 5.6 — delay-time percentage per global state", &sweep);
        }
        if wants("fig5_7") {
            sweep_figure("Fig 5.7 — delayed (queued) events", &sweep);
        }
        if wants("fig5_8") {
            sweep_figure("Fig 5.8 — memory overhead (total global views)", &sweep);
        }
    }
    if wants("fig5_9") {
        comm_frequency_figure();
    }
}

/// One simulated data point per (property, process count) under the paper-default
/// workload parameters.
fn run_sweep() -> Vec<(PaperProperty, usize, RunMetrics)> {
    let mut out = Vec::new();
    for property in PaperProperty::ALL {
        for n in PROCESS_COUNTS {
            out.push((property, n, paper_run(property, n, EVENTS)));
        }
    }
    out
}

fn table5_1() {
    println!("== Table 5.1 / Fig 5.1 — number of transitions per automaton ==");
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>11} {:>8}",
        "property", "procs", "total", "outgoing", "self-loops", "states"
    );
    for property in PaperProperty::ALL {
        for n in PROCESS_COUNTS {
            let row = transition_counts(property, n);
            println!(
                "{:<10} {:>6} {:>8} {:>10} {:>11} {:>8}",
                property.name(),
                n,
                row.total,
                row.outgoing,
                row.self_loops,
                row.states
            );
        }
    }
    println!();
}

fn automata_dot() {
    println!("== Fig 5.2 / 5.3 — monitor automata (DOT) ==");
    for (property, n) in [
        (PaperProperty::A, 2),
        (PaperProperty::B, 4),
        (PaperProperty::D, 2),
        (PaperProperty::E, 4),
        (PaperProperty::F, 2),
    ] {
        let (formula, registry) = property.build(n);
        let automaton = MonitorAutomaton::synthesize(&formula, &registry);
        println!("--- {} with {} processes ---", property, n);
        println!(
            "{}",
            dot::to_dot(&automaton, &registry, &format!("{property} ({n} procs)"))
        );
    }
}

fn print_metrics_header() {
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>11} {:>13} {:>11} {:>10}",
        "property", "procs", "events", "mon.msgs", "glob.views", "delayed.evts", "delay%/GV", "verdicts"
    );
}

fn print_metrics_row(property: PaperProperty, n: usize, m: &RunMetrics) {
    let verdicts: Vec<&str> = m
        .detected_final_verdicts
        .iter()
        .map(|v| v.symbol())
        .collect();
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>11} {:>13.2} {:>11.4} {:>10}",
        property.name(),
        n,
        m.total_events,
        m.monitor_messages,
        m.total_global_views,
        m.avg_delayed_events,
        m.delay_time_pct_per_gv,
        verdicts.join(",")
    );
}

fn messages_figure(
    title: &str,
    properties: &[PaperProperty],
    sweep: &[(PaperProperty, usize, RunMetrics)],
) {
    println!("== {title} ==");
    println!("(Commµ = 3 s, Commσ = 1 s, Evtµ = 3 s, Evtσ = 1 s, {EVENTS} events/process, 3 seeds)");
    print_metrics_header();
    for &(property, n, ref m) in sweep {
        if properties.contains(&property) {
            print_metrics_row(property, n, m);
        }
    }
    println!();
}

fn sweep_figure(title: &str, sweep: &[(PaperProperty, usize, RunMetrics)]) {
    println!("== {title} ==");
    print_metrics_header();
    for &(property, n, ref m) in sweep {
        print_metrics_row(property, n, m);
    }
    println!();
}

fn comm_frequency_figure() {
    println!("== Fig 5.9 — communication-frequency sweep (4 processes, property C) ==");
    println!(
        "{:<22} {:>8} {:>10} {:>11} {:>13} {:>11}",
        "configuration", "events", "mon.msgs", "glob.views", "delayed.evts", "delay%/GV"
    );
    for comm_mu in [Some(3.0), Some(6.0), Some(9.0), Some(15.0), None] {
        let m = comm_frequency_run(comm_mu, EVENTS);
        let label = match comm_mu {
            Some(mu) => format!("commMu={mu}, evtMu=3"),
            None => "no comm, evtMu=3".to_string(),
        };
        println!(
            "{:<22} {:>8} {:>10} {:>11} {:>13.2} {:>11.4}",
            label,
            m.total_events,
            m.monitor_messages,
            m.total_global_views,
            m.avg_delayed_events,
            m.delay_time_pct_per_gv
        );
    }
    println!();
}
