//! Workspace-sanity smoke test: vector-clock lattice laws.
//!
//! One cheap test per workspace crate guards against manifest regressions (a crate
//! silently dropping out of the build) independently of the heavier suites.

use dlrv_vclock::VectorClock;

#[test]
fn merge_laws_hold() {
    let mut a = VectorClock::zero(3);
    a.increment(0);
    a.increment(0);
    a.increment(1);
    let mut b = VectorClock::zero(3);
    b.increment(1);
    b.increment(2);

    // join is commutative, idempotent, and an upper bound.
    assert_eq!(a.join(&b), b.join(&a));
    assert_eq!(a.join(&a), a);
    assert!(a.leq(&a.join(&b)));
    assert!(b.leq(&a.join(&b)));

    // meet is the dual lower bound.
    assert_eq!(a.meet(&b), b.meet(&a));
    assert!(a.meet(&b).leq(&a));
    assert!(a.meet(&b).leq(&b));

    // a and b disagree on components 0 and 2, so they are concurrent.
    assert!(a.concurrent(&b));

    // merge is in-place join.
    let join = a.join(&b);
    let mut merged = a.clone();
    merged.merge(&b);
    assert_eq!(merged, join);
}
