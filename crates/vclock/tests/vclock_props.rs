//! Property-based tests of the vector-clock laws the monitoring algorithm relies on:
//! join/merge is a commutative, associative, idempotent lattice operation, and
//! happened-before is a strict partial order with concurrency as its complement.
//!
//! Clocks are generated from integer seeds via a SplitMix64 expansion (the vendored
//! `proptest` draws integers from ranges), so each case is reproducible from its
//! printed inputs.

use dlrv_vclock::VectorClock;
use proptest::prelude::*;

/// Expands a seed into a clock of `n` entries with small, collision-friendly values.
///
/// Small entry ranges (0..8) make equal and ordered clock pairs likely, so the laws
/// are exercised on the interesting cases (equality, comparability) and not only on
/// almost-surely-concurrent random clocks.
fn clock_from(mut seed: u64, n: usize) -> VectorClock {
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        seed = seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        entries.push((seed >> 33) % 8);
    }
    VectorClock::from_entries(entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn join_is_commutative(a in 0u64..1 << 40, b in 0u64..1 << 40, n in 2usize..6) {
        let (x, y) = (clock_from(a, n), clock_from(b, n));
        prop_assert_eq!(x.join(&y), y.join(&x));
    }

    #[test]
    fn join_is_idempotent_and_merge_agrees(a in 0u64..1 << 40, n in 2usize..6) {
        let x = clock_from(a, n);
        prop_assert_eq!(x.join(&x), x.clone());
        let mut merged = x.clone();
        merged.merge(&x);
        prop_assert_eq!(merged, x);
    }

    #[test]
    fn join_is_associative(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40, n in 2usize..6) {
        let (x, y, z) = (clock_from(a, n), clock_from(b, n), clock_from(c, n));
        prop_assert_eq!(x.join(&y).join(&z), x.join(&y.join(&z)));
    }

    #[test]
    fn merge_is_an_upper_bound(a in 0u64..1 << 40, b in 0u64..1 << 40, n in 2usize..6) {
        let (x, y) = (clock_from(a, n), clock_from(b, n));
        let j = x.join(&y);
        prop_assert!(x.leq(&j), "x must be below x ⊔ y");
        prop_assert!(y.leq(&j), "y must be below x ⊔ y");
        // And the meet is a lower bound, absorbed by the join.
        let m = x.meet(&y);
        prop_assert!(m.leq(&x) && m.leq(&y));
        // Absorption: x ⊔ (x ⊓ y) = x.
        prop_assert_eq!(x.join(&m), x.clone());
    }

    #[test]
    fn happened_before_is_irreflexive(a in 0u64..1 << 40, n in 2usize..6) {
        let x = clock_from(a, n);
        prop_assert!(!x.happened_before(&x));
        prop_assert!(!x.concurrent(&x), "a clock is never concurrent with itself");
    }

    #[test]
    fn happened_before_is_asymmetric(a in 0u64..1 << 40, b in 0u64..1 << 40, n in 2usize..6) {
        let (x, y) = (clock_from(a, n), clock_from(b, n));
        if x.happened_before(&y) {
            prop_assert!(!y.happened_before(&x));
            prop_assert!(!x.concurrent(&y));
        }
    }

    #[test]
    fn happened_before_is_transitive(
        a in 0u64..1 << 40,
        b in 0u64..1 << 40,
        c in 0u64..1 << 40,
        n in 2usize..6,
    ) {
        let (x, z) = (clock_from(a, n), clock_from(c, n));
        // Force a known x < y < z chain frequently: y = x ⊔ z ⊔ bump.
        let mut y = x.join(&z);
        y.increment((b % n as u64) as usize);
        prop_assert!(x.happened_before(&y) || x == y.meet(&x));
        if x.happened_before(&y) && y.happened_before(&z) {
            prop_assert!(x.happened_before(&z));
        }
        // Generic triple, too (usually concurrent, occasionally chained).
        let w = clock_from(b, n);
        if x.happened_before(&w) && w.happened_before(&z) {
            prop_assert!(x.happened_before(&z));
        }
    }

    #[test]
    fn exactly_one_ordering_holds(a in 0u64..1 << 40, b in 0u64..1 << 40, n in 2usize..6) {
        // Trichotomy over the partial order: equal, <, >, or concurrent — exactly one.
        let (x, y) = (clock_from(a, n), clock_from(b, n));
        let relations = [
            x == y,
            x.happened_before(&y),
            y.happened_before(&x),
            x.concurrent(&y),
        ];
        let holding = relations.iter().filter(|&&r| r).count();
        prop_assert!(holding == 1, "expected exactly one relation, got {} for {:?} vs {:?}", holding, x, y);
    }
}
