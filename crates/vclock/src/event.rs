//! Events of a distributed computation and the recorded computation itself.
//!
//! Following §2.1 and §4.2 of the thesis, an event of process `Pi` is an internal
//! variable update, a message send or a message receive, tagged with the vector clock
//! of `Pi` at the time of the event, the local sequence number and the resulting local
//! state (the valuation of `Pi`'s atomic propositions).

use crate::vc::VectorClock;
use dlrv_ltl::{Assignment, AtomRegistry, ProcessId};

/// The kind of an event (Definition of events in §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A local transition changing the process state.
    Internal,
    /// A message send to `to`; the local state is unchanged.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Program-level message identifier (pairs the send with its receive).
        msg_id: u64,
    },
    /// A broadcast send to every other process (one event, one clock tick); the local
    /// state is unchanged.  This models the paper's communication events, where a
    /// process "sends a message to each other process".
    Broadcast {
        /// Program-level message identifier shared by all copies of the broadcast.
        msg_id: u64,
    },
    /// A message receive from `from`; the local state is unchanged.
    Receive {
        /// Source process.
        from: ProcessId,
        /// Program-level message identifier (pairs the receive with its send).
        msg_id: u64,
    },
}

/// An event of a process, as delivered to the co-located monitor
/// (`e = ⟨T, D, VC, sn⟩` in §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The process at which the event occurred.
    pub process: ProcessId,
    /// Internal, send or receive.
    pub kind: EventKind,
    /// Local sequence number (1-based; sequence number 0 denotes the initial state).
    pub sn: u64,
    /// The vector clock of the process immediately after the event.
    pub vc: VectorClock,
    /// The valuation of the process's atomic propositions after the event.
    ///
    /// Only the bits of atoms owned by `process` are meaningful.
    pub state: Assignment,
    /// Simulated time (seconds) at which the event occurred.
    pub time: f64,
}

impl Event {
    /// True iff this event happened before `other` (vector-clock comparison).
    pub fn happened_before(&self, other: &Event) -> bool {
        self.vc.happened_before(&other.vc)
    }

    /// True iff this event and `other` are concurrent.
    pub fn concurrent(&self, other: &Event) -> bool {
        self.vc.concurrent(&other.vc)
    }
}

/// A recorded distributed computation: per-process initial states and event sequences.
///
/// This is the object the *oracle* works on (Chapter 3): it has global knowledge of
/// every event and can build the full computation lattice.  The decentralized monitors
/// never see a `Computation` — each only observes its own process's events and what
/// tokens carry.
#[derive(Debug, Clone, Default)]
pub struct Computation {
    /// Initial local state (proposition valuation) of each process.
    pub initial_states: Vec<Assignment>,
    /// Event sequence of each process, in local order (index `k` is the event with
    /// sequence number `k + 1`).
    pub events: Vec<Vec<Event>>,
}

impl Computation {
    /// Creates an empty computation for `n` processes with the given initial states.
    pub fn new(initial_states: Vec<Assignment>) -> Self {
        let n = initial_states.len();
        Computation {
            initial_states,
            events: vec![Vec::new(); n],
        }
    }

    /// Number of processes.
    pub fn n_processes(&self) -> usize {
        self.initial_states.len()
    }

    /// Total number of events across all processes.
    pub fn n_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Appends an event to its process's history.
    pub fn push(&mut self, event: Event) {
        let p = event.process;
        debug_assert_eq!(event.sn as usize, self.events[p].len() + 1);
        self.events[p].push(event);
    }

    /// The local state of process `p` after its first `k` events (`k = 0` is the
    /// initial state).
    pub fn local_state(&self, p: ProcessId, k: usize) -> Assignment {
        if k == 0 {
            self.initial_states[p]
        } else {
            self.events[p][k - 1].state
        }
    }

    /// The vector clock of process `p` after its first `k` events.
    pub fn local_clock(&self, p: ProcessId, k: usize) -> VectorClock {
        if k == 0 {
            VectorClock::zero(self.n_processes())
        } else {
            self.events[p][k - 1].vc.clone()
        }
    }

    /// Combines the per-process local states of a frontier into one global assignment.
    ///
    /// `frontier[i]` is the number of events of process `i` included in the cut.  The
    /// global assignment takes each process's owned atoms from that process's local
    /// state.
    pub fn global_state(&self, frontier: &[usize], registry: &AtomRegistry) -> Assignment {
        let mut global = Assignment::ALL_FALSE;
        for (p, &k) in frontier.iter().enumerate() {
            let local = self.local_state(p, k);
            for atom in registry.atoms_of_process(p) {
                global.set(atom, local.get(atom));
            }
        }
        global
    }

    /// True iff the frontier is a consistent cut (Definition 4): for every included
    /// event, all events it depends on are also included.
    pub fn is_consistent_frontier(&self, frontier: &[usize]) -> bool {
        for (p, &k) in frontier.iter().enumerate() {
            let vc = self.local_clock(p, k);
            for (q, &kq) in frontier.iter().enumerate() {
                if q != p && vc.get(q) > kq as u64 {
                    return false;
                }
            }
        }
        true
    }

    /// The final frontier (all events of every process).
    pub fn final_frontier(&self) -> Vec<usize> {
        self.events.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;

    #[test]
    fn paper_happened_before_examples() {
        let (comp, _) = running_example();
        // e1_0 (send) happened before e2_2 (x2=15): via the message.
        let e10 = &comp.events[0][0];
        let e22 = &comp.events[1][1];
        assert!(e10.happened_before(e22));
        // e1_2 (x1=10, third event of P0) is concurrent with e2_1 (recv at P1)?  The
        // paper states e1_2 ‖ e2_1 using 0-based labels; here: P0's third event and
        // P1's second event are concurrent.
        let e12 = &comp.events[0][2];
        let e21 = &comp.events[1][1];
        assert!(e12.concurrent(e21));
    }

    #[test]
    fn consistent_cut_examples_from_fig_2_2() {
        let (comp, _) = running_example();
        // ⟨e1_1, e2_0⟩: P0 has executed 2 events, P1 has executed 1 → consistent.
        assert!(comp.is_consistent_frontier(&[2, 1]));
        // ⟨e1_3, e2_2⟩: P0 executed all 4 (including recv of m2), P1 executed 3 →
        // inconsistent, because P0's recv depends on P1's send (its 4th event).
        assert!(!comp.is_consistent_frontier(&[4, 3]));
        // The empty cut and the full cut are always consistent.
        assert!(comp.is_consistent_frontier(&[0, 0]));
        assert!(comp.is_consistent_frontier(&comp.final_frontier()));
    }

    #[test]
    fn global_state_combines_local_states() {
        let (comp, reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let a1 = reg.lookup("x2>=15").unwrap();
        // Frontier [2, 2]: x1=5 (a0 true), x2=15 (a1 true).
        let g = comp.global_state(&[2, 2], &reg);
        assert!(g.get(a0) && g.get(a1));
        let g0 = comp.global_state(&[0, 0], &reg);
        assert!(!g0.get(a0) && !g0.get(a1));
    }

    #[test]
    fn local_state_and_clock_at_zero() {
        let (comp, _) = running_example();
        assert_eq!(comp.local_state(0, 0), Assignment::ALL_FALSE);
        assert_eq!(comp.local_clock(1, 0), VectorClock::zero(2));
        assert_eq!(comp.n_events(), 8);
        assert_eq!(comp.n_processes(), 2);
    }
}
