//! Batched vector-clock comparisons (§4.3 support).
//!
//! The decentralized monitor repeatedly compares *one* clock against *many* —
//! a fresh event's clock against every live global view's cut, or a candidate
//! view's cut against every retained view during deduplication.  Doing that
//! with `partial_cmp_clock` in a loop re-walks both clocks per pair and, when
//! the results are collected, reallocates the output vector per scan.  This
//! module provides the single-pass, buffer-reusing variants the hot path uses:
//! the caller keeps one scratch `Vec` alive across events and every scan is a
//! tight pass over contiguous entry slices.

use crate::vc::VectorClock;
use std::cmp::Ordering;

/// Compares `one` against every clock yielded by `others` in a single pass,
/// writing one `Option<Ordering>` per clock into `out` (cleared first, so the
/// buffer can be recycled across calls).  Each entry is exactly
/// `one.partial_cmp_clock(other)`: `Less` when `one` happened before the other
/// clock, `None` when they are concurrent.
pub fn compare_many<'a, I>(one: &VectorClock, others: I, out: &mut Vec<Option<Ordering>>)
where
    I: IntoIterator<Item = &'a VectorClock>,
{
    out.clear();
    let a = one.entries();
    for other in others {
        out.push(cmp_entries(a, other.entries()));
    }
}

/// Returns the index of the first clock in `others` equal to `one`, scanning
/// entry slices directly without building an intermediate result vector.  This
/// is the primitive behind view deduplication: "is this cut already tracked?"
pub fn first_equal<'a, I>(one: &VectorClock, others: I) -> Option<usize>
where
    I: IntoIterator<Item = &'a VectorClock>,
{
    let a = one.entries();
    others
        .into_iter()
        .position(|other| a == other.entries())
}

/// Single-pass partial-order comparison over raw entry slices.  Tracks the
/// "some component strictly less / strictly greater" facts in one walk instead
/// of the two full `leq` walks `partial_cmp_clock` performs.
#[inline]
fn cmp_entries(a: &[u64], b: &[u64]) -> Option<Ordering> {
    debug_assert_eq!(a.len(), b.len());
    let mut less = false;
    let mut greater = false;
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            Ordering::Less => less = true,
            Ordering::Greater => greater = true,
            Ordering::Equal => {}
        }
        if less && greater {
            return None;
        }
    }
    match (less, greater) {
        (false, false) => Some(Ordering::Equal),
        (true, false) => Some(Ordering::Less),
        (false, true) => Some(Ordering::Greater),
        (true, true) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    #[test]
    fn compare_many_matches_pairwise_partial_cmp() {
        let one = vc(&[2, 1, 3]);
        let others = [
            vc(&[2, 1, 3]), // equal
            vc(&[1, 1, 2]), // one is greater
            vc(&[2, 2, 3]), // one is less
            vc(&[3, 0, 3]), // concurrent
        ];
        let mut out = Vec::new();
        compare_many(&one, others.iter(), &mut out);
        let expected: Vec<_> = others.iter().map(|o| one.partial_cmp_clock(o)).collect();
        assert_eq!(out, expected);
        assert_eq!(
            out,
            vec![
                Some(Ordering::Equal),
                Some(Ordering::Greater),
                Some(Ordering::Less),
                None
            ]
        );
    }

    #[test]
    fn compare_many_reuses_the_output_buffer() {
        let one = vc(&[1, 1]);
        let mut out = Vec::with_capacity(8);
        compare_many(&one, [vc(&[0, 0]), vc(&[1, 1])].iter(), &mut out);
        assert_eq!(out.len(), 2);
        let cap = out.capacity();
        compare_many(&one, [vc(&[2, 2])].iter(), &mut out);
        assert_eq!(out, vec![Some(Ordering::Less)]);
        assert_eq!(out.capacity(), cap, "buffer is recycled, not reallocated");
    }

    #[test]
    fn first_equal_finds_only_exact_matches() {
        let one = vc(&[1, 2]);
        let pool = [vc(&[1, 1]), vc(&[2, 2]), vc(&[1, 2]), vc(&[1, 2])];
        assert_eq!(first_equal(&one, pool.iter()), Some(2));
        assert_eq!(first_equal(&vc(&[9, 9]), pool.iter()), None);
        assert_eq!(first_equal(&one, std::iter::empty()), None);
    }

    #[test]
    fn exhaustive_small_clocks_agree_with_partial_cmp() {
        // Every pair of 3-entry clocks with entries in 0..3: the single-pass
        // comparison must agree with the reference implementation.
        let mut clocks = Vec::new();
        for a in 0..3u64 {
            for b in 0..3u64 {
                for c in 0..3u64 {
                    clocks.push(vc(&[a, b, c]));
                }
            }
        }
        let mut out = Vec::new();
        for one in &clocks {
            compare_many(one, clocks.iter(), &mut out);
            for (other, got) in clocks.iter().zip(out.iter()) {
                assert_eq!(*got, one.partial_cmp_clock(other));
            }
        }
    }
}
