//! Lamport-style vector clocks (Definition in §4.2 of the thesis).
//!
//! A vector clock `VC` of process `Pi` maps every process index `j` to the number of
//! events of `Pj` that `Pi` knows to have happened.  Vector clocks are piggybacked on
//! program messages and on monitor tokens; comparing them implements the
//! happened-before relation and detects concurrency and inconsistency of cuts.

use std::cmp::Ordering;
use std::fmt;

/// A vector clock over a fixed number of processes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for `n` processes.
    pub fn zero(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Builds a clock from explicit entries.
    pub fn from_entries(entries: Vec<u64>) -> Self {
        VectorClock { entries }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the clock has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for process `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.entries[i]
    }

    /// Sets the entry for process `i`.
    pub fn set(&mut self, i: usize, value: u64) {
        self.entries[i] = value;
    }

    /// Increments the entry of process `i` (called when `Pi` produces an event).
    pub fn increment(&mut self, i: usize) {
        self.entries[i] += 1;
    }

    /// Component-wise maximum with `other` (called on message receipt).
    pub fn merge(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.entries.iter_mut().zip(other.entries.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Returns the component-wise maximum of two clocks.
    pub fn join(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Returns the component-wise minimum of two clocks.
    pub fn meet(&self, other: &VectorClock) -> VectorClock {
        debug_assert_eq!(self.len(), other.len());
        VectorClock {
            entries: self
                .entries
                .iter()
                .zip(other.entries.iter())
                .map(|(a, b)| (*a).min(*b))
                .collect(),
        }
    }

    /// `self ≤ other` component-wise.
    pub fn leq(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.entries
            .iter()
            .zip(other.entries.iter())
            .all(|(a, b)| a <= b)
    }

    /// Happened-before: `self < other` (≤ and not equal).
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.leq(other) && self != other
    }

    /// Two clocks are concurrent when neither happened before the other.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Partial-order comparison of clocks.
    pub fn partial_cmp_clock(&self, other: &VectorClock) -> Option<Ordering> {
        if self == other {
            Some(Ordering::Equal)
        } else if self.leq(other) {
            Some(Ordering::Less)
        } else if other.leq(self) {
            Some(Ordering::Greater)
        } else {
            None
        }
    }

    /// Raw entries.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Overwrites this clock with `other`, reusing the existing entry buffer
    /// (unlike `*self = other.clone()`, which allocates a fresh one).  The slab
    /// recyclers of the monitor hot path lean on this to turn per-event clock
    /// clones into plain memcpys.
    pub fn copy_from(&mut self, other: &VectorClock) {
        self.entries.clear();
        self.entries.extend_from_slice(&other.entries);
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_and_get() {
        let mut vc = VectorClock::zero(3);
        vc.increment(1);
        vc.increment(1);
        vc.increment(2);
        assert_eq!(vc.entries(), &[0, 2, 1]);
        assert_eq!(vc.get(1), 2);
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = VectorClock::from_entries(vec![3, 0, 1]);
        let b = VectorClock::from_entries(vec![1, 2, 1]);
        a.merge(&b);
        assert_eq!(a.entries(), &[3, 2, 1]);
    }

    #[test]
    fn happened_before_and_concurrency() {
        let a = VectorClock::from_entries(vec![1, 0]);
        let b = VectorClock::from_entries(vec![2, 1]);
        let c = VectorClock::from_entries(vec![0, 1]);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        assert!(a.concurrent(&c));
        assert!(!a.concurrent(&a), "a clock is not concurrent with itself");
        assert!(!a.happened_before(&a));
    }

    #[test]
    fn join_meet_lattice_laws() {
        let a = VectorClock::from_entries(vec![2, 0, 5]);
        let b = VectorClock::from_entries(vec![1, 3, 4]);
        let j = a.join(&b);
        let m = a.meet(&b);
        assert_eq!(j.entries(), &[2, 3, 5]);
        assert_eq!(m.entries(), &[1, 0, 4]);
        assert!(m.leq(&a) && m.leq(&b));
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn partial_ordering() {
        let a = VectorClock::from_entries(vec![1, 1]);
        let b = VectorClock::from_entries(vec![1, 2]);
        let c = VectorClock::from_entries(vec![2, 1]);
        assert_eq!(a.partial_cmp_clock(&a), Some(Ordering::Equal));
        assert_eq!(a.partial_cmp_clock(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_clock(&a), Some(Ordering::Greater));
        assert_eq!(b.partial_cmp_clock(&c), None);
    }

    #[test]
    fn display_formats_entries() {
        let vc = VectorClock::from_entries(vec![1, 0, 2]);
        assert_eq!(format!("{vc}"), "[1,0,2]");
    }
}
