//! Shared example computations used by tests, documentation and examples across the
//! workspace.

use crate::event::{Computation, Event, EventKind};
use crate::vc::VectorClock;
use dlrv_ltl::{Assignment, AtomRegistry};

/// Builds the running example of Fig. 2.1 of the thesis: two processes,
///
/// ```text
/// P1: send(P2,"hello"); x1=5; x1=10; recv(m2);
/// P2: recv(m1); x2=15; x2=20; send(P1,"world");
/// ```
///
/// with atoms `a0 = "x1>=5"` owned by process 0 and `a1 = "x2>=15"` owned by process 1.
/// The returned computation contains 8 events and its lattice is the one drawn in
/// Fig. 2.2b.
pub fn running_example() -> (Computation, AtomRegistry) {
    let mut reg = AtomRegistry::new();
    let a0 = reg.intern("x1>=5", 0);
    let a1 = reg.intern("x2>=15", 1);
    let mut comp = Computation::new(vec![Assignment::ALL_FALSE, Assignment::ALL_FALSE]);

    // P0 events: e1 send(m1), e2 x1=5, e3 x1=10, e4 recv(m2)
    let mut vc0 = VectorClock::zero(2);
    vc0.increment(0);
    comp.push(Event {
        process: 0,
        kind: EventKind::Send { to: 1, msg_id: 1 },
        sn: 1,
        vc: vc0.clone(),
        state: Assignment::ALL_FALSE,
        time: 0.0,
    });
    vc0.increment(0);
    comp.push(Event {
        process: 0,
        kind: EventKind::Internal,
        sn: 2,
        vc: vc0.clone(),
        state: Assignment::from_true_atoms([a0]),
        time: 1.0,
    });
    vc0.increment(0);
    comp.push(Event {
        process: 0,
        kind: EventKind::Internal,
        sn: 3,
        vc: vc0.clone(),
        state: Assignment::from_true_atoms([a0]),
        time: 2.0,
    });

    // P1 events: e1 recv(m1), e2 x2=15, e3 x2=20, e4 send(m2)
    let mut vc1 = VectorClock::zero(2);
    vc1.increment(1);
    vc1.merge(&VectorClock::from_entries(vec![1, 0])); // received m1 sent at [1,0]
    comp.push(Event {
        process: 1,
        kind: EventKind::Receive { from: 0, msg_id: 1 },
        sn: 1,
        vc: vc1.clone(),
        state: Assignment::ALL_FALSE,
        time: 0.5,
    });
    vc1.increment(1);
    comp.push(Event {
        process: 1,
        kind: EventKind::Internal,
        sn: 2,
        vc: vc1.clone(),
        state: Assignment::from_true_atoms([a1]),
        time: 1.5,
    });
    vc1.increment(1);
    comp.push(Event {
        process: 1,
        kind: EventKind::Internal,
        sn: 3,
        vc: vc1.clone(),
        state: Assignment::from_true_atoms([a1]),
        time: 2.5,
    });
    vc1.increment(1);
    comp.push(Event {
        process: 1,
        kind: EventKind::Send { to: 0, msg_id: 2 },
        sn: 4,
        vc: vc1.clone(),
        state: Assignment::from_true_atoms([a1]),
        time: 3.0,
    });

    // P0 receives m2.
    vc0.increment(0);
    vc0.merge(&vc1);
    comp.push(Event {
        process: 0,
        kind: EventKind::Receive { from: 1, msg_id: 2 },
        sn: 4,
        vc: vc0,
        state: Assignment::from_true_atoms([a0]),
        time: 3.5,
    });

    (comp, reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_is_well_formed() {
        let (comp, reg) = running_example();
        assert_eq!(comp.n_processes(), 2);
        assert_eq!(comp.n_events(), 8);
        assert_eq!(reg.len(), 2);
        assert!(comp.is_consistent_frontier(&comp.final_frontier()));
    }
}
