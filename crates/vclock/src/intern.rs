//! Hash-consing of vector clocks (§4.3 support).
//!
//! The decentralized monitors copy vector clocks constantly: every token carries the
//! clock of the event that spawned it, and tokens themselves are cloned whenever they
//! fan out per candidate transition or per destination.  Most of those copies are
//! *equal* — a single program event fans out into many tokens that all reference the
//! same clock.  A [`ClockIntern`] pool deduplicates equal clocks behind a
//! [`SharedClock`] (`Arc<VectorClock>`), so the fan-out shares one allocation instead
//! of cloning the entry vector each time.
//!
//! Interned clocks are immutable; code that needs to *mutate* a clock (cut
//! construction inside tokens) keeps using plain [`VectorClock`] values.
//!
//! ```
//! use dlrv_vclock::{ClockIntern, VectorClock};
//!
//! let mut pool = ClockIntern::new();
//! let a = pool.intern(&VectorClock::from_entries(vec![1, 0, 2]));
//! let b = pool.intern(&VectorClock::from_entries(vec![1, 0, 2]));
//! // Equal clocks share one allocation …
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!(pool.len(), 1);
//! // … distinct clocks do not.
//! let c = pool.intern(&VectorClock::from_entries(vec![3, 0, 2]));
//! assert!(!std::sync::Arc::ptr_eq(&a, &c));
//! assert_eq!(pool.hits(), 1);
//! ```

use crate::vc::VectorClock;
use std::collections::HashSet;
use std::sync::Arc;

/// An immutable, shareable vector clock (one allocation, many holders).
pub type SharedClock = Arc<VectorClock>;

/// A hash-consing pool of vector clocks.
///
/// [`intern`](ClockIntern::intern) returns the pool's canonical [`SharedClock`] for a
/// clock value, cloning the clock only the first time a value is seen (the canonical
/// `Arc` doubles as the pool key via `Borrow<VectorClock>`, so a hit costs one hash
/// probe and one refcount bump).  The pool is an ordinary owned value — each monitor
/// keeps its own, so no cross-thread synchronization is involved (the `Arc` only
/// shares the *payload*).
#[derive(Debug, Clone, Default)]
pub struct ClockIntern {
    pool: HashSet<SharedClock>,
    hits: usize,
}

impl ClockIntern {
    /// An empty pool.
    pub fn new() -> Self {
        ClockIntern::default()
    }

    /// Returns the canonical shared clock equal to `vc`, cloning it on first use.
    pub fn intern(&mut self, vc: &VectorClock) -> SharedClock {
        if let Some(shared) = self.pool.get(vc) {
            self.hits += 1;
            return shared.clone();
        }
        let shared: SharedClock = Arc::new(vc.clone());
        self.pool.insert(shared.clone());
        shared
    }

    /// Number of distinct clocks interned so far.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Number of intern calls served from the pool (clone-traffic saved).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Drops every pooled clock (outstanding `SharedClock`s stay valid — only the
    /// canonical table is cleared).  Long-running monitors call this between
    /// sessions so the pool does not grow unboundedly.
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_equal_clocks() {
        let mut pool = ClockIntern::new();
        let a = pool.intern(&VectorClock::from_entries(vec![1, 2]));
        let b = pool.intern(&VectorClock::from_entries(vec![1, 2]));
        let c = pool.intern(&VectorClock::from_entries(vec![2, 1]));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn clear_keeps_outstanding_clocks_valid() {
        let mut pool = ClockIntern::new();
        let a = pool.intern(&VectorClock::zero(3));
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(a.entries(), &[0, 0, 0]);
        // Re-interning after clear allocates a fresh canonical copy.
        let b = pool.intern(&VectorClock::zero(3));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
    }
}
