//! Vector clocks, events, consistent cuts, computation lattices and computation
//! slicing — the partial-order substrate of the decentralized monitoring algorithm.
//!
//! The thesis assumes the standard asynchronous message-passing model (§2.1): processes
//! have no shared clock, communicate over reliable FIFO channels, and events are
//! partially ordered by Lamport's happened-before relation, tracked with vector clocks.
//! This crate provides:
//!
//! * [`VectorClock`] — vector clocks with happened-before, concurrency, join and meet.
//! * [`Event`] / [`Computation`] — recorded events (internal / send / receive) with
//!   their clocks and local states, and whole recorded computations.
//! * [`Lattice`] — the computation lattice of consistent cuts (Definition 6) and the
//!   oracle of Chapter 3 ([`oracle_evaluate`]) that runs a monitor automaton over all
//!   lattice paths; this is the ground truth for soundness/completeness testing and the
//!   conceptual baseline the decentralized algorithm is compared against.
//! * [`mod@slice`] — conjunctive-predicate detection via least consistent cuts
//!   (computation slicing, Definitions 13–15).
//! * [`mod@intern`] — hash-consing of vector clocks ([`ClockIntern`] /
//!   [`SharedClock`]), used by the monitors to share one allocation across the many
//!   equal clocks a token fan-out produces (§4.3 support).
//!
//! # Example
//!
//! Vector clocks implement the happened-before partial order: comparing the clocks of
//! two events tells whether one causally precedes the other or they are concurrent.
//!
//! ```
//! use dlrv_vclock::VectorClock;
//!
//! // P0 produced two events; P1 produced one event after hearing about P0's first.
//! let send = VectorClock::from_entries(vec![1, 0]);
//! let recv = VectorClock::from_entries(vec![1, 1]);
//! let other = VectorClock::from_entries(vec![2, 0]);
//!
//! assert!(send.happened_before(&recv));
//! assert!(recv.concurrent(&other));
//! assert_eq!(send.join(&other).entries(), &[2, 0]);
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod event;
pub mod fixtures;
pub mod intern;
pub mod lattice;
pub mod slice;
pub mod vc;

pub use batch::{compare_many, first_equal};
pub use event::{Computation, Event, EventKind};
pub use intern::{ClockIntern, SharedClock};
pub use lattice::{evaluate_path, oracle_evaluate, CutId, Lattice, OracleResult};
pub use slice::{is_join_irreducible, least_consistent_cut_satisfying, slice_frontiers};
pub use vc::VectorClock;
