//! The computation lattice (Definition 6) and the oracle of Chapter 3.
//!
//! The lattice's vertices are the consistent cuts of a recorded [`Computation`],
//! identified by their frontiers; edges advance exactly one process by one event.  The
//! oracle runs the monitor automaton along lattice paths: for every vertex it keeps the
//! set of automaton states reachable over *some* path from the initial cut, which gives
//! the set of possible verdicts at the final cut — the reference against which the
//! decentralized algorithm's soundness and completeness are tested.

use crate::event::Computation;
use dlrv_automaton::{MonitorAutomaton, StateId};
use dlrv_ltl::{AtomRegistry, Verdict};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Identifier of a lattice vertex.
pub type CutId = usize;

/// The computation lattice of a recorded computation.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Frontier of each vertex (`frontier[i]` = number of events of process `i`).
    pub frontiers: Vec<Vec<usize>>,
    /// Successor edges: `succs[c]` lists `(process, successor)` pairs.
    pub succs: Vec<Vec<(usize, CutId)>>,
    /// Index of the initial cut (the empty frontier).
    pub bottom: CutId,
    /// Index of the final cut (all events), if the full frontier is consistent.
    pub top: Option<CutId>,
}

impl Lattice {
    /// Builds the full computation lattice of `comp` by breadth-first exploration of
    /// consistent frontiers.
    ///
    /// The lattice can be exponential in the number of processes; callers should keep
    /// computations small (this is an oracle, not the monitoring algorithm).
    pub fn build(comp: &Computation) -> Lattice {
        let n = comp.n_processes();
        let mut index: HashMap<Vec<usize>, CutId> = HashMap::new();
        let mut frontiers: Vec<Vec<usize>> = Vec::new();
        let mut succs: Vec<Vec<(usize, CutId)>> = Vec::new();

        let bottom_frontier = vec![0usize; n];
        index.insert(bottom_frontier.clone(), 0);
        frontiers.push(bottom_frontier.clone());
        succs.push(Vec::new());

        let mut queue = VecDeque::from([0usize]);
        while let Some(c) = queue.pop_front() {
            let frontier = frontiers[c].clone();
            for p in 0..n {
                if frontier[p] >= comp.events[p].len() {
                    continue;
                }
                let mut next = frontier.clone();
                next[p] += 1;
                if !comp.is_consistent_frontier(&next) {
                    continue;
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = frontiers.len();
                        index.insert(next.clone(), id);
                        frontiers.push(next.clone());
                        succs.push(Vec::new());
                        queue.push_back(id);
                        id
                    }
                };
                succs[c].push((p, id));
            }
        }

        let top = index.get(&comp.final_frontier()).copied();
        Lattice {
            frontiers,
            succs,
            bottom: 0,
            top,
        }
    }

    /// Number of vertices.
    pub fn n_cuts(&self) -> usize {
        self.frontiers.len()
    }

    /// Enumerates all maximal paths (from bottom to top) as sequences of cut ids.
    ///
    /// Exponential; intended for very small lattices in tests.
    pub fn enumerate_paths(&self) -> Vec<Vec<CutId>> {
        let Some(top) = self.top else {
            return Vec::new();
        };
        let mut paths = Vec::new();
        let mut stack = vec![(self.bottom, vec![self.bottom])];
        while let Some((c, path)) = stack.pop() {
            if c == top {
                paths.push(path);
                continue;
            }
            for &(_, next) in &self.succs[c] {
                let mut p = path.clone();
                p.push(next);
                stack.push((next, p));
            }
        }
        paths
    }
}

/// The oracle's evaluation of a monitor automaton over a computation lattice.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// For every cut, the set of automaton states reachable along some lattice path
    /// from the initial cut (after feeding every global state along the path,
    /// including the initial one, to the automaton).
    pub reachable_states: Vec<BTreeSet<StateId>>,
    /// The set of possible verdicts at the final cut.
    pub final_verdicts: BTreeSet<Verdict>,
    /// The set of automaton states at the final cut.
    pub final_states: BTreeSet<StateId>,
    /// Cuts at which some path first reaches a ⊤/⊥ state ("pivot" cuts for final
    /// verdicts).
    pub violation_reachable: bool,
    /// True when some path reaches a ⊤ state.
    pub satisfaction_reachable: bool,
}

/// Runs `automaton` over every path of `lattice` (by dynamic programming on the DAG)
/// and collects the reachable automaton states per cut.
///
/// The automaton consumes the sequence of global states along a path *including the
/// initial global state*, mirroring the oracle of Chapter 3 (each global state in the
/// trace is run through the automaton one by one).
pub fn oracle_evaluate(
    comp: &Computation,
    lattice: &Lattice,
    automaton: &MonitorAutomaton,
    registry: &AtomRegistry,
) -> OracleResult {
    let n_cuts = lattice.n_cuts();
    let mut reachable: Vec<BTreeSet<StateId>> = vec![BTreeSet::new(); n_cuts];

    // Initial cut: automaton has consumed the initial global state.
    let init_sigma = comp.global_state(&lattice.frontiers[lattice.bottom], registry);
    let q0 = automaton.step(automaton.initial, init_sigma);
    reachable[lattice.bottom].insert(q0);

    // Process cuts in topological order (by total event count, which is a valid
    // topological order of the lattice DAG).
    let mut order: Vec<CutId> = (0..n_cuts).collect();
    order.sort_by_key(|&c| lattice.frontiers[c].iter().sum::<usize>());

    for &c in &order {
        let states: Vec<StateId> = reachable[c].iter().copied().collect();
        for &(_, next) in &lattice.succs[c] {
            let sigma = comp.global_state(&lattice.frontiers[next], registry);
            for &q in &states {
                let q2 = automaton.step(q, sigma);
                reachable[next].insert(q2);
            }
        }
    }

    let final_states: BTreeSet<StateId> = lattice
        .top
        .map(|t| reachable[t].clone())
        .unwrap_or_default();
    let final_verdicts: BTreeSet<Verdict> =
        final_states.iter().map(|&q| automaton.verdict(q)).collect();
    let violation_reachable = reachable
        .iter()
        .any(|set| set.iter().any(|&q| automaton.verdict(q) == Verdict::False));
    let satisfaction_reachable = reachable
        .iter()
        .any(|set| set.iter().any(|&q| automaton.verdict(q) == Verdict::True));

    OracleResult {
        reachable_states: reachable,
        final_verdicts,
        final_states,
        violation_reachable,
        satisfaction_reachable,
    }
}

/// Evaluates `automaton` along one explicit lattice path and returns the final state.
pub fn evaluate_path(
    comp: &Computation,
    lattice: &Lattice,
    path: &[CutId],
    automaton: &MonitorAutomaton,
    registry: &AtomRegistry,
) -> StateId {
    let mut q = automaton.initial;
    for &cut in path {
        let sigma = comp.global_state(&lattice.frontiers[cut], registry);
        q = automaton.step(q, sigma);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use dlrv_ltl::Formula;

    #[test]
    fn lattice_of_running_example_matches_fig_2_2b() {
        let (comp, _) = running_example();
        let lattice = Lattice::build(&comp);
        // Fig. 2.2b draws 17 consistent cuts for the running example (including the
        // empty cut and the full cut).
        assert_eq!(lattice.n_cuts(), 17);
        assert!(lattice.top.is_some());
        // Every successor differs from its predecessor in exactly one process by one.
        for c in 0..lattice.n_cuts() {
            for &(p, next) in &lattice.succs[c] {
                let a = &lattice.frontiers[c];
                let b = &lattice.frontiers[next];
                assert_eq!(b[p], a[p] + 1);
                for q in 0..comp.n_processes() {
                    if q != p {
                        assert_eq!(a[q], b[q]);
                    }
                }
            }
        }
    }

    #[test]
    fn all_lattice_cuts_are_consistent() {
        let (comp, _) = running_example();
        let lattice = Lattice::build(&comp);
        for f in &lattice.frontiers {
            assert!(comp.is_consistent_frontier(f));
        }
    }

    #[test]
    fn paths_of_running_example() {
        let (comp, _) = running_example();
        let lattice = Lattice::build(&comp);
        let paths = lattice.enumerate_paths();
        assert!(!paths.is_empty());
        // Every path has length n_events + 1 (each step adds one event).
        for p in &paths {
            assert_eq!(p.len(), comp.n_events() + 1);
            assert_eq!(p[0], lattice.bottom);
            assert_eq!(Some(*p.last().unwrap()), lattice.top);
        }
    }

    #[test]
    fn oracle_on_paper_property() {
        // ψ over the running example: G((x1>=5) -> ((x2>=15) U (x1==10))).
        // With the registry of the fixture (only x1>=5, x2>=15) we instead check the
        // simpler property G !(x1>=5 && !x2>=15): some interleavings violate it
        // (x1 reaches 5 before x2 reaches 15) and some do not.
        let (comp, mut reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let a1 = reg.lookup("x2>=15").unwrap();
        let phi = Formula::globally(Formula::not(Formula::and(
            Formula::Atom(a0),
            Formula::not(Formula::Atom(a1)),
        )));
        let m = MonitorAutomaton::synthesize(&phi, &reg);
        let lattice = Lattice::build(&comp);
        let oracle = oracle_evaluate(&comp, &lattice, &m, &reg);
        // Both ⊥ (bad interleaving) and ? (good interleaving) must be possible.
        assert!(oracle.final_verdicts.contains(&Verdict::False));
        assert!(oracle.final_verdicts.contains(&Verdict::Unknown));
        assert!(oracle.violation_reachable);
        let _ = &mut reg;
    }

    #[test]
    fn oracle_dp_agrees_with_explicit_path_enumeration() {
        let (comp, reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let a1 = reg.lookup("x2>=15").unwrap();
        let phi = Formula::eventually(Formula::and(Formula::Atom(a0), Formula::Atom(a1)));
        let m = MonitorAutomaton::synthesize(&phi, &reg);
        let lattice = Lattice::build(&comp);
        let oracle = oracle_evaluate(&comp, &lattice, &m, &reg);

        let mut explicit: BTreeSet<StateId> = BTreeSet::new();
        for path in lattice.enumerate_paths() {
            explicit.insert(evaluate_path(&comp, &lattice, &path, &m, &reg));
        }
        assert_eq!(explicit, oracle.final_states);
    }

    #[test]
    fn empty_computation_lattice_is_a_single_cut() {
        let comp = Computation::new(vec![
            dlrv_ltl::Assignment::ALL_FALSE,
            dlrv_ltl::Assignment::ALL_FALSE,
        ]);
        let lattice = Lattice::build(&comp);
        assert_eq!(lattice.n_cuts(), 1);
        assert_eq!(lattice.top, Some(lattice.bottom));
        assert_eq!(lattice.enumerate_paths().len(), 1);
    }
}
