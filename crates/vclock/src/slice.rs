//! Computation slicing for conjunctive global predicates (Definitions 13–15).
//!
//! The decentralized algorithm borrows one ingredient from computation slicing
//! (Mittal & Garg): the *least consistent cut* whose global state satisfies a
//! conjunctive predicate.  This module implements that detection on a recorded
//! computation (the monitors implement the distributed, token-based version; this
//! centralized version is used by the oracle, by tests and by the duplicate-global-view
//! optimization's specification).

use crate::event::Computation;
use dlrv_ltl::{AtomRegistry, Cube};

/// The least consistent cut (as a frontier) at or after `start` whose global state
/// satisfies the conjunctive predicate `cube`, or `None` if no such cut exists.
///
/// This is the classic conjunctive-predicate detection fixpoint: repeatedly advance any
/// process whose local conjunct is not satisfied, and advance processes as needed to
/// restore cut consistency.  Because advancing is monotone, the result (when it exists)
/// is the least such cut above `start`.
pub fn least_consistent_cut_satisfying(
    comp: &Computation,
    registry: &AtomRegistry,
    cube: &Cube,
    start: &[usize],
) -> Option<Vec<usize>> {
    let n = comp.n_processes();
    assert_eq!(start.len(), n);
    let per_process = cube.conjuncts_by_process(registry);
    let mut frontier = start.to_vec();

    loop {
        let mut advanced = false;

        // 1. Restore consistency: if some included event knows about more events of
        //    process q than the frontier includes, advance q.
        for p in 0..n {
            let vc = comp.local_clock(p, frontier[p]);
            for (q, included) in frontier.iter_mut().enumerate() {
                let known = vc.get(q);
                if q != p && known > *included as u64 {
                    if known as usize > comp.events[q].len() {
                        return None;
                    }
                    *included = known as usize;
                    advanced = true;
                }
            }
        }
        if advanced {
            continue;
        }

        // 2. Advance any process whose local conjunct is violated.
        let mut all_satisfied = true;
        for (&p, conjunct) in &per_process {
            let local = comp.local_state(p, frontier[p]);
            if !conjunct.eval(local) {
                all_satisfied = false;
                if frontier[p] >= comp.events[p].len() {
                    return None; // the process can never satisfy its conjunct
                }
                frontier[p] += 1;
                advanced = true;
            }
        }

        if all_satisfied {
            debug_assert!(comp.is_consistent_frontier(&frontier));
            return Some(frontier);
        }
        if !advanced {
            return None;
        }
    }
}

/// The slice of a computation with respect to a conjunctive predicate: all consistent
/// cuts (frontiers) whose global state satisfies the predicate.
///
/// This explicit enumeration is exponential and exists for testing and for small
/// oracle-side analyses only.
pub fn slice_frontiers(
    comp: &Computation,
    registry: &AtomRegistry,
    cube: &Cube,
) -> Vec<Vec<usize>> {
    let lattice = crate::lattice::Lattice::build(comp);
    lattice
        .frontiers
        .iter()
        .filter(|f| cube.eval(comp.global_state(f, registry)))
        .cloned()
        .collect()
}

/// True iff `frontier` is a join-irreducible element of the sub-lattice satisfying
/// `cube`: it satisfies the predicate and it is not the join (component-wise maximum)
/// of two *other* satisfying cuts.
pub fn is_join_irreducible(
    comp: &Computation,
    registry: &AtomRegistry,
    cube: &Cube,
    frontier: &[usize],
) -> bool {
    if !cube.eval(comp.global_state(frontier, registry)) {
        return false;
    }
    let all = slice_frontiers(comp, registry, cube);
    for a in &all {
        for b in &all {
            if a == frontier || b == frontier {
                continue;
            }
            let join: Vec<usize> = a.iter().zip(b.iter()).map(|(x, y)| *x.max(y)).collect();
            if join == frontier {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;
    use dlrv_ltl::Literal;

    #[test]
    fn least_cut_for_conjunction_of_both_processes() {
        let (comp, reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let a1 = reg.lookup("x2>=15").unwrap();
        // x1>=5 && x2>=15: earliest when P0 has done 2 events (send, x1=5) and P1 has
        // done 2 events (recv, x2=15).
        let cube = Cube::new([Literal::pos(a0), Literal::pos(a1)]).unwrap();
        let cut = least_consistent_cut_satisfying(&comp, &reg, &cube, &[0, 0]).unwrap();
        assert_eq!(cut, vec![2, 2]);
    }

    #[test]
    fn least_cut_respects_start() {
        let (comp, reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let cube = Cube::new([Literal::pos(a0)]).unwrap();
        // Starting from the empty cut, the least cut is [2, 0].
        assert_eq!(
            least_consistent_cut_satisfying(&comp, &reg, &cube, &[0, 0]).unwrap(),
            vec![2, 0]
        );
        // Starting after P1 already advanced, the least cut keeps P1's position.
        assert_eq!(
            least_consistent_cut_satisfying(&comp, &reg, &cube, &[0, 2]).unwrap(),
            vec![2, 2]
        );
    }

    #[test]
    fn unsatisfiable_conjunct_returns_none() {
        let (comp, reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let a1 = reg.lookup("x2>=15").unwrap();
        // !x1>=5 && x2>=15 starting after x1 already became >=5: impossible because
        // x1>=5 never becomes false again in this computation once the start frontier
        // has passed it.
        let cube = Cube::new([Literal::neg(a0), Literal::pos(a1)]).unwrap();
        assert!(least_consistent_cut_satisfying(&comp, &reg, &cube, &[2, 0]).is_none());
    }

    #[test]
    fn consistency_forces_other_processes_forward() {
        let (comp, reg) = running_example();
        let a1 = reg.lookup("x2>=15").unwrap();
        // Predicate only about P1, but from a start cut that includes P0's receive of
        // m2 the cut must pull P1 to at least 4.
        let cube = Cube::new([Literal::pos(a1)]).unwrap();
        let cut = least_consistent_cut_satisfying(&comp, &reg, &cube, &[4, 0]).unwrap();
        assert_eq!(cut, vec![4, 4]);
    }

    #[test]
    fn slice_contains_exactly_satisfying_cuts() {
        let (comp, reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let a1 = reg.lookup("x2>=15").unwrap();
        let cube = Cube::new([Literal::pos(a0), Literal::pos(a1)]).unwrap();
        let slice = slice_frontiers(&comp, &reg, &cube);
        assert!(!slice.is_empty());
        for f in &slice {
            assert!(cube.eval(comp.global_state(f, &reg)));
            assert!(f[0] >= 2 && f[1] >= 2);
        }
        // The least element of the slice is the least consistent satisfying cut.
        let least = least_consistent_cut_satisfying(&comp, &reg, &cube, &[0, 0]).unwrap();
        assert!(slice.contains(&least));
        for f in &slice {
            assert!(least.iter().zip(f.iter()).all(|(a, b)| a <= b));
        }
    }

    #[test]
    fn join_irreducibility_of_least_cut() {
        let (comp, reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let cube = Cube::new([Literal::pos(a0)]).unwrap();
        let least = least_consistent_cut_satisfying(&comp, &reg, &cube, &[0, 0]).unwrap();
        assert!(is_join_irreducible(&comp, &reg, &cube, &least));
        // [3,4] is the join of the satisfying cuts [3,2] and [2,4], hence reducible.
        assert!(!is_join_irreducible(&comp, &reg, &cube, &[3, 4]));
    }
}
