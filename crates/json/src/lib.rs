//! Dependency-free JSON support.
//!
//! The build environment has no access to crates.io, so the workspace cannot use
//! `serde`/`serde_json`.  This crate provides the small amount of JSON machinery the
//! repository needs — archiving workloads and experiment artifacts as human-readable
//! files — as a plain [`Json`] value type with a strict parser and a pretty-printer.
//!
//! Integers and floats are kept apart ([`Json::Int`] vs [`Json::Float`]) so `u64`
//! seeds round-trip exactly, and floats are printed with Rust's shortest
//! round-trip formatting, making `parse(print(v)) == v` hold for every finite value.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i128),
    /// A number written with fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or by typed accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the error in the input (0 for accessor errors).
    pub offset: usize,
}

impl JsonError {
    fn at(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset,
        }
    }

    /// Error not tied to an input position (typed-accessor failures).
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError::at(message, 0)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document; trailing non-whitespace input is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters after document", p.pos));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free result.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Prints without any whitespace — the wire form (`dlrv-stream` frames), where
    /// indentation would only inflate every message.  Parses back identically to
    /// the pretty form.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            // Scalars print identically in both forms.
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                debug_assert!(x.is_finite(), "JSON cannot represent NaN/inf");
                // `{:?}` is Rust's shortest round-trip float formatting and always
                // contains a '.' or exponent, so the value re-parses as Float.
                out.push_str(&format!("{x:?}"));
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    // ---- typed accessors -------------------------------------------------------

    /// The value of `key` in an object.
    pub fn get(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::msg(format!("missing key `{key}`"))),
            other => Err(JsonError::msg(format!(
                "expected object with key `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The value of `key` in an object, or `None` when the key is absent.
    ///
    /// Unlike [`Json::get`], a missing key is not an error — this is how parsers of
    /// versioned on-disk schemas accept documents written before a field existed.
    /// A non-object still errors.
    pub fn get_opt(&self, key: &str) -> Result<Option<&Json>, JsonError> {
        match self {
            Json::Object(fields) => Ok(fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)),
            other => Err(JsonError::msg(format!(
                "expected object with key `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::msg(format!("expected bool, found {}", other.kind()))),
        }
    }

    /// The numeric value as `f64` (accepts both `Int` and `Float`).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(x) => Ok(*x),
            other => Err(JsonError::msg(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// The integer value as `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Int(i) => u64::try_from(*i)
                .map_err(|_| JsonError::msg(format!("integer {i} out of u64 range"))),
            other => Err(JsonError::msg(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// The integer value as `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        self.as_u64().and_then(|v| {
            usize::try_from(v).map_err(|_| JsonError::msg(format!("integer {v} out of usize range")))
        })
    }

    /// The string value.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// The array items.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(JsonError::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// Builds a `Json::Object` from `(key, value)` pairs.
pub fn object(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v as i128)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::at(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected `{text}`"), self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    JsonError::at("truncated \\u escape", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                JsonError::at("invalid \\u escape", self.pos)
                            })?;
                            // Surrogate pairs are not needed for our ASCII field
                            // names; reject them rather than decode them wrongly.
                            let c = char::from_u32(code).ok_or_else(|| {
                                JsonError::at("surrogate \\u escape unsupported", self.pos)
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so it is valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::at("invalid UTF-8", self.pos))?;
                    let c = rest
                        .chars()
                        .next()
                        .expect("the Some(_) arm guarantees at least one byte");
                    if (c as u32) < 0x20 {
                        return Err(JsonError::at("raw control character in string", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError::at(format!("invalid float `{text}`"), start))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| JsonError::at(format!("invalid integer `{text}`"), start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("3.5").unwrap(), Json::Float(3.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2.5, {"b": true}], "c": null}"#).unwrap();
        assert_eq!(v.get("c").unwrap(), &Json::Null);
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[2].get("b").unwrap(), &Json::Bool(true));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{not json", "[1,", "{\"a\":}", "01x", "\"open", "1 2", ""] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn pretty_print_round_trips() {
        let v = object([
            ("seed", Json::from(u64::MAX)),
            ("mu", Json::from(3.0f64)),
            ("tiny", Json::from(f64::MIN_POSITIVE)),
            ("name", Json::from("q\"uote\\")),
            ("flags", Json::from(vec![true, false])),
            ("none", Json::from(Option::<u64>::None)),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_print_round_trips_and_has_no_whitespace() {
        let v = object([
            ("seed", Json::from(u64::MAX)),
            ("mu", Json::from(3.5f64)),
            ("name", Json::from("q\"uote\\")),
            ("flags", Json::from(vec![true, false])),
            ("none", Json::from(Option::<u64>::None)),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Identical value as the pretty form, strictly fewer bytes.
        assert_eq!(Json::parse(&text).unwrap(), Json::parse(&v.to_string_pretty()).unwrap());
        assert!(text.len() < v.to_string_pretty().len());
        // No structural whitespace (none of the strings above contain spaces).
        assert!(!text.chars().any(|c| c.is_whitespace()), "compact form: {text}");
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        for seed in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 53, (1 << 53) + 1] {
            let text = Json::from(seed).to_string_pretty();
            assert_eq!(Json::parse(&text).unwrap().as_u64().unwrap(), seed);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 2.5e-17, 1e300, -0.0, 12345.6789] {
            let text = Json::from(x).to_string_pretty();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), x);
        }
    }

    #[test]
    fn get_opt_distinguishes_missing_from_malformed() {
        let v = Json::parse(r#"{"a": 1}"#).unwrap();
        assert_eq!(v.get_opt("a").unwrap(), Some(&Json::Int(1)));
        assert_eq!(v.get_opt("b").unwrap(), None);
        assert!(Json::Int(3).get_opt("a").is_err());
    }

    #[test]
    fn accessor_errors_are_descriptive() {
        let v = Json::parse(r#"{"a": 1}"#).unwrap();
        assert!(v.get("b").unwrap_err().message.contains("missing key"));
        assert!(v.get("a").unwrap().as_bool().is_err());
        assert!(Json::Null.get("x").is_err());
        assert!(Json::Int(-1).as_u64().is_err());
    }
}
