//! The decentralized LTL₃ runtime-verification algorithm (the paper's contribution),
//! plus the centralized baseline it is compared against.
//!
//! * [`decentralized`] — the token-based decentralized monitor of Chapter 4:
//!   [`DecentralizedMonitor`] implements
//!   [`MonitorBehavior`](dlrv_distsim::MonitorBehavior) and can be run on either
//!   execution substrate.  Optimizations of §4.3 are switchable via
//!   [`MonitorOptions`].
//! * [`centralized`] — the centralized-monitor baseline (every event forwarded to one
//!   collector that evaluates the full lattice).
//! * [`messages`] — tokens and termination messages.
//! * [`global_view`] — the per-monitor exploration state.
//! * [`metrics`] — per-monitor and per-run measurements matching Chapter 5.
//! * [`replay`] — a zero-latency driver over recorded computations, used by the
//!   soundness/completeness test-suite to compare monitors against the lattice oracle.
//! * [`feed`] — the incremental feed API: a [`FeedSession`] delivers events one at a
//!   time (`feed_event(&mut self, &Arc<Event>) -> Verdict`, or
//!   [`feed_owned`](feed::FeedSession::feed_owned) for owned events) so monitors no
//!   longer require a complete trace up front; the shared `Arc` is retained by the
//!   monitors' histories directly — no per-event deep clone.  The substrate of the
//!   online `dlrv-stream` runtime.
//! * [`fleet`] — fleet monitoring: a [`FleetMonitor`] wraps one decentralized
//!   monitor per property behind a single behavior, so N properties share one
//!   decoded event stream and one batched token transport (see `docs/FLEET.md`).
//!
//! The §4.3 optimizations (token aggregation, global-view dedup/merge, disjunctive
//! pruning) are switchable per monitor through [`MonitorOptions`]; see
//! `docs/MONITORING.md` at the repository root for the worked walkthrough.
//!
//! # Example
//!
//! Monitor `F (P0.p ∧ P1.p)` — "eventually both processes raise `p`" — over two
//! processes whose goal states are *concurrent* (neither heard from the other), so
//! only the token exploration can witness the conjunction:
//!
//! ```
//! use dlrv_automaton::MonitorAutomaton;
//! use dlrv_ltl::{Assignment, AtomRegistry, Formula, Verdict};
//! use dlrv_monitor::{decentralized_session, MonitorOptions};
//! use dlrv_vclock::{Event, EventKind, VectorClock};
//! use std::sync::Arc;
//!
//! let mut reg = AtomRegistry::new();
//! let a = reg.intern("P0.p", 0);
//! let b = reg.intern("P1.p", 1);
//! let phi = Formula::eventually(Formula::and(Formula::Atom(a), Formula::Atom(b)));
//! let automaton = Arc::new(MonitorAutomaton::synthesize(&phi, &reg));
//! let registry = Arc::new(reg);
//!
//! let mut session =
//!     decentralized_session(2, &automaton, &registry, Assignment::ALL_FALSE,
//!                           MonitorOptions::default());
//! let event = |process, vc: Vec<u64>, state, time| Event {
//!     process, kind: EventKind::Internal, sn: 1,
//!     vc: VectorClock::from_entries(vc), state, time,
//! };
//! // P0 raises its p, then P1 raises its own — concurrently ([1,0] vs [0,1]).
//! session.feed_owned(event(0, vec![1, 0], Assignment::from_true_atoms([a]), 1.0));
//! session.feed_owned(event(1, vec![0, 1], Assignment::from_true_atoms([b]), 2.0));
//! assert_eq!(session.finish(), Verdict::True);
//! assert!(session.monitor_messages() > 0, "the witness needed token traffic");
//! ```

#![forbid(unsafe_code)]

pub mod centralized;
pub mod decentralized;
pub mod feed;
pub mod fleet;
pub mod global_view;
pub mod messages;
pub mod metrics;
pub mod replay;

pub use centralized::{CentralMsg, CentralizedMonitor};
pub use decentralized::{DecentralizedMonitor, MonitorOptions};
pub use feed::{
    centralized_session, combined_verdict, decentralized_session, CentralizedSession,
    DecentralizedSession, FeedSession, SessionVerdicts,
};
pub use fleet::{
    fleet_member_detected, fleet_member_metrics, fleet_member_possible, fleet_session,
    FleetMember, FleetMonitor, FleetSession,
};
pub use global_view::{GlobalView, GvState};
pub use messages::{ConjunctEval, EvalState, MonitorMsg, Token, TokenTransition};
pub use metrics::{
    verdict_from_name, verdict_name, FleetPropertyMetrics, MonitorMetrics, RunMetrics,
    ShardMetrics,
};
pub use replay::{replay_decentralized, timestamp_order, ReplayResult};
