//! The decentralized LTL₃ runtime-verification algorithm (the paper's contribution),
//! plus the centralized baseline it is compared against.
//!
//! * [`decentralized`] — the token-based decentralized monitor of Chapter 4:
//!   [`DecentralizedMonitor`] implements
//!   [`MonitorBehavior`](dlrv_distsim::MonitorBehavior) and can be run on either
//!   execution substrate.  Optimizations of §4.3 are switchable via
//!   [`MonitorOptions`].
//! * [`centralized`] — the centralized-monitor baseline (every event forwarded to one
//!   collector that evaluates the full lattice).
//! * [`messages`] — tokens and termination messages.
//! * [`global_view`] — the per-monitor exploration state.
//! * [`metrics`] — per-monitor and per-run measurements matching Chapter 5.
//! * [`replay`] — a zero-latency driver over recorded computations, used by the
//!   soundness/completeness test-suite to compare monitors against the lattice oracle.
//! * [`feed`] — the incremental feed API: a [`FeedSession`] delivers events one at a
//!   time (`feed_event(&mut self, ev) -> Verdict`) so monitors no longer require a
//!   complete trace up front; the substrate of the online `dlrv-stream` runtime.

pub mod centralized;
pub mod decentralized;
pub mod feed;
pub mod global_view;
pub mod messages;
pub mod metrics;
pub mod replay;

pub use centralized::{CentralMsg, CentralizedMonitor};
pub use decentralized::{DecentralizedMonitor, MonitorOptions};
pub use feed::{
    centralized_session, combined_verdict, decentralized_session, CentralizedSession,
    DecentralizedSession, FeedSession, SessionVerdicts,
};
pub use global_view::{GlobalView, GvState};
pub use messages::{ConjunctEval, EvalState, MonitorMsg, Token, TokenTransition};
pub use metrics::{verdict_from_name, verdict_name, MonitorMetrics, RunMetrics, ShardMetrics};
pub use replay::{replay_decentralized, timestamp_order, ReplayResult};
