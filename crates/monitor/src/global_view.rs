//! Global views: a monitor's hypotheses about the global execution (§4.2).
//!
//! Each global view tracks one lattice path the monitor is exploring: the global cut
//! constructed so far (as per-process event counts), the believed global state, the
//! current monitor-automaton state and a queue of local events that arrived while the
//! view was waiting for a token to return.
//!
//! Views at the same exploration point are interchangeable; [`ViewKey`] is their
//! canonical hashable identity (automaton state + frontier cut + believed global
//! state), the key of the §4.3.2 dedup/merge machinery in
//! [`DecentralizedMonitor`](crate::decentralized::DecentralizedMonitor).

use dlrv_automaton::StateId;
use dlrv_ltl::Assignment;
use dlrv_vclock::{Event, VectorClock};
use std::collections::VecDeque;
use std::sync::Arc;

/// The processing state of a global view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GvState {
    /// Ready to consume local events.
    Unblocked,
    /// A token is in flight; local events are buffered until it returns.
    Waiting,
}

/// The canonical identity of a global view's exploration point: two views with equal
/// keys have converged to the same hypothesis and can be merged
/// (`MERGESIMILARGLOBALVIEWS`, strengthened with equal global states).
///
/// Hashable, so view sets can be deduplicated with one map lookup per view instead of
/// pairwise comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// Current monitor-automaton state.
    pub q: StateId,
    /// The constructed cut (frontier).
    pub gcut: VectorClock,
    /// The believed global state.
    pub gstate: Assignment,
}

/// One global view maintained by a monitor process.
#[derive(Debug, Clone)]
pub struct GlobalView {
    /// Unique identifier within the owning monitor.
    pub id: u64,
    /// Per-process event counts of the constructed cut.
    pub gcut: VectorClock,
    /// The believed global state (proposition valuation).
    pub gstate: Assignment,
    /// Current monitor-automaton state.
    pub q: StateId,
    /// Local events buffered while the view is waiting for a token.
    ///
    /// Shared (`Arc`) rather than owned: every view of a monitor buffers the same
    /// local event, so the queues share one allocation per event — including its
    /// vector clock — instead of cloning it per view.
    pub pending: VecDeque<Arc<Event>>,
    /// Whether the view survives forking (set when it took a real transition).
    pub keep_after_fork: bool,
    /// Processing state.
    pub state: GvState,
}

impl GlobalView {
    /// Creates the initial global view of a monitor: empty cut, initial global state,
    /// the automaton state reached by feeding the initial global state.
    pub fn initial(id: u64, n_processes: usize, initial_gstate: Assignment, q: StateId) -> Self {
        GlobalView {
            id,
            gcut: VectorClock::zero(n_processes),
            gstate: initial_gstate,
            q,
            pending: VecDeque::new(),
            keep_after_fork: false,
            state: GvState::Unblocked,
        }
    }

    /// The canonical [`ViewKey`] of this view's exploration point.
    pub fn slice_key(&self) -> ViewKey {
        ViewKey {
            q: self.q,
            gcut: self.gcut.clone(),
            gstate: self.gstate,
        }
    }

    /// True when this view and `other` represent the same point of exploration: same
    /// automaton state and same constructed cut (the merge criterion of
    /// `MERGESIMILARGLOBALVIEWS`, strengthened with equal global states).
    pub fn same_slice(&self, other: &GlobalView) -> bool {
        self.q == other.q && self.gcut == other.gcut && self.gstate == other.gstate
    }

    /// True when the view can process a new local event immediately.
    pub fn is_unblocked(&self) -> bool {
        self.state == GvState::Unblocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_view_is_unblocked() {
        let gv = GlobalView::initial(0, 3, Assignment::ALL_FALSE, 1);
        assert!(gv.is_unblocked());
        assert_eq!(gv.gcut, VectorClock::zero(3));
        assert_eq!(gv.q, 1);
        assert!(gv.pending.is_empty());
        assert!(!gv.keep_after_fork);
    }

    #[test]
    fn same_slice_requires_state_cut_and_gstate() {
        let a = GlobalView::initial(0, 2, Assignment::ALL_FALSE, 0);
        let mut b = GlobalView::initial(1, 2, Assignment::ALL_FALSE, 0);
        assert!(a.same_slice(&b));
        b.q = 1;
        assert!(!a.same_slice(&b));
        b.q = 0;
        b.gcut.increment(0);
        assert!(!a.same_slice(&b));
    }

    #[test]
    fn view_keys_agree_with_same_slice() {
        let a = GlobalView::initial(0, 2, Assignment::ALL_FALSE, 0);
        let mut b = GlobalView::initial(7, 2, Assignment::ALL_FALSE, 0);
        assert_eq!(a.slice_key(), b.slice_key());
        b.gstate = Assignment(1);
        assert!(a.slice_key() != b.slice_key());
        assert_eq!(a.same_slice(&b), a.slice_key() == b.slice_key());
        // Keys are hashable: a set of keys deduplicates converged views.
        let set: std::collections::HashSet<ViewKey> =
            [a.slice_key(), a.slice_key(), b.slice_key()].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
