//! The centralized-monitoring baseline (§1.2.2, Fig. 1.1a).
//!
//! One designated process hosts the central monitor; every other process's monitor
//! simply forwards each local event to it.  The central monitor collects the whole
//! computation and, once every process has terminated, builds the computation lattice
//! and evaluates all paths (exactly the oracle of Chapter 3).  This baseline is what
//! the decentralized algorithm is compared against in the ablation benchmarks: it pays
//! one message per event plus the cost of central lattice exploration.

use crate::metrics::MonitorMetrics;
use dlrv_automaton::MonitorAutomaton;
use dlrv_distsim::{MonitorBehavior, MonitorContext};
use dlrv_ltl::{Assignment, AtomRegistry, ProcessId, Verdict};
use dlrv_vclock::{oracle_evaluate, Computation, Event, Lattice};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Messages of the centralized configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum CentralMsg {
    /// A forwarded program event.
    Event(Event),
    /// The sending process has terminated.
    Done(ProcessId),
}

/// A monitor participating in the centralized configuration.
///
/// The monitor attached to the `central` process collects events; all others
/// forward.
#[derive(Debug, Clone)]
pub struct CentralizedMonitor {
    /// The process this monitor runs at.
    pid: ProcessId,
    /// The process hosting the central collector.
    central: ProcessId,
    automaton: Arc<MonitorAutomaton>,
    registry: Arc<AtomRegistry>,
    /// Collected computation (central node only).
    computation: Computation,
    /// Which processes have signalled termination (central node only).
    done: Vec<bool>,
    /// Verdicts computed at the end (central node only).
    pub final_verdicts: BTreeSet<Verdict>,
    /// Whether a ⊥/⊤ verdict is reachable on some lattice path (central node only).
    pub violation_reachable: bool,
    /// Metrics (messages counted by the substrate; events and views counted here).
    metrics: MonitorMetrics,
    /// Size of the lattice explored by the central node (its memory overhead analogue).
    pub lattice_size: usize,
}

impl CentralizedMonitor {
    /// Creates the monitor for process `pid`; the collector lives at `central`.
    pub fn new(
        pid: ProcessId,
        n: usize,
        central: ProcessId,
        automaton: Arc<MonitorAutomaton>,
        registry: Arc<AtomRegistry>,
        initial_states: Vec<Assignment>,
    ) -> Self {
        CentralizedMonitor {
            pid,
            central,
            automaton,
            registry,
            computation: Computation::new(initial_states),
            done: vec![false; n],
            final_verdicts: BTreeSet::new(),
            violation_reachable: false,
            metrics: MonitorMetrics::default(),
            lattice_size: 0,
        }
    }

    /// True when this monitor hosts the central collector.
    pub fn is_central(&self) -> bool {
        self.pid == self.central
    }

    /// Metrics snapshot.
    pub fn metrics(&self) -> MonitorMetrics {
        self.metrics.clone()
    }

    fn record_event(&mut self, event: Event) {
        // Events may arrive out of per-process order only if channels were not FIFO;
        // the substrate guarantees FIFO, so a simple push per process is sound.
        let p = event.process;
        debug_assert_eq!(event.sn as usize, self.computation.events[p].len() + 1);
        self.computation.events[p].push(event);
    }

    fn maybe_finish(&mut self) {
        if !self.is_central() || !self.done.iter().all(|d| *d) {
            return;
        }
        let lattice = Lattice::build(&self.computation);
        self.lattice_size = lattice.n_cuts();
        let result = oracle_evaluate(&self.computation, &lattice, &self.automaton, &self.registry);
        self.final_verdicts = result.final_verdicts.clone();
        self.violation_reachable = result.violation_reachable;
        self.metrics.possible_verdicts = self.final_verdicts.clone();
        if result.violation_reachable {
            self.metrics.detected_final_verdicts.insert(Verdict::False);
        }
        if result.satisfaction_reachable {
            self.metrics.detected_final_verdicts.insert(Verdict::True);
        }
    }
}

impl MonitorBehavior for CentralizedMonitor {
    type Message = CentralMsg;

    fn on_local_event(&mut self, event: &Arc<Event>, ctx: &mut MonitorContext<'_, CentralMsg>) {
        self.metrics.events_observed += 1;
        self.metrics.last_event_time = ctx.now;
        if self.is_central() {
            self.record_event((**event).clone());
        } else {
            ctx.send(self.central, CentralMsg::Event((**event).clone()));
            self.metrics.tokens_sent += 1;
        }
    }

    fn on_monitor_message(
        &mut self,
        _from: ProcessId,
        msg: CentralMsg,
        ctx: &mut MonitorContext<'_, CentralMsg>,
    ) {
        self.metrics.last_activity_time = ctx.now;
        match msg {
            CentralMsg::Event(e) => {
                self.metrics.tokens_received += 1;
                self.record_event(e);
            }
            CentralMsg::Done(p) => {
                self.done[p] = true;
                self.maybe_finish();
            }
        }
    }

    fn on_local_termination(&mut self, ctx: &mut MonitorContext<'_, CentralMsg>) {
        self.metrics.last_activity_time = ctx.now;
        if self.is_central() {
            self.done[self.pid] = true;
            self.maybe_finish();
        } else {
            ctx.send(self.central, CentralMsg::Done(self.pid));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_distsim::{run_simulation, SimConfig};
    use dlrv_ltl::Formula;
    use dlrv_trace::{generate_workload, WorkloadConfig};

    #[test]
    fn centralized_monitor_collects_and_evaluates() {
        let n = 3;
        let mut reg = AtomRegistry::new();
        for i in 0..n {
            reg.intern(&format!("P{i}.p"), i);
            reg.intern(&format!("P{i}.q"), i);
        }
        let atoms: Vec<_> = (0..n)
            .map(|i| Formula::Atom(reg.lookup(&format!("P{i}.p")).unwrap()))
            .collect();
        let phi = Formula::eventually(Formula::conj(atoms));
        let automaton = Arc::new(MonitorAutomaton::synthesize(&phi, &reg));
        let registry = Arc::new(reg);

        let workload = generate_workload(&WorkloadConfig {
            n_processes: n,
            events_per_process: 6,
            ..WorkloadConfig::default()
        });
        let initial_states = vec![Assignment::ALL_FALSE; n];
        let report = run_simulation(&workload, &registry, &SimConfig::default(), |i| {
            CentralizedMonitor::new(
                i,
                n,
                0,
                automaton.clone(),
                registry.clone(),
                initial_states.clone(),
            )
        });
        let central = &report.monitors[0];
        assert!(central.is_central());
        assert!(!central.final_verdicts.is_empty(), "central monitor must reach a verdict set");
        assert!(central.lattice_size > 0);
        // The goal tail forces all p propositions true, so ⊤ must be reachable.
        assert!(central.final_verdicts.contains(&Verdict::True));
        // Every non-central event costs one message.
        let forwarded: usize = (1..n).map(|i| report.computation.events[i].len()).sum();
        assert_eq!(report.monitor_messages, forwarded + (n - 1));
    }
}
