//! Monitor-to-monitor messages: tokens and termination notifications (§4.2), plus the
//! §4.3.1 aggregation machinery.
//!
//! A *token* is created by a global view when it needs information from other
//! processes to decide whether some outgoing monitor-automaton transitions are enabled.
//! It carries one [`TokenTransition`] per candidate transition, each with the global
//! cut and global state constructed so far, the per-process conjunct evaluations and
//! the routing target.  Tokens are routed between monitors until every carried
//! transition is decided (enabled / disabled), then return to their parent.
//!
//! Two §4.3 supports live here:
//!
//! * [`MonitorMsg::Batch`] — token aggregation (§4.3.1): every token a monitor wants
//!   to send to the same destination during one activation (one local event, one
//!   received message, one termination) travels as a *single* monitoring message.
//! * [`WaitingTokens`] — per-cut indexing of parked tokens: a token waiting for a
//!   future local event is filed under the exact sequence number (cut entry) it
//!   needs, so arrival of event `sn` wakes precisely the tokens keyed `sn` instead of
//!   rescanning every parked token.

use dlrv_ltl::{Assignment, ProcessId};
use dlrv_vclock::{SharedClock, VectorClock};
use std::collections::BTreeMap;

/// Evaluation status of one process's conjunct of a transition guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConjunctEval {
    /// The process has no literal in the guard.
    NotInvolved,
    /// Not yet evaluated against an event of that process.
    Unset,
    /// Evaluated true.
    True,
    /// Evaluated false.
    False,
}

/// Overall evaluation status of a transition carried by a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalState {
    /// Not yet decided.
    Unset,
    /// The guard is satisfied by the constructed consistent global state.
    Enabled,
    /// The guard cannot be satisfied (some conjunct evaluated false, or the program
    /// terminated before the required events occurred).
    Disabled,
}

/// One candidate outgoing transition carried by a token
/// (`OutgoingTransition` in §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct TokenTransition {
    /// Index of the symbolic transition in the monitor automaton.
    pub transition_id: usize,
    /// The event counts (per process) of the global cut constructed so far.
    pub gcut: VectorClock,
    /// The component-wise maximum of all vector clocks folded into the cut; an entry
    /// exceeding `gcut`'s reveals an inconsistency that must be repaired.
    pub depend: VectorClock,
    /// The constructed global state (proposition valuation).
    pub gstate: Assignment,
    /// Per-process conjunct evaluations.
    pub conjuncts: Vec<ConjunctEval>,
    /// The process this transition wants to visit next.
    pub next_target_process: ProcessId,
    /// The local sequence number of the event it wants to inspect there.
    pub next_target_event: u64,
    /// Overall evaluation.
    pub eval: EvalState,
}

impl TokenTransition {
    /// True when some process entry of the cut lags behind what `depend` proves must
    /// have been included (the cut is inconsistent and must be advanced).
    pub fn inconsistent_process(&self) -> Option<ProcessId> {
        (0..self.gcut.len()).find(|&k| self.gcut.get(k) < self.depend.get(k))
    }

    /// The first process whose conjunct is still [`ConjunctEval::Unset`].
    pub fn first_unset_process(&self) -> Option<ProcessId> {
        self.conjuncts
            .iter()
            .position(|c| *c == ConjunctEval::Unset)
    }

    /// True when every involved process's conjunct evaluated true.
    pub fn all_conjuncts_true(&self) -> bool {
        self.conjuncts
            .iter()
            .all(|c| matches!(c, ConjunctEval::True | ConjunctEval::NotInvolved))
    }
}

/// A token (monitoring message) exchanged between monitors.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The fleet member (property) this token belongs to: `0` in single-property
    /// runs, the member index in a [`FleetMonitor`](crate::FleetMonitor) run.
    /// This is the property-id dimension of [`MonitorMsg::Batch`] — one batch may
    /// aggregate tokens of several properties bound for the same destination, each
    /// self-identifying, and the receiving fleet demultiplexes on this field.
    pub property: u32,
    /// The process whose monitor created the token.
    pub parent: ProcessId,
    /// The automaton state of the global view that launched the exploration.
    pub origin_state: usize,
    /// Identifier of the owning global view at the parent.
    pub parent_gv: u64,
    /// Vector clock of the parent event that triggered the token (interned: the
    /// per-transition fan-out of one event shares a single clock allocation).
    pub parent_event_vc: SharedClock,
    /// Candidate transitions still being evaluated.
    pub transitions: Vec<TokenTransition>,
    /// The process the token should visit next.
    pub next_target_process: ProcessId,
    /// The event sequence number it should wait for there.
    pub next_target_event: u64,
}

/// Messages exchanged between monitor processes.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorMsg {
    /// A routed token.
    Token(Token),
    /// §4.3.1 — several tokens bound for the same destination, aggregated into one
    /// monitoring message (the receiver processes them in order).  Invariant: emitted
    /// only with ≥ 2 tokens; a singleton travels as [`MonitorMsg::Token`].
    Batch(Vec<Token>),
    /// Notification that `process`'s program terminated after `last_sn` local events.
    Terminated {
        /// The terminated process.
        process: ProcessId,
        /// Sequence number of its last event.
        last_sn: u64,
    },
}

impl MonitorMsg {
    /// Number of tokens this message carries (0 for non-token messages).
    pub fn token_count(&self) -> usize {
        match self {
            MonitorMsg::Token(_) => 1,
            MonitorMsg::Batch(tokens) => tokens.len(),
            MonitorMsg::Terminated { .. } => 0,
        }
    }
}

/// Tokens parked at a monitor until a future local event arrives, indexed by the cut
/// entry (local sequence number) each token is waiting for.
///
/// The unoptimized bookkeeping kept parked tokens in a flat `Vec` and rescanned all
/// of them on every local event; this index makes the wake-up a single map lookup.
/// Tokens keyed `0` wait for an event that can never occur (sequence numbers are
/// 1-based); they stay parked until [`drain_all`](WaitingTokens::drain_all) at
/// termination, exactly like the flat-scan behavior they replace.
#[derive(Debug, Clone, Default)]
pub struct WaitingTokens {
    by_sn: BTreeMap<u64, Vec<Token>>,
    len: usize,
}

impl WaitingTokens {
    /// An empty index.
    pub fn new() -> Self {
        WaitingTokens::default()
    }

    /// Parks `token` under the local sequence number it is waiting for
    /// (`token.next_target_event`).
    pub fn park(&mut self, token: Token) {
        self.by_sn.entry(token.next_target_event).or_default().push(token);
        self.len += 1;
    }

    /// Removes and returns every token waiting for exactly event `sn`, in parking
    /// order.
    pub fn take(&mut self, sn: u64) -> Vec<Token> {
        let tokens = self.by_sn.remove(&sn).unwrap_or_default();
        self.len -= tokens.len();
        tokens
    }

    /// Removes and returns all parked tokens (ordered by awaited sequence number,
    /// then parking order) — used at local termination, when no further event will
    /// ever satisfy them.
    pub fn drain_all(&mut self) -> Vec<Token> {
        self.len = 0;
        std::mem::take(&mut self.by_sn).into_values().flatten().collect()
    }

    /// Number of parked tokens.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tokens are parked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt(gcut: Vec<u64>, depend: Vec<u64>, conjuncts: Vec<ConjunctEval>) -> TokenTransition {
        TokenTransition {
            transition_id: 0,
            gcut: VectorClock::from_entries(gcut),
            depend: VectorClock::from_entries(depend),
            gstate: Assignment::ALL_FALSE,
            conjuncts,
            next_target_process: 0,
            next_target_event: 1,
            eval: EvalState::Unset,
        }
    }

    #[test]
    fn inconsistency_detection() {
        let t = tt(vec![1, 0], vec![1, 2], vec![ConjunctEval::Unset, ConjunctEval::Unset]);
        assert_eq!(t.inconsistent_process(), Some(1));
        let ok = tt(vec![1, 2], vec![1, 2], vec![ConjunctEval::Unset, ConjunctEval::Unset]);
        assert_eq!(ok.inconsistent_process(), None);
    }

    #[test]
    fn conjunct_queries() {
        let t = tt(
            vec![0, 0, 0],
            vec![0, 0, 0],
            vec![ConjunctEval::True, ConjunctEval::NotInvolved, ConjunctEval::Unset],
        );
        assert_eq!(t.first_unset_process(), Some(2));
        assert!(!t.all_conjuncts_true());
        let done = tt(
            vec![0, 0],
            vec![0, 0],
            vec![ConjunctEval::True, ConjunctEval::NotInvolved],
        );
        assert!(done.all_conjuncts_true());
        assert_eq!(done.first_unset_process(), None);
    }

    fn parked(next_target_event: u64) -> Token {
        Token {
            property: 0,
            parent: 0,
            origin_state: 0,
            parent_gv: 0,
            parent_event_vc: std::sync::Arc::new(VectorClock::zero(2)),
            transitions: Vec::new(),
            next_target_process: 1,
            next_target_event,
        }
    }

    #[test]
    fn waiting_tokens_wake_by_exact_sequence_number() {
        let mut waiting = WaitingTokens::new();
        waiting.park(parked(3));
        waiting.park(parked(5));
        waiting.park(parked(3));
        assert_eq!(waiting.len(), 3);
        assert!(waiting.take(4).is_empty());
        let woken = waiting.take(3);
        assert_eq!(woken.len(), 2);
        assert!(woken.iter().all(|t| t.next_target_event == 3));
        assert_eq!(waiting.len(), 1);
        assert_eq!(waiting.drain_all().len(), 1);
        assert!(waiting.is_empty());
    }

    #[test]
    fn batch_messages_report_their_token_count() {
        assert_eq!(MonitorMsg::Token(parked(1)).token_count(), 1);
        assert_eq!(MonitorMsg::Batch(vec![parked(1), parked(2)]).token_count(), 2);
        assert_eq!(
            MonitorMsg::Terminated { process: 0, last_sn: 4 }.token_count(),
            0
        );
    }
}
