//! Monitor-to-monitor messages: tokens and termination notifications (§4.2).
//!
//! A *token* is created by a global view when it needs information from other
//! processes to decide whether some outgoing monitor-automaton transitions are enabled.
//! It carries one [`TokenTransition`] per candidate transition, each with the global
//! cut and global state constructed so far, the per-process conjunct evaluations and
//! the routing target.  Tokens are routed between monitors until every carried
//! transition is decided (enabled / disabled), then return to their parent.

use dlrv_ltl::{Assignment, ProcessId};
use dlrv_vclock::VectorClock;

/// Evaluation status of one process's conjunct of a transition guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConjunctEval {
    /// The process has no literal in the guard.
    NotInvolved,
    /// Not yet evaluated against an event of that process.
    Unset,
    /// Evaluated true.
    True,
    /// Evaluated false.
    False,
}

/// Overall evaluation status of a transition carried by a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalState {
    /// Not yet decided.
    Unset,
    /// The guard is satisfied by the constructed consistent global state.
    Enabled,
    /// The guard cannot be satisfied (some conjunct evaluated false, or the program
    /// terminated before the required events occurred).
    Disabled,
}

/// One candidate outgoing transition carried by a token
/// (`OutgoingTransition` in §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct TokenTransition {
    /// Index of the symbolic transition in the monitor automaton.
    pub transition_id: usize,
    /// The event counts (per process) of the global cut constructed so far.
    pub gcut: VectorClock,
    /// The component-wise maximum of all vector clocks folded into the cut; an entry
    /// exceeding `gcut`'s reveals an inconsistency that must be repaired.
    pub depend: VectorClock,
    /// The constructed global state (proposition valuation).
    pub gstate: Assignment,
    /// Per-process conjunct evaluations.
    pub conjuncts: Vec<ConjunctEval>,
    /// The process this transition wants to visit next.
    pub next_target_process: ProcessId,
    /// The local sequence number of the event it wants to inspect there.
    pub next_target_event: u64,
    /// Overall evaluation.
    pub eval: EvalState,
}

impl TokenTransition {
    /// True when some process entry of the cut lags behind what `depend` proves must
    /// have been included (the cut is inconsistent and must be advanced).
    pub fn inconsistent_process(&self) -> Option<ProcessId> {
        (0..self.gcut.len()).find(|&k| self.gcut.get(k) < self.depend.get(k))
    }

    /// The first process whose conjunct is still [`ConjunctEval::Unset`].
    pub fn first_unset_process(&self) -> Option<ProcessId> {
        self.conjuncts
            .iter()
            .position(|c| *c == ConjunctEval::Unset)
    }

    /// True when every involved process's conjunct evaluated true.
    pub fn all_conjuncts_true(&self) -> bool {
        self.conjuncts
            .iter()
            .all(|c| matches!(c, ConjunctEval::True | ConjunctEval::NotInvolved))
    }
}

/// A token (monitoring message) exchanged between monitors.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The process whose monitor created the token.
    pub parent: ProcessId,
    /// The automaton state of the global view that launched the exploration.
    pub origin_state: usize,
    /// Identifier of the owning global view at the parent.
    pub parent_gv: u64,
    /// Vector clock of the parent event that triggered the token.
    pub parent_event_vc: VectorClock,
    /// Candidate transitions still being evaluated.
    pub transitions: Vec<TokenTransition>,
    /// The process the token should visit next.
    pub next_target_process: ProcessId,
    /// The event sequence number it should wait for there.
    pub next_target_event: u64,
}

/// Messages exchanged between monitor processes.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorMsg {
    /// A routed token.
    Token(Token),
    /// Notification that `process`'s program terminated after `last_sn` local events.
    Terminated {
        /// The terminated process.
        process: ProcessId,
        /// Sequence number of its last event.
        last_sn: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt(gcut: Vec<u64>, depend: Vec<u64>, conjuncts: Vec<ConjunctEval>) -> TokenTransition {
        TokenTransition {
            transition_id: 0,
            gcut: VectorClock::from_entries(gcut),
            depend: VectorClock::from_entries(depend),
            gstate: Assignment::ALL_FALSE,
            conjuncts,
            next_target_process: 0,
            next_target_event: 1,
            eval: EvalState::Unset,
        }
    }

    #[test]
    fn inconsistency_detection() {
        let t = tt(vec![1, 0], vec![1, 2], vec![ConjunctEval::Unset, ConjunctEval::Unset]);
        assert_eq!(t.inconsistent_process(), Some(1));
        let ok = tt(vec![1, 2], vec![1, 2], vec![ConjunctEval::Unset, ConjunctEval::Unset]);
        assert_eq!(ok.inconsistent_process(), None);
    }

    #[test]
    fn conjunct_queries() {
        let t = tt(
            vec![0, 0, 0],
            vec![0, 0, 0],
            vec![ConjunctEval::True, ConjunctEval::NotInvolved, ConjunctEval::Unset],
        );
        assert_eq!(t.first_unset_process(), Some(2));
        assert!(!t.all_conjuncts_true());
        let done = tt(
            vec![0, 0],
            vec![0, 0],
            vec![ConjunctEval::True, ConjunctEval::NotInvolved],
        );
        assert!(done.all_conjuncts_true());
        assert_eq!(done.first_unset_process(), None);
    }
}
