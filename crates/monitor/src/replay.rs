//! A zero-latency replay driver: runs a set of monitors directly over a recorded
//! [`Computation`], delivering events in timestamp order and draining monitor messages
//! to quiescence after every step.
//!
//! This driver is the workhorse of the soundness/completeness test suite: it produces
//! the exact same event interleaving the oracle sees, removes message-latency
//! nondeterminism, and lets property-based tests compare the union of monitor verdicts
//! against the lattice oracle on thousands of random computations.

use crate::decentralized::{DecentralizedMonitor, MonitorOptions};
use crate::messages::MonitorMsg;
use dlrv_automaton::MonitorAutomaton;
use dlrv_distsim::{MonitorBehavior, MonitorContext};
use dlrv_ltl::{AtomRegistry, ProcessId, Verdict};
use dlrv_vclock::Computation;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// The result of a replay run.
#[derive(Debug)]
pub struct ReplayResult {
    /// The monitors after the run.
    pub monitors: Vec<DecentralizedMonitor>,
    /// Total number of monitor messages exchanged.
    pub monitor_messages: usize,
}

impl ReplayResult {
    /// Union of the verdicts any monitor considers possible.
    pub fn possible_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set = BTreeSet::new();
        for m in &self.monitors {
            set.extend(m.possible_verdicts());
        }
        set
    }

    /// Union of ⊤/⊥ verdicts detected by any monitor.
    pub fn detected_final_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set = BTreeSet::new();
        for m in &self.monitors {
            set.extend(m.detected_final_verdicts().iter().copied());
        }
        set
    }
}

/// Replays `comp` through freshly created decentralized monitors for `automaton`.
pub fn replay_decentralized(
    comp: &Computation,
    registry: &Arc<AtomRegistry>,
    automaton: &Arc<MonitorAutomaton>,
    opts: MonitorOptions,
) -> ReplayResult {
    let n = comp.n_processes();
    let initial_gstate = comp.global_state(&vec![0; n], registry);
    let mut monitors: Vec<DecentralizedMonitor> = (0..n)
        .map(|i| {
            DecentralizedMonitor::new(
                i,
                n,
                automaton.clone(),
                registry.clone(),
                initial_gstate,
                opts,
            )
        })
        .collect();

    // Merge all events into one timestamp-ordered sequence (ties broken by process id,
    // then sequence number, which respects each process's local order).
    let mut all: Vec<(f64, ProcessId, u64)> = Vec::new();
    for (p, events) in comp.events.iter().enumerate() {
        for e in events {
            all.push((e.time, p, e.sn));
        }
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut messages = 0usize;
    let mut inflight: VecDeque<(ProcessId, ProcessId, MonitorMsg)> = VecDeque::new();

    let drain = |monitors: &mut Vec<DecentralizedMonitor>,
                     inflight: &mut VecDeque<(ProcessId, ProcessId, MonitorMsg)>,
                     messages: &mut usize,
                     now: f64| {
        while let Some((from, to, msg)) = inflight.pop_front() {
            let mut outbox = Vec::new();
            {
                let mut ctx = MonitorContext::new(to, monitors.len(), now, &mut outbox);
                monitors[to].on_monitor_message(from, msg, &mut ctx);
            }
            *messages += outbox.len();
            for (dest, m) in outbox {
                inflight.push_back((to, dest, m));
            }
        }
    };

    for (time, p, sn) in all {
        let event = comp.events[p][(sn - 1) as usize].clone();
        let mut outbox = Vec::new();
        {
            let mut ctx = MonitorContext::new(p, n, time, &mut outbox);
            monitors[p].on_local_event(&event, &mut ctx);
        }
        messages += outbox.len();
        for (dest, m) in outbox {
            inflight.push_back((p, dest, m));
        }
        drain(&mut monitors, &mut inflight, &mut messages, time);
    }

    // Program quiescence: signal termination everywhere, then drain to quiescence.
    let end_time = comp
        .events
        .iter()
        .flat_map(|es| es.iter().map(|e| e.time))
        .fold(0.0f64, f64::max);
    for p in 0..n {
        let mut outbox = Vec::new();
        {
            let mut ctx = MonitorContext::new(p, n, end_time, &mut outbox);
            monitors[p].on_local_termination(&mut ctx);
        }
        messages += outbox.len();
        for (dest, m) in outbox {
            inflight.push_back((p, dest, m));
        }
        drain(&mut monitors, &mut inflight, &mut messages, end_time);
    }

    ReplayResult {
        monitors,
        monitor_messages: messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_ltl::Formula;
    use dlrv_vclock::fixtures::running_example;

    #[test]
    fn replay_on_running_example_detects_interleaving_violation() {
        // G !(x1>=5 && !(x2>=15)): violated on paths where x1 reaches 5 before x2
        // reaches 15 — exactly the concurrency the decentralized monitor must explore.
        let (comp, mut reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let a1 = reg.lookup("x2>=15").unwrap();
        let phi = Formula::globally(Formula::not(Formula::and(
            Formula::Atom(a0),
            Formula::not(Formula::Atom(a1)),
        )));
        let automaton = Arc::new(MonitorAutomaton::synthesize(&phi, &reg));
        let registry = Arc::new(std::mem::take(&mut reg));
        let result = replay_decentralized(&comp, &registry, &automaton, MonitorOptions::default());
        // The violating interleaving must be discovered by some monitor...
        assert!(
            result.detected_final_verdicts().contains(&Verdict::False),
            "the concurrent violation must be detected: {:?}",
            result.possible_verdicts()
        );
        // ...and the non-violating interleaving must also remain possible.
        assert!(result.possible_verdicts().contains(&Verdict::Unknown));
        assert!(result.monitor_messages > 0, "exploration requires tokens");
    }

    #[test]
    fn replay_without_communication_detects_concurrent_conjunction() {
        use dlrv_ltl::Assignment;
        use dlrv_vclock::{Event, EventKind, VectorClock};
        // Two processes, no program messages.  P0 raises a at t=1, P1 raises b at t=5.
        // F (a && b) is ⊤-reachable only through the concurrent cut {a=1,b=1}.
        let mut reg = AtomRegistry::new();
        let a = reg.intern("P0.p", 0);
        let b = reg.intern("P1.p", 1);
        let mut comp = Computation::new(vec![Assignment::ALL_FALSE, Assignment::ALL_FALSE]);
        comp.push(Event {
            process: 0,
            kind: EventKind::Internal,
            sn: 1,
            vc: VectorClock::from_entries(vec![1, 0]),
            state: Assignment::from_true_atoms([a]),
            time: 1.0,
        });
        comp.push(Event {
            process: 1,
            kind: EventKind::Internal,
            sn: 1,
            vc: VectorClock::from_entries(vec![0, 1]),
            state: Assignment::from_true_atoms([b]),
            time: 5.0,
        });
        let phi = Formula::eventually(Formula::and(Formula::Atom(a), Formula::Atom(b)));
        let automaton = Arc::new(MonitorAutomaton::synthesize(&phi, &reg));
        let registry = Arc::new(reg);
        let result = replay_decentralized(&comp, &registry, &automaton, MonitorOptions::default());
        assert!(
            result.detected_final_verdicts().contains(&Verdict::True),
            "F(a && b) must be satisfied on the cut where both hold: {:?}",
            result.possible_verdicts()
        );
    }
}
