//! A zero-latency replay driver: runs a set of monitors directly over a recorded
//! [`Computation`], delivering events in timestamp order and draining monitor messages
//! to quiescence after every step.
//!
//! This driver is the workhorse of the soundness/completeness test suite: it produces
//! the exact same event interleaving the oracle sees, removes message-latency
//! nondeterminism, and lets property-based tests compare the union of monitor verdicts
//! against the lattice oracle on thousands of random computations.

use crate::decentralized::{DecentralizedMonitor, MonitorOptions};
use crate::feed::decentralized_session;
use dlrv_automaton::MonitorAutomaton;
use dlrv_ltl::{AtomRegistry, ProcessId, Verdict};
use dlrv_vclock::Computation;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The result of a replay run.
#[derive(Debug)]
pub struct ReplayResult {
    /// The monitors after the run.
    pub monitors: Vec<DecentralizedMonitor>,
    /// Total number of monitor messages exchanged.
    pub monitor_messages: usize,
}

impl ReplayResult {
    /// Union of the verdicts any monitor considers possible.
    pub fn possible_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set = BTreeSet::new();
        for m in &self.monitors {
            set.extend(m.possible_verdicts());
        }
        set
    }

    /// Union of ⊤/⊥ verdicts detected by any monitor.
    pub fn detected_final_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set = BTreeSet::new();
        for m in &self.monitors {
            set.extend(m.detected_final_verdicts().iter().copied());
        }
        set
    }
}

/// Merges a computation's events into one timestamp-ordered `(time, process, sn)`
/// sequence (ties broken by process id, then sequence number, which respects each
/// process's local order).  This is the canonical delivery order of both the replay
/// driver and the streaming runtime's session feeds.
pub fn timestamp_order(comp: &Computation) -> Vec<(f64, ProcessId, u64)> {
    let mut all: Vec<(f64, ProcessId, u64)> = Vec::new();
    for (p, events) in comp.events.iter().enumerate() {
        for e in events {
            all.push((e.time, p, e.sn));
        }
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    all
}

/// Replays `comp` through freshly created decentralized monitors for `automaton`.
///
/// Implemented as an incremental [`FeedSession`](crate::feed::FeedSession) fed the
/// computation's events in [`timestamp_order`], so the offline path and the online
/// (streamed) path are the same code driving the same monitors.
pub fn replay_decentralized(
    comp: &Computation,
    registry: &Arc<AtomRegistry>,
    automaton: &Arc<MonitorAutomaton>,
    opts: MonitorOptions,
) -> ReplayResult {
    let n = comp.n_processes();
    let initial_gstate = comp.global_state(&vec![0; n], registry);
    let mut session = decentralized_session(n, automaton, registry, initial_gstate, opts);
    for (_, p, sn) in timestamp_order(comp) {
        session.feed_owned(comp.events[p][(sn - 1) as usize].clone());
    }
    session.finish();
    let monitor_messages = session.monitor_messages();
    ReplayResult {
        monitors: session.into_monitors(),
        monitor_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_ltl::Formula;
    use dlrv_vclock::fixtures::running_example;

    #[test]
    fn replay_on_running_example_detects_interleaving_violation() {
        // G !(x1>=5 && !(x2>=15)): violated on paths where x1 reaches 5 before x2
        // reaches 15 — exactly the concurrency the decentralized monitor must explore.
        let (comp, mut reg) = running_example();
        let a0 = reg.lookup("x1>=5").unwrap();
        let a1 = reg.lookup("x2>=15").unwrap();
        let phi = Formula::globally(Formula::not(Formula::and(
            Formula::Atom(a0),
            Formula::not(Formula::Atom(a1)),
        )));
        let automaton = Arc::new(MonitorAutomaton::synthesize(&phi, &reg));
        let registry = Arc::new(std::mem::take(&mut reg));
        let result = replay_decentralized(&comp, &registry, &automaton, MonitorOptions::default());
        // The violating interleaving must be discovered by some monitor...
        assert!(
            result.detected_final_verdicts().contains(&Verdict::False),
            "the concurrent violation must be detected: {:?}",
            result.possible_verdicts()
        );
        // ...and the non-violating interleaving must also remain possible.
        assert!(result.possible_verdicts().contains(&Verdict::Unknown));
        assert!(result.monitor_messages > 0, "exploration requires tokens");
    }

    #[test]
    fn replay_without_communication_detects_concurrent_conjunction() {
        use dlrv_ltl::Assignment;
        use dlrv_vclock::{Event, EventKind, VectorClock};
        // Two processes, no program messages.  P0 raises a at t=1, P1 raises b at t=5.
        // F (a && b) is ⊤-reachable only through the concurrent cut {a=1,b=1}.
        let mut reg = AtomRegistry::new();
        let a = reg.intern("P0.p", 0);
        let b = reg.intern("P1.p", 1);
        let mut comp = Computation::new(vec![Assignment::ALL_FALSE, Assignment::ALL_FALSE]);
        comp.push(Event {
            process: 0,
            kind: EventKind::Internal,
            sn: 1,
            vc: VectorClock::from_entries(vec![1, 0]),
            state: Assignment::from_true_atoms([a]),
            time: 1.0,
        });
        comp.push(Event {
            process: 1,
            kind: EventKind::Internal,
            sn: 1,
            vc: VectorClock::from_entries(vec![0, 1]),
            state: Assignment::from_true_atoms([b]),
            time: 5.0,
        });
        let phi = Formula::eventually(Formula::and(Formula::Atom(a), Formula::Atom(b)));
        let automaton = Arc::new(MonitorAutomaton::synthesize(&phi, &reg));
        let registry = Arc::new(reg);
        let result = replay_decentralized(&comp, &registry, &automaton, MonitorOptions::default());
        assert!(
            result.detected_final_verdicts().contains(&Verdict::True),
            "F(a && b) must be satisfied on the cut where both hold: {:?}",
            result.possible_verdicts()
        );
    }
}
