//! The decentralized LTL₃ monitoring algorithm of Chapter 4.
//!
//! Every process `Pi` is composed with a monitor `Mi` holding a replica of the monitor
//! automaton.  `Mi` maintains a set of [`GlobalView`]s — hypotheses about the lattice
//! path the global execution is following — and advances each view's automaton state on
//! its own local events.  When a view reaches a state with outgoing transitions that
//! could be enabled by *concurrent* events at other processes, the monitor creates a
//! [`Token`] carrying those candidate transitions and routes it between monitors
//! (`SENDTONEXTPROCESS`); monitors visited by the token fold their local events into
//! the token's constructed global cut and evaluate their conjuncts
//! (`PROCESSTOKEN`/`EVALUATETOKEN`).  When the token returns to its parent, enabled
//! transitions fork new global views at the discovered automaton states
//! (`RECEIVETOKEN`), and views that have converged to the same exploration point are
//! merged (`MERGESIMILARGLOBALVIEWS`).
//!
//! # The §4.3 optimization suite
//!
//! The three overhead optimizations of §4.3 are individually switchable through
//! [`MonitorOptions`] so the benchmark harness (`experiments --target overhead`, the
//! `ablations`/`overhead` criterion benches) can ablate them:
//!
//! * **Token aggregation** (§4.3.1, `aggregate_tokens`) — two levels.  Per event: all
//!   candidate transitions of one event travel in a single token instead of one token
//!   per transition.  Per destination: every token this monitor wants to send to the
//!   same peer during one activation (one local event, one received message, one
//!   termination) is staged and flushed as a single [`MonitorMsg::Batch`], so the
//!   number of *monitoring messages* is bounded by the number of destination
//!   processes per activation, not by the number of explorations.
//! * **Duplicate-global-view avoidance** (§4.3.2, `dedup_global_views`) — a returned
//!   token never forks a view whose exploration point ([`ViewKey`]: automaton state +
//!   frontier + believed global state) already exists, and a view does not launch a
//!   token for an automaton state that already has an exploration in flight.
//!   View-set maintenance is hash-keyed: merging converged views is one map lookup
//!   per view instead of pairwise comparison.
//! * **Disjunctive-transition pruning** (§4.3.3, `prune_disjunctive`) — once some
//!   transition into a target state is enabled, sibling candidates into the same
//!   target are dropped; and candidates whose target is a ⊤/⊥ verdict state this
//!   monitor has *already detected* (via a sibling view) are never explored at all —
//!   the exploration could only re-derive a known verdict.
//!
//! Verdicts are invariant under every flag combination (pinned by the repository's
//! `stream_equivalence` and soundness/completeness suites); the flags only change the
//! message, queueing and memory cost — the quantities `--target overhead` reports.

use crate::global_view::{GlobalView, GvState, ViewKey};
use crate::messages::{ConjunctEval, EvalState, MonitorMsg, Token, TokenTransition, WaitingTokens};
use crate::metrics::MonitorMetrics;
use dlrv_automaton::{MonitorAutomaton, SymbolicTransition};
use dlrv_distsim::{MonitorBehavior, MonitorContext};
use dlrv_ltl::{Assignment, AtomRegistry, Cube, ProcessId, Verdict};
use dlrv_vclock::{ClockIntern, Event, VectorClock};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Switches for the optimizations of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorOptions {
    /// §4.3.1 — carry all candidate transitions of an event in a single token instead
    /// of one token per transition, and aggregate all tokens bound for the same
    /// destination process into one [`MonitorMsg::Batch`] per send opportunity.
    pub aggregate_tokens: bool,
    /// §4.3.2 — avoid forking a new global view when an equivalent one already exists.
    pub dedup_global_views: bool,
    /// §4.3.3 — once a transition into a target state is enabled, drop sibling
    /// candidate transitions into the same target; never explore candidates whose
    /// target verdict a sibling view already detected.
    pub prune_disjunctive: bool,
    /// Hot-path allocation recycling: retired global views, token cuts, conjunct
    /// buffers and view-set staging vectors are pooled and reused instead of
    /// reallocated per event, and the §4.3.2 dedup/merge scans run as single-pass
    /// batched clock comparisons over the live view set instead of building
    /// per-call hash indexes.  Not a paper optimization — an engineering switch
    /// following the same A/B discipline: verdicts, tokens and messages are
    /// byte-identical with the flag off (pinned by the equivalence suites).
    pub arena_recycling: bool,
}

impl MonitorOptions {
    /// Every optimization disabled — the `--no-opt` baseline of the overhead
    /// benchmarks.
    pub const ALL_OFF: MonitorOptions = MonitorOptions {
        aggregate_tokens: false,
        dedup_global_views: false,
        prune_disjunctive: false,
        arena_recycling: false,
    };

    /// All 16 flag combinations, for exhaustive equivalence testing.
    pub fn all_combinations() -> [MonitorOptions; 16] {
        let mut out = [MonitorOptions::ALL_OFF; 16];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = MonitorOptions {
                aggregate_tokens: i & 1 != 0,
                dedup_global_views: i & 2 != 0,
                prune_disjunctive: i & 4 != 0,
                arena_recycling: i & 8 != 0,
            };
        }
        out
    }
}

impl Default for MonitorOptions {
    fn default() -> Self {
        MonitorOptions {
            aggregate_tokens: true,
            dedup_global_views: true,
            prune_disjunctive: true,
            arena_recycling: true,
        }
    }
}

/// Recycled allocation pools of the event hot path (the
/// [`MonitorOptions::arena_recycling`] switch).  Every buffer is cleared before
/// reuse, so recycling is observationally invisible — it only removes the
/// per-event allocate/free churn of the unoptimized path.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Spare view-set vectors (merge staging, per-event rebuild, fork outputs).
    view_bufs: Vec<Vec<GlobalView>>,
    /// Retired global views whose cut and pending-queue allocations
    /// [`spawn_view`](DecentralizedMonitor::spawn_view) reuses.
    free_views: Vec<GlobalView>,
    /// Spare vector clocks for token cuts.
    clocks: Vec<VectorClock>,
    /// Spare per-process conjunct buffers.
    conjuncts: Vec<Vec<ConjunctEval>>,
    /// Spare candidate-transition vectors (token payloads).
    transitions: Vec<Vec<TokenTransition>>,
    /// Output buffer of the batched clock comparisons in the merge scan.
    ord: Vec<Option<std::cmp::Ordering>>,
    /// Index buffer of `process_token_with_event`.
    targeted: Vec<usize>,
    /// Result buffer of `process_token_with_event`.
    local_results: Vec<(usize, bool)>,
}

/// Upper bound on each scratch pool, so pathological fan-outs cannot turn the
/// recycler into a leak.
const POOL_CAP: usize = 64;

/// A decentralized monitor process `Mi` (Algorithm 1).
#[derive(Debug, Clone)]
pub struct DecentralizedMonitor {
    /// The process this monitor is attached to.
    pid: ProcessId,
    /// The fleet member index stamped on every token this monitor emits: `0` in
    /// single-property runs, assigned by [`FleetMonitor`](crate::FleetMonitor)
    /// when several properties share one transport.
    property: u32,
    /// Number of processes.
    n: usize,
    /// The shared monitor automaton replica.
    automaton: Arc<MonitorAutomaton>,
    /// Shared atom registry (for conjunct ownership).
    registry: Arc<AtomRegistry>,
    /// Optimization switches.
    opts: MonitorOptions,
    /// Local event history (`history` in Algorithm 2), indexed by `sn - 1`.  Events
    /// are `Arc`-shared with every view's pending queue, so buffering an event at
    /// `k` views costs `k` pointer bumps, not `k` deep clones of its vector clock.
    history: Vec<Arc<Event>>,
    /// Tokens waiting for a future local event (`w_tokens`), indexed by the cut
    /// entry (sequence number) each token awaits.
    waiting_tokens: WaitingTokens,
    /// The set of global views (`GV`).
    views: Vec<GlobalView>,
    /// Next fresh global-view identifier.
    next_gv_id: u64,
    /// Whether the local program has terminated.
    local_terminated: bool,
    /// Per-peer termination info: `Some(last_sn)` once the peer announced termination.
    peer_last_sn: Vec<Option<u64>>,
    /// Number of tokens currently in flight per originating automaton state (used by
    /// the §4.3.2 optimization to avoid launching duplicate explorations).
    in_flight: BTreeMap<dlrv_automaton::StateId, usize>,
    /// §4.3.1 staging area: tokens awaiting the end-of-activation flush, grouped by
    /// destination (only used when `opts.aggregate_tokens` is set).
    outbound: BTreeMap<ProcessId, Vec<Token>>,
    /// Hash-consing pool for the immutable clocks tokens carry.
    intern: ClockIntern,
    /// Recycled allocation pools (`opts.arena_recycling`).
    scratch: Scratch,
    /// Collected metrics.
    metrics: MonitorMetrics,
}

impl DecentralizedMonitor {
    /// INIT (Algorithm 1): creates monitor `Mi` with its initial global view, already
    /// advanced over the initial global state.
    pub fn new(
        pid: ProcessId,
        n_processes: usize,
        automaton: Arc<MonitorAutomaton>,
        registry: Arc<AtomRegistry>,
        initial_gstate: Assignment,
        opts: MonitorOptions,
    ) -> Self {
        let q0 = automaton.step(automaton.initial, initial_gstate);
        let gv0 = GlobalView::initial(0, n_processes, initial_gstate, q0);
        let mut metrics = MonitorMetrics {
            global_views_created: 1,
            max_live_views: 1,
            ..MonitorMetrics::default()
        };
        if automaton.is_final(q0) {
            metrics
                .detected_final_verdicts
                .insert(automaton.verdict(q0));
        }
        DecentralizedMonitor {
            pid,
            property: 0,
            n: n_processes,
            automaton,
            registry,
            opts,
            history: Vec::new(),
            waiting_tokens: WaitingTokens::new(),
            views: vec![gv0],
            next_gv_id: 1,
            local_terminated: false,
            peer_last_sn: vec![None; n_processes],
            in_flight: Default::default(),
            outbound: BTreeMap::new(),
            intern: ClockIntern::new(),
            scratch: Scratch::default(),
            metrics,
        }
    }

    /// The process index this monitor is attached to.
    pub fn process_id(&self) -> ProcessId {
        self.pid
    }

    /// Assigns the fleet member index stamped on every token this monitor emits
    /// (`0` outside fleets).  Must be set before the first event is fed.
    pub fn set_property_id(&mut self, property: u32) {
        self.property = property;
    }

    /// The current global views.
    pub fn views(&self) -> &[GlobalView] {
        &self.views
    }

    /// The set of verdicts currently considered possible (one per global view),
    /// plus any ⊤/⊥ verdict that was detected along the way.
    pub fn possible_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set: BTreeSet<Verdict> = self
            .views
            .iter()
            .map(|gv| self.automaton.verdict(gv.q))
            .collect();
        set.extend(self.metrics.detected_final_verdicts.iter().copied());
        set
    }

    /// ⊤/⊥ verdicts this monitor has detected.
    pub fn detected_final_verdicts(&self) -> &BTreeSet<Verdict> {
        &self.metrics.detected_final_verdicts
    }

    /// A snapshot of this monitor's metrics (view-derived fields filled in).
    pub fn metrics(&self) -> MonitorMetrics {
        let mut m = self.metrics.clone();
        m.global_views_final = self.views.len();
        m.max_live_views = m.max_live_views.max(self.views.len());
        m.possible_verdicts = self.possible_verdicts();
        m
    }

    // ------------------------------------------------------------------
    // Scratch pools (`opts.arena_recycling`)
    // ------------------------------------------------------------------

    /// An empty view-set vector — recycled when the arena is on, fresh otherwise.
    fn take_view_buf(&mut self) -> Vec<GlobalView> {
        if self.opts.arena_recycling {
            self.scratch.view_bufs.pop().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// Returns a view-set vector to the pool (dropped when the arena is off).
    fn put_view_buf(&mut self, mut buf: Vec<GlobalView>) {
        if self.opts.arena_recycling && self.scratch.view_bufs.len() < POOL_CAP {
            buf.clear();
            self.scratch.view_bufs.push(buf);
        }
    }

    /// An empty transition vector for token payloads.
    fn take_transition_buf(&mut self) -> Vec<TokenTransition> {
        if self.opts.arena_recycling {
            self.scratch.transitions.pop().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// Returns a (drained) transition vector to the pool.
    fn put_transition_buf(&mut self, mut buf: Vec<TokenTransition>) {
        if self.opts.arena_recycling && self.scratch.transitions.len() < POOL_CAP {
            buf.clear();
            self.scratch.transitions.push(buf);
        }
    }

    /// A clock holding a copy of `src`: a recycled buffer overwritten in place when
    /// the arena is on, a fresh clone otherwise.
    fn clock_copy(&mut self, src: &VectorClock) -> VectorClock {
        if self.opts.arena_recycling {
            if let Some(mut clock) = self.scratch.clocks.pop() {
                clock.copy_from(src);
                return clock;
            }
        }
        src.clone()
    }

    /// Returns a retired clock to the pool.
    fn reclaim_clock(&mut self, clock: VectorClock) {
        if self.opts.arena_recycling && self.scratch.clocks.len() < POOL_CAP {
            self.scratch.clocks.push(clock);
        }
    }

    /// An empty conjunct buffer.
    fn take_conjunct_buf(&mut self) -> Vec<ConjunctEval> {
        if self.opts.arena_recycling {
            self.scratch.conjuncts.pop().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    /// Reclaims a decided transition's allocations: both cuts and the conjunct
    /// buffer go back to their pools.
    fn reclaim_transition(&mut self, tran: TokenTransition) {
        if !self.opts.arena_recycling {
            return;
        }
        self.reclaim_clock(tran.gcut);
        self.reclaim_clock(tran.depend);
        if self.scratch.conjuncts.len() < POOL_CAP {
            let mut conjuncts = tran.conjuncts;
            conjuncts.clear();
            self.scratch.conjuncts.push(conjuncts);
        }
    }

    /// A retired global view for [`spawn_view`](Self::spawn_view) to overwrite, or
    /// `None` when the pool is empty or the arena is off.
    fn take_free_view(&mut self) -> Option<GlobalView> {
        if self.opts.arena_recycling {
            self.scratch.free_views.pop()
        } else {
            None
        }
    }

    /// Retires a dropped global view so its cut and pending-queue allocations can
    /// be reused.  The pending queue is cleared eagerly: buffered events must not
    /// stay alive while the view sits in the pool.
    fn reclaim_view(&mut self, mut gv: GlobalView) {
        if self.opts.arena_recycling && self.scratch.free_views.len() < POOL_CAP {
            gv.pending.clear();
            self.scratch.free_views.push(gv);
        }
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    /// The guard literals of `transition` owned by process `p`, as a cube.
    fn conjunct_of(&self, transition: &SymbolicTransition, p: ProcessId) -> Cube {
        let mut cube = Cube::top();
        for lit in transition.guard.literals() {
            if self.registry.owner(lit.atom) == p {
                cube.insert(*lit);
            }
        }
        cube
    }

    /// Whether process `p` owns any literal of `transition`'s guard.
    fn participates(&self, transition: &SymbolicTransition, p: ProcessId) -> bool {
        transition
            .guard
            .literals()
            .iter()
            .any(|lit| self.registry.owner(lit.atom) == p)
    }

    /// Overwrites the atoms owned by `p` in `gstate` with their values in `local`.
    fn apply_local_state(&self, gstate: &mut Assignment, p: ProcessId, local: Assignment) {
        for atom in self.registry.atoms_of_process(p) {
            gstate.set(atom, local.get(atom));
        }
    }

    fn record_state_verdict(&mut self, q: dlrv_automaton::StateId) {
        if self.automaton.is_final(q) {
            self.metrics
                .detected_final_verdicts
                .insert(self.automaton.verdict(q));
        }
    }

    /// §4.3.3 extension: true when exploring a transition into `target` could only
    /// re-derive a verdict a sibling view already detected.
    fn target_verdict_subsumed(&self, target: dlrv_automaton::StateId) -> bool {
        self.opts.prune_disjunctive
            && self.automaton.is_final(target)
            && self
                .metrics
                .detected_final_verdicts
                .contains(&self.automaton.verdict(target))
    }

    /// Updates the peak-live-view count (the §4.3 memory-overhead measurement).
    fn note_view_peak(&mut self) {
        self.metrics.max_live_views = self.metrics.max_live_views.max(self.views.len());
        dlrv_obs::gauge!("monitor.live_views").raise_to(self.views.len() as i64);
    }

    /// Sends `token` toward `dest` — immediately as a single-token message, or staged
    /// for the end-of-activation batch flush when token aggregation is on (§4.3.1).
    fn send_token(&mut self, dest: ProcessId, token: Token, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        self.metrics.tokens_sent += 1;
        dlrv_obs::counter!("monitor.tokens_sent").inc();
        if self.opts.aggregate_tokens {
            self.outbound.entry(dest).or_default().push(token);
        } else {
            ctx.send(dest, MonitorMsg::Token(token));
        }
    }

    /// Flushes the per-destination staging area: one monitoring message per
    /// destination, a [`MonitorMsg::Batch`] whenever ≥ 2 tokens aggregated.  Called
    /// at the end of every activation (local event, received message, termination).
    fn flush_outbound(&mut self, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        for (dest, mut tokens) in std::mem::take(&mut self.outbound) {
            debug_assert!(!tokens.is_empty());
            if tokens.len() == 1 {
                ctx.send(dest, MonitorMsg::Token(tokens.pop().expect("one token")));
            } else {
                self.metrics.token_batches_sent += 1;
                ctx.send(dest, MonitorMsg::Batch(tokens));
            }
        }
    }

    /// MERGESIMILARGLOBALVIEWS: collapse views with identical automaton state, cut and
    /// global state.
    ///
    /// Two equivalent implementations, selected by `opts.arena_recycling`:
    ///
    /// * **Hash-keyed** (arena off) — one map lookup per view; building the index
    ///   clones every view's cut into its [`ViewKey`] and allocates the map and the
    ///   kept vector per call.
    /// * **Batched scan** (arena on) — each incoming view's cut is compared against
    ///   every kept cut in a single [`compare_many`] pass over raw entry slices,
    ///   using only recycled buffers.  Both keep the first occurrence of each
    ///   exploration point in encounter order, so the resulting view sets are
    ///   identical.
    fn merge_similar_views(&mut self) {
        if self.views.len() <= 1 {
            return;
        }
        let _span = dlrv_obs::span("monitor.merge_views");
        if self.opts.arena_recycling {
            self.merge_similar_views_scan();
            return;
        }
        let mut kept: Vec<GlobalView> = Vec::with_capacity(self.views.len());
        let mut index: HashMap<ViewKey, usize> = HashMap::with_capacity(self.views.len());
        for gv in std::mem::take(&mut self.views) {
            match index.entry(gv.slice_key()) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    // Prefer the unblocked copy; merge pending queues conservatively.
                    let existing = &mut kept[*slot.get()];
                    if existing.state == GvState::Waiting && gv.state == GvState::Unblocked {
                        let pending = std::mem::take(&mut existing.pending);
                        *existing = gv;
                        existing.pending = pending;
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(kept.len());
                    kept.push(gv);
                }
            }
        }
        self.views = kept;
    }

    /// The allocation-free merge: kept views accumulate in (recycled) `self.views`,
    /// and each incoming view is matched by one batched clock comparison plus the
    /// state/valuation checks.  View counts per monitor are small (bounded by the
    /// lattice width), so the scan term stays cheap while saving the per-view key
    /// clone and the per-call map.
    fn merge_similar_views_scan(&mut self) {
        let mut staged = self.take_view_buf();
        std::mem::swap(&mut staged, &mut self.views);
        for gv in staged.drain(..) {
            dlrv_vclock::compare_many(
                &gv.gcut,
                self.views.iter().map(|kept| &kept.gcut),
                &mut self.scratch.ord,
            );
            let pos = self.views.iter().enumerate().position(|(i, kept)| {
                self.scratch.ord[i] == Some(std::cmp::Ordering::Equal)
                    && kept.q == gv.q
                    && kept.gstate == gv.gstate
            });
            match pos {
                Some(i) => {
                    // Prefer the unblocked copy; merge pending queues conservatively.
                    let existing = &mut self.views[i];
                    if existing.state == GvState::Waiting && gv.state == GvState::Unblocked {
                        let pending = std::mem::take(&mut existing.pending);
                        let mut retired = std::mem::replace(existing, gv);
                        // The kept slot gets the saved queue; the incoming view's
                        // (identical) queue rides out on the retired view, whose
                        // reclamation clears it.
                        retired.pending = std::mem::replace(&mut self.views[i].pending, pending);
                        self.reclaim_view(retired);
                    } else {
                        self.reclaim_view(gv);
                    }
                }
                None => self.views.push(gv),
            }
        }
        self.put_view_buf(staged);
    }

    /// CHECKOUTGOINGTRANSITIONS: build the candidate token transitions of `gv` for the
    /// event `e`.  With the arena on, the cuts and conjunct buffers come from the
    /// scratch pools (they return when the token's transitions are decided).
    fn candidate_transitions(&mut self, gv: &GlobalView, e: &Event) -> Vec<TokenTransition> {
        let mut out = self.take_transition_buf();
        // A second handle to the shared automaton, so iterating its transitions does
        // not hold a borrow of `self` across the pool calls below.
        let automaton = Arc::clone(&self.automaton);
        for t in automaton.outgoing_transitions(gv.q) {
            // The local conjunct must be satisfied by the process's own (fresh) state.
            if !self.conjunct_of(t, self.pid).eval(gv.gstate) {
                continue;
            }
            // §4.3.3: exploring a transition whose target verdict a sibling view
            // already detected cannot change what is reported — skip it outright.
            if self.target_verdict_subsumed(t.to) {
                continue;
            }
            // Determine which processes "forbid" the transition: their believed state
            // does not satisfy their conjunct.  If nobody forbids, the transition is
            // already enabled under the believed state and needs no token.
            let mut conjuncts = self.take_conjunct_buf();
            conjuncts.reserve(self.n);
            let mut has_forbidding = false;
            for p in 0..self.n {
                let c = if !self.participates(t, p) {
                    ConjunctEval::NotInvolved
                } else if p == self.pid || self.conjunct_of(t, p).eval(gv.gstate) {
                    // The monitor's own conjunct was already checked above; remote
                    // conjuncts count as satisfied under the believed state.
                    ConjunctEval::True
                } else {
                    has_forbidding = true;
                    ConjunctEval::Unset
                };
                conjuncts.push(c);
            }
            if !has_forbidding {
                if self.opts.arena_recycling && self.scratch.conjuncts.len() < POOL_CAP {
                    conjuncts.clear();
                    self.scratch.conjuncts.push(conjuncts);
                }
                continue;
            }
            let gcut = {
                let mut g = self.clock_copy(&gv.gcut);
                g.merge(&e.vc);
                g
            };
            let depend = self.clock_copy(&gcut);
            let first_unset = conjuncts
                .iter()
                .position(|c| *c == ConjunctEval::Unset)
                .expect("has_forbidding implies an unset conjunct");
            let next_target_event = gcut.get(first_unset).max(e.vc.get(first_unset)) + 1;
            out.push(TokenTransition {
                transition_id: t.id,
                gcut,
                depend,
                gstate: gv.gstate,
                conjuncts,
                next_target_process: first_unset,
                next_target_event,
                eval: EvalState::Unset,
            });
        }
        out
    }

    /// SENDTONEXTPROCESS: decide where `token` goes next, following the routing rules
    /// of §4.2.0.6, and dispatch it (send, keep waiting locally, or hand back to the
    /// owning global view when this monitor is the parent).
    fn route_token(&mut self, mut token: Token, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        // Rule 1: an enabled transition sends the token home.
        let target: RouteTarget = if token
            .transitions
            .iter()
            .any(|t| t.eval == EvalState::Enabled)
        {
            RouteTarget::Parent
        } else if let Some(t) = token.transitions.iter().find(|t| {
            t.eval == EvalState::Unset && t.next_target_process == self.pid
        }) {
            // Rule 2: some transition wants an event of this very process.
            token.next_target_process = self.pid;
            token.next_target_event = t.next_target_event;
            RouteTarget::Local
        } else if let Some(t) = token.transitions.iter().find(|t| {
            t.eval == EvalState::Unset
                && t.next_target_process != token.parent
                && t.next_target_process != self.pid
        }) {
            // Rule 3: visit another process that some transition targets.
            token.next_target_process = t.next_target_process;
            token.next_target_event = t.next_target_event;
            RouteTarget::Remote(t.next_target_process)
        } else if let Some(t) = token
            .transitions
            .iter()
            .find(|t| t.eval == EvalState::Unset && t.next_target_process == token.parent)
        {
            // Rule 4 variant: only the parent is left to visit.
            token.next_target_process = t.next_target_process;
            token.next_target_event = t.next_target_event;
            if token.parent == self.pid {
                RouteTarget::Local
            } else {
                RouteTarget::Parent
            }
        } else {
            RouteTarget::Parent
        };

        match target {
            RouteTarget::Local => {
                // If the requested event is already in our history, process it right
                // away; otherwise wait for it.
                self.advance_local_token(token, ctx);
            }
            RouteTarget::Remote(p) => {
                self.send_token(p, token, ctx);
            }
            RouteTarget::Parent => {
                if token.parent == self.pid {
                    self.handle_returned_token(token, ctx);
                } else {
                    let parent = token.parent;
                    self.send_token(parent, token, ctx);
                }
            }
        }
    }

    /// Feeds the token already-known local events (starting at its target sequence
    /// number) until it is routed away or has to wait for a future event.
    fn advance_local_token(&mut self, mut token: Token, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        loop {
            if token.next_target_process != self.pid {
                // Re-routing decided elsewhere.
                self.route_token(token, ctx);
                return;
            }
            let sn = token.next_target_event;
            if sn == 0 || sn as usize > self.history.len() {
                if self.local_terminated {
                    // No further events will ever occur here: the pending conjuncts of
                    // transitions targeting us can never be satisfied.
                    self.fail_local_targets(&mut token);
                    self.dispatch_after_local_processing(token, ctx);
                } else {
                    self.waiting_tokens.park(token);
                }
                return;
            }
            let event = Arc::clone(&self.history[(sn - 1) as usize]);
            let keep_going = self.process_token_with_event(&mut token, &event);
            if !keep_going {
                self.dispatch_after_local_processing(token, ctx);
                return;
            }
        }
    }

    /// After local processing, decide where the token goes (never "Local" again unless
    /// it must wait).
    fn dispatch_after_local_processing(
        &mut self,
        token: Token,
        ctx: &mut MonitorContext<'_, MonitorMsg>,
    ) {
        self.route_token(token, ctx);
    }

    /// PROCESSTOKEN + EVALUATETOKEN for one local event.  Returns `true` when the token
    /// should continue consuming this monitor's subsequent local events.
    fn process_token_with_event(&mut self, token: &mut Token, event: &Event) -> bool {
        let sn = event.sn;
        // ADDEVENTTOTOKEN for every transition targeting (self, sn).
        let mut targeted = if self.opts.arena_recycling {
            std::mem::take(&mut self.scratch.targeted)
        } else {
            Vec::new()
        };
        targeted.clear();
        for (idx, tran) in token.transitions.iter_mut().enumerate() {
            if tran.eval == EvalState::Unset
                && tran.next_target_process == self.pid
                && tran.next_target_event == sn
            {
                tran.gcut.set(self.pid, sn);
                tran.depend.merge(&event.vc);
                let mut gstate = tran.gstate;
                self.apply_local_state(&mut gstate, self.pid, event.state);
                tran.gstate = gstate;
                targeted.push(idx);
            }
        }
        if targeted.is_empty() {
            if self.opts.arena_recycling {
                self.scratch.targeted = targeted;
            }
            return false;
        }

        // EVALUATETOKEN: evaluate this process's conjunct of every targeted transition.
        let mut any_true = false;
        let mut local_results = if self.opts.arena_recycling {
            std::mem::take(&mut self.scratch.local_results)
        } else {
            Vec::new()
        };
        local_results.clear();
        for &idx in &targeted {
            let tran = &token.transitions[idx];
            if tran.conjuncts[self.pid] == ConjunctEval::NotInvolved {
                // Only visited to repair an inconsistency; nothing to evaluate here and
                // this must not influence the ordering flag below.
                continue;
            }
            let symbolic = self.automaton.transition(tran.transition_id).clone();
            let ok = self.conjunct_of(&symbolic, self.pid).eval(event.state);
            any_true |= ok;
            local_results.push((idx, ok));
        }

        for (idx, ok) in &local_results {
            let tran = &mut token.transitions[*idx];
            if tran.conjuncts[self.pid] != ConjunctEval::NotInvolved {
                if any_true {
                    tran.conjuncts[self.pid] = if *ok { ConjunctEval::True } else { ConjunctEval::False };
                } else {
                    // No candidate satisfied at this event: keep looking at later ones.
                    tran.conjuncts[self.pid] = ConjunctEval::Unset;
                }
            }
        }

        // Decide each targeted transition's fate.
        for &idx in &targeted {
            let tran = &mut token.transitions[idx];
            if tran.conjuncts[self.pid] == ConjunctEval::False {
                tran.eval = EvalState::Disabled;
                tran.next_target_process = token.parent;
            } else if tran.all_conjuncts_true() {
                if let Some(k) = tran.inconsistent_process() {
                    tran.next_target_process = k;
                    tran.next_target_event = tran.gcut.get(k) + 1;
                } else {
                    tran.eval = EvalState::Enabled;
                    tran.next_target_process = token.parent;
                }
            } else if let Some(k) = tran.inconsistent_process() {
                tran.next_target_process = k;
                tran.next_target_event = tran.gcut.get(k) + 1;
            } else if let Some(k) = tran.first_unset_process() {
                tran.next_target_process = k;
                tran.next_target_event = tran.gcut.get(k) + 1;
            }
        }

        // Continue locally only if some transition still targets this process's future.
        let continue_here = token.transitions.iter().any(|t| {
            t.eval == EvalState::Unset && t.next_target_process == self.pid
        });
        if continue_here {
            let next = token
                .transitions
                .iter()
                .filter(|t| t.eval == EvalState::Unset && t.next_target_process == self.pid)
                .map(|t| t.next_target_event)
                .min()
                .expect("continue_here implies a local target");
            token.next_target_process = self.pid;
            token.next_target_event = next;
        }
        if self.opts.arena_recycling {
            self.scratch.targeted = targeted;
            self.scratch.local_results = local_results;
        }
        continue_here
    }

    /// Marks every transition waiting on this (terminated) process as disabled.
    fn fail_local_targets(&self, token: &mut Token) {
        for tran in &mut token.transitions {
            if tran.eval == EvalState::Unset
                && tran.next_target_process == self.pid
                && tran.next_target_event as usize > self.history.len()
            {
                if tran.conjuncts[self.pid] != ConjunctEval::NotInvolved {
                    tran.conjuncts[self.pid] = ConjunctEval::False;
                }
                tran.eval = EvalState::Disabled;
                tran.next_target_process = token.parent;
            }
        }
    }

    /// RECEIVETOKEN when this monitor is the token's parent: spawn views for enabled
    /// transitions, drop disabled ones, retarget inconsistent ones and either finish or
    /// re-route the token.
    fn handle_returned_token(&mut self, mut token: Token, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        let owner_idx = self.views.iter().position(|gv| gv.id == token.parent_gv);

        // §4.3.2: the exploration points already represented, so an enabled
        // transition never forks a duplicate view.  Two equivalent forms: without the
        // arena, a lazily built hash snapshot (one probe per spawn, but every live
        // view's cut is cloned into its key); with the arena, a direct scan of the
        // live view set — freshly spawned views are pushed into `self.views`
        // immediately, so the scan sees exactly the snapshot-plus-inserts membership
        // without allocating anything.
        let mut existing: Option<HashSet<ViewKey>> = None;

        let mut enabled_targets: BTreeSet<dlrv_automaton::StateId> = BTreeSet::new();
        let mut remaining: Vec<TokenTransition> = self.take_transition_buf();
        for tran in token.transitions.drain(..) {
            match tran.eval {
                EvalState::Enabled => {
                    let target = self.automaton.transition(tran.transition_id).to;
                    // §4.3.3: once some transition into `target` is enabled, siblings
                    // into the same target are redundant; likewise explorations whose
                    // target verdict a sibling view already detected.
                    if self.opts.prune_disjunctive && enabled_targets.contains(&target) {
                        self.reclaim_transition(tran);
                        continue;
                    }
                    if self.target_verdict_subsumed(target) {
                        enabled_targets.insert(target);
                        self.reclaim_transition(tran);
                        continue;
                    }
                    enabled_targets.insert(target);
                    if self.opts.dedup_global_views {
                        let duplicate = if self.opts.arena_recycling {
                            self.views.iter().any(|gv| {
                                gv.q == target
                                    && gv.gstate == tran.gstate
                                    && gv.gcut == tran.gcut
                            })
                        } else {
                            let keys = existing.get_or_insert_with(|| {
                                self.views.iter().map(GlobalView::slice_key).collect()
                            });
                            let key = ViewKey {
                                q: target,
                                gcut: tran.gcut.clone(),
                                gstate: tran.gstate,
                            };
                            !keys.insert(key)
                        };
                        if duplicate {
                            self.reclaim_transition(tran);
                            continue;
                        }
                    }
                    // The cut moves into the spawned view; the rest of the
                    // transition's allocations are reclaimed.
                    let TokenTransition {
                        gcut,
                        depend,
                        gstate,
                        mut conjuncts,
                        ..
                    } = tran;
                    self.spawn_view(target, gcut, gstate);
                    self.reclaim_clock(depend);
                    if self.opts.arena_recycling && self.scratch.conjuncts.len() < POOL_CAP {
                        conjuncts.clear();
                        self.scratch.conjuncts.push(conjuncts);
                    }
                }
                EvalState::Disabled => {
                    self.reclaim_transition(tran);
                }
                EvalState::Unset => {
                    let mut tran = tran;
                    if let Some(k) = tran.inconsistent_process() {
                        tran.next_target_process = k;
                        tran.next_target_event = tran.gcut.get(k) + 1;
                    }
                    // §4.3.3 also applies to still-pending siblings.
                    let target = self.automaton.transition(tran.transition_id).to;
                    if self.opts.prune_disjunctive && enabled_targets.contains(&target) {
                        self.reclaim_transition(tran);
                        continue;
                    }
                    if self.target_verdict_subsumed(target) {
                        self.reclaim_transition(tran);
                        continue;
                    }
                    remaining.push(tran);
                }
            }
        }

        if remaining.is_empty() {
            self.put_transition_buf(remaining);
            self.put_transition_buf(std::mem::take(&mut token.transitions));
            // The exploration is over: release the in-flight slot, unblock the owning
            // view and drain its queue.
            if let Some(count) = self.in_flight.get_mut(&token.origin_state) {
                *count = count.saturating_sub(1);
            }
            if let Some(idx) = owner_idx {
                self.views[idx].state = GvState::Unblocked;
                self.drain_pending(idx, ctx);
            }
            self.merge_similar_views();
        } else {
            let drained = std::mem::replace(&mut token.transitions, remaining);
            self.put_transition_buf(drained);
            self.route_token(token, ctx);
        }
    }

    /// Forks a new global view at `q` with the constructed cut and state (the caller
    /// has already applied the §4.3.2 duplicate check).  With the arena on, a retired
    /// view is overwritten in place instead of allocating a fresh one.
    fn spawn_view(&mut self, q: dlrv_automaton::StateId, gcut: VectorClock, gstate: Assignment) {
        let id = self.next_gv_id;
        self.next_gv_id += 1;
        let gv = match self.take_free_view() {
            Some(mut view) => {
                self.reclaim_clock(std::mem::replace(&mut view.gcut, gcut));
                view.id = id;
                view.gstate = gstate;
                view.q = q;
                view.pending.clear();
                view.keep_after_fork = false;
                view.state = GvState::Unblocked;
                view
            }
            None => GlobalView {
                id,
                gcut,
                gstate,
                q,
                pending: Default::default(),
                keep_after_fork: false,
                state: GvState::Unblocked,
            },
        };
        self.metrics.global_views_created += 1;
        self.record_state_verdict(q);
        self.views.push(gv);
        self.note_view_peak();
    }

    /// PROCESSEVENT (Algorithm 2) for one view; may fork a copy and/or emit a token.
    ///
    /// The views this call produces (the continuation first, then any forks) are
    /// pushed into `produced`, which must arrive empty — an out-parameter so callers
    /// can recycle one buffer across an event's whole view set.
    fn process_event_on_view(
        &mut self,
        mut gv: GlobalView,
        e: &Event,
        ctx: &mut MonitorContext<'_, MonitorMsg>,
        produced: &mut Vec<GlobalView>,
    ) {
        debug_assert!(produced.is_empty());

        // Fold the local event into the view.
        gv.gcut.set(self.pid, e.vc.get(self.pid));
        let mut gstate = gv.gstate;
        self.apply_local_state(&mut gstate, self.pid, e.state);
        gv.gstate = gstate;

        // The event is inconsistent with the view when it already knows about more
        // events of other processes than the view has folded in.
        let is_consistent =
            (0..self.n).all(|j| j == self.pid || gv.gcut.get(j) >= e.vc.get(j));

        gv.keep_after_fork = false;
        if is_consistent {
            let target = self.automaton.step(gv.q, gv.gstate);
            if target != gv.q || !self.automaton.is_final(gv.q) {
                gv.q = target;
                gv.keep_after_fork = true;
                self.record_state_verdict(target);
            }
        }

        // Look for outgoing transitions that concurrent events elsewhere could enable.
        let candidates = if self.automaton.is_final(gv.q) {
            Vec::new()
        } else {
            self.candidate_transitions(&gv, e)
        };

        // §4.3.2: if an exploration for this automaton state is already in flight at
        // this monitor, do not launch a duplicate one — the waiting view will reprocess
        // the buffered events once its token returns.
        let already_exploring = self.opts.dedup_global_views
            && self.in_flight.get(&gv.q).copied().unwrap_or(0) > 0;

        if candidates.is_empty() || already_exploring {
            let mut candidates = candidates;
            for tran in candidates.drain(..) {
                self.reclaim_transition(tran);
            }
            self.put_transition_buf(candidates);
            produced.push(gv);
            return;
        }

        // Fork: keep a copy following the local progress path while the original waits
        // for the token (Algorithm 2, lines 33–37).
        if gv.keep_after_fork {
            let duplicate_exists = self.opts.dedup_global_views
                && (self.views.iter().any(|other| other.same_slice(&gv))
                    || produced.iter().any(|other: &GlobalView| other.same_slice(&gv)));
            if !duplicate_exists {
                // The fork starts with an empty queue, so a retired view's buffers
                // can host it without ever cloning the pending events.
                let mut copy = match self.take_free_view() {
                    Some(mut view) => {
                        view.gcut.copy_from(&gv.gcut);
                        view.gstate = gv.gstate;
                        view.q = gv.q;
                        view.pending.clear();
                        view
                    }
                    None => {
                        let mut fresh = gv.clone();
                        fresh.pending.clear();
                        fresh
                    }
                };
                copy.id = self.next_gv_id;
                self.next_gv_id += 1;
                copy.keep_after_fork = false;
                copy.state = GvState::Unblocked;
                self.metrics.global_views_created += 1;
                produced.push(copy);
            }
        }

        // Emit the token(s); the parent-event clock is interned so every token of the
        // fan-out shares one allocation.
        let origin_state = gv.q;
        gv.state = GvState::Waiting;
        let parent_gv = gv.id;
        let shared_vc = self.intern.intern(&e.vc);
        if self.opts.aggregate_tokens {
            let token = Token {
                property: self.property,
                parent: self.pid,
                origin_state,
                parent_gv,
                parent_event_vc: shared_vc,
                transitions: candidates,
                next_target_process: self.pid,
                next_target_event: 0,
            };
            *self.in_flight.entry(origin_state).or_insert(0) += 1;
            produced.push(gv);
            self.route_token(token, ctx);
        } else {
            let mut candidates = candidates;
            for tran in candidates.drain(..) {
                let mut transitions = self.take_transition_buf();
                transitions.push(tran);
                let token = Token {
                    property: self.property,
                    parent: self.pid,
                    origin_state,
                    parent_gv,
                    parent_event_vc: shared_vc.clone(),
                    transitions,
                    next_target_process: self.pid,
                    next_target_event: 0,
                };
                *self.in_flight.entry(origin_state).or_insert(0) += 1;
                self.route_token(token, ctx);
            }
            self.put_transition_buf(candidates);
            produced.push(gv);
        }
    }

    /// Drains the pending queue of view `idx` as long as it stays unblocked.
    fn drain_pending(&mut self, idx: usize, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        let mut produced = self.take_view_buf();
        loop {
            if idx >= self.views.len() || !self.views[idx].is_unblocked() {
                break;
            }
            let Some(event) = self.views[idx].pending.pop_front() else {
                break;
            };
            let gv = self.views.remove(idx);
            self.process_event_on_view(gv, &event, ctx, &mut produced);
            // Reinsert produced views at the same position to keep `idx` meaningful:
            // the first produced view is the continuation of the drained one.
            for (offset, v) in produced.drain(..).enumerate() {
                self.views.insert(idx + offset, v);
            }
            self.note_view_peak();
        }
        self.put_view_buf(produced);
    }
}

enum RouteTarget {
    Local,
    Remote(ProcessId),
    Parent,
}

impl MonitorBehavior for DecentralizedMonitor {
    type Message = MonitorMsg;

    /// RECEIVEEVENT (Algorithm 2).
    fn on_local_event(&mut self, event: &Arc<Event>, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        let _span = dlrv_obs::span("monitor.local_event");
        self.metrics.events_observed += 1;
        self.metrics.last_event_time = ctx.now;
        self.metrics.last_activity_time = ctx.now;
        // The caller's allocation is shared as-is by the history and every view's
        // pending queue — no per-event deep clone on the hot path.
        let event = Arc::clone(event);
        self.history.push(Arc::clone(&event));
        self.merge_similar_views();

        // Wake up exactly the tokens waiting for this event (per-cut index lookup).
        for token in self.waiting_tokens.take(event.sn) {
            self.advance_local_token(token, ctx);
        }

        // Deliver the event to every view (waiting views just buffer it).  The view
        // set is rebuilt through recycled staging buffers; `self.views` holds only
        // synchronously spawned views until the rebuilt set is appended, exactly as
        // in the allocating version.
        let mut delayed = 0usize;
        let mut staged = self.take_view_buf();
        std::mem::swap(&mut staged, &mut self.views);
        let mut rebuilt = self.take_view_buf();
        rebuilt.reserve(staged.len());
        let mut produced = self.take_view_buf();
        for mut gv in staged.drain(..) {
            gv.pending.push_back(Arc::clone(&event));
            if gv.is_unblocked() {
                // Process the whole queue while the view stays unblocked.
                loop {
                    if !gv.is_unblocked() {
                        break;
                    }
                    let Some(e) = gv.pending.pop_front() else { break };
                    self.process_event_on_view(gv, &e, ctx, &mut produced);
                    // The first produced view is the continuation; the rest are forks.
                    let mut views = produced.drain(..);
                    gv = views.next().expect("the continuation view is always produced");
                    rebuilt.extend(views);
                }
                rebuilt.push(gv);
            } else {
                delayed += gv.pending.len();
                rebuilt.push(gv);
            }
        }
        self.put_view_buf(staged);
        self.put_view_buf(produced);
        self.views.append(&mut rebuilt);
        self.put_view_buf(rebuilt);
        self.metrics.queued_events_sum += delayed;
        self.metrics.queued_events_samples += 1;
        self.metrics.max_queued_events = self.metrics.max_queued_events.max(delayed);
        self.merge_similar_views();
        self.note_view_peak();
        self.flush_outbound(ctx);
    }

    fn on_monitor_message(
        &mut self,
        _from: ProcessId,
        msg: MonitorMsg,
        ctx: &mut MonitorContext<'_, MonitorMsg>,
    ) {
        self.metrics.last_activity_time = ctx.now;
        match msg {
            MonitorMsg::Token(token) => {
                self.metrics.tokens_received += 1;
                dlrv_obs::counter!("monitor.tokens_received").inc();
                if token.parent == self.pid {
                    self.handle_returned_token(token, ctx);
                } else {
                    // A foreign token: serve it from our history or park it.
                    self.advance_local_token(token, ctx);
                }
            }
            MonitorMsg::Batch(tokens) => {
                // §4.3.1: an aggregated message — process the carried tokens in order,
                // exactly as if they had arrived as consecutive messages.
                self.metrics.tokens_received += tokens.len();
                dlrv_obs::counter!("monitor.tokens_received").add(tokens.len() as u64);
                for token in tokens {
                    if token.parent == self.pid {
                        self.handle_returned_token(token, ctx);
                    } else {
                        self.advance_local_token(token, ctx);
                    }
                }
            }
            MonitorMsg::Terminated { process, last_sn } => {
                self.peer_last_sn[process] = Some(last_sn);
            }
        }
        self.note_view_peak();
        self.flush_outbound(ctx);
    }

    /// TERMINATE (§4.2.0.10).
    fn on_local_termination(&mut self, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        self.local_terminated = true;
        self.metrics.last_activity_time = ctx.now;
        let last_sn = self.history.len() as u64;
        // Tell every peer we will produce no more events.
        for p in 0..self.n {
            if p != self.pid {
                ctx.send(
                    p,
                    MonitorMsg::Terminated {
                        process: self.pid,
                        last_sn,
                    },
                );
            }
        }
        // Fail every token parked here waiting for events that will never happen.
        for mut token in self.waiting_tokens.drain_all() {
            self.fail_local_targets(&mut token);
            self.route_token(token, ctx);
        }
        self.flush_outbound(ctx);
        self.metrics.global_views_final = self.views.len();
        self.metrics.possible_verdicts = self.possible_verdicts();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_ltl::Formula;

    fn setup(n: usize, formula: Formula, reg: AtomRegistry) -> Vec<DecentralizedMonitor> {
        let automaton = Arc::new(MonitorAutomaton::synthesize(&formula, &reg));
        let registry = Arc::new(reg);
        (0..n)
            .map(|i| {
                DecentralizedMonitor::new(
                    i,
                    n,
                    automaton.clone(),
                    registry.clone(),
                    Assignment::ALL_FALSE,
                    MonitorOptions::default(),
                )
            })
            .collect()
    }

    #[test]
    fn initial_view_reflects_initial_global_state() {
        let mut reg = AtomRegistry::new();
        let a0 = reg.intern("P0.p", 0);
        let _a1 = reg.intern("P1.p", 1);
        let phi = Formula::eventually(Formula::Atom(a0));
        let monitors = setup(2, phi, reg);
        assert_eq!(monitors[0].views().len(), 1);
        assert_eq!(
            monitors[0].possible_verdicts(),
            BTreeSet::from([Verdict::Unknown])
        );
    }

    #[test]
    fn monitor_options_default_enables_all_optimizations() {
        let opts = MonitorOptions::default();
        assert!(opts.aggregate_tokens && opts.dedup_global_views && opts.prune_disjunctive);
        assert!(opts.arena_recycling);
        assert_eq!(
            MonitorOptions::ALL_OFF,
            MonitorOptions {
                aggregate_tokens: false,
                dedup_global_views: false,
                prune_disjunctive: false,
                arena_recycling: false,
            }
        );
    }

    #[test]
    fn all_combinations_enumerates_every_flag_setting() {
        let combos = MonitorOptions::all_combinations();
        let unique: std::collections::BTreeSet<(bool, bool, bool, bool)> = combos
            .iter()
            .map(|o| {
                (
                    o.aggregate_tokens,
                    o.dedup_global_views,
                    o.prune_disjunctive,
                    o.arena_recycling,
                )
            })
            .collect();
        assert_eq!(unique.len(), 16);
        assert!(combos.contains(&MonitorOptions::ALL_OFF));
        assert!(combos.contains(&MonitorOptions::default()));
    }

    #[test]
    fn local_only_violation_is_detected_without_tokens() {
        // G P0.p violated by P0's own first event — no communication needed.
        let mut reg = AtomRegistry::new();
        let a0 = reg.intern("P0.p", 0);
        let phi = Formula::globally(Formula::Atom(a0));
        // Initial state: P0.p true, so the property is alive initially.
        let automaton = Arc::new(MonitorAutomaton::synthesize(&phi, &reg));
        let registry = Arc::new(reg);
        let init = Assignment::from_true_atoms([a0]);
        let mut m0 = DecentralizedMonitor::new(
            0,
            2,
            automaton,
            registry,
            init,
            MonitorOptions::default(),
        );
        let mut outbox = Vec::new();
        let mut ctx = MonitorContext::new(0, 2, 1.0, &mut outbox);
        let event = Event {
            process: 0,
            kind: dlrv_vclock::EventKind::Internal,
            sn: 1,
            vc: VectorClock::from_entries(vec![1, 0]),
            state: Assignment::ALL_FALSE, // P0.p becomes false
            time: 1.0,
        };
        m0.on_local_event(&Arc::new(event), &mut ctx);
        assert!(m0.detected_final_verdicts().contains(&Verdict::False));
        assert!(outbox.is_empty(), "a purely local violation needs no tokens");
    }

    #[test]
    fn peak_view_metric_tracks_the_initial_view() {
        let mut reg = AtomRegistry::new();
        let a0 = reg.intern("P0.p", 0);
        let _a1 = reg.intern("P1.p", 1);
        let monitors = setup(2, Formula::eventually(Formula::Atom(a0)), reg);
        assert_eq!(monitors[0].metrics().max_live_views, 1);
    }
}
