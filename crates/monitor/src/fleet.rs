//! Fleet monitoring: N properties over one event stream with shared transport.
//!
//! The paper's architecture monitors one LTL property per run, so a spec suite of
//! N properties costs N full pipelines — N stream decodes, N vector-clock
//! updates and N independent token meshes over the *same* trace.  A
//! [`FleetMonitor`] collapses that: it wraps one [`DecentralizedMonitor`] per
//! property ("fleet member") behind a single [`MonitorBehavior`], so one
//! [`FeedSession`] drives every member at once and the per-property *marginal*
//! cost drops instead of multiplying.
//!
//! What is shared across members:
//!
//! * **The decoded event** — each [`Arc<Event>`] is decoded (or simulated) once
//!   and handed to every member by reference; members retain the same allocation
//!   in their histories and pending queues, so the event's vector clock exists
//!   once per process, not once per property.
//! * **Transport** — with `aggregate_tokens` on (§4.3.1), outbound tokens from
//!   *all* members to the same destination ride one [`MonitorMsg::Batch`].  The
//!   [`Token::property`] field is the property-id dimension of the batch: the
//!   receiving fleet demultiplexes tokens back to their members.  One
//!   `Terminated` notification per peer serves the whole fleet (every member
//!   observes the same local history, so the notifications are identical).
//!
//! What is *not* shared: all monitor state — global views, waiting tokens,
//! clock-intern pools, scratch arenas — stays strictly per member, so properties
//! cannot bleed state into each other.  This is load-bearing for the
//! equivalence guarantee below.
//!
//! **Equivalence.**  Each member is a deterministic state machine driven only by
//! its local events and its own tokens.  The fleet preserves, per member, the
//! exact solo schedule: members activate on the same events in the same order,
//! a merged batch delivers member `k`'s tokens as exactly the message member `k`
//! would have received solo (same tokens, same order, same `Token`/`Batch`
//! wrapping), and with `aggregate_tokens` off messages pass through unmerged in
//! emission order.  Per-property verdicts and token counts are therefore
//! byte-identical to N independent runs — pinned by `tests/fleet_equivalence.rs`
//! across shard counts and every [`MonitorOptions`] combination.

use crate::decentralized::{DecentralizedMonitor, MonitorOptions};
use crate::feed::{FeedSession, SessionVerdicts};
use crate::messages::{MonitorMsg, Token};
use crate::metrics::MonitorMetrics;
use dlrv_automaton::MonitorAutomaton;
use dlrv_distsim::{MonitorBehavior, MonitorContext};
use dlrv_ltl::{Assignment, AtomRegistry, ProcessId, Verdict};
use dlrv_vclock::Event;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One property of a fleet: the compiled monitor automaton, its atom registry
/// and the initial global state its monitors start from.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// The property's monitor automaton (shared by every process replica).
    pub automaton: Arc<MonitorAutomaton>,
    /// The property's atom registry (conjunct ownership).
    pub registry: Arc<AtomRegistry>,
    /// The initial global state the property's monitors are advanced over.
    pub initial_state: Assignment,
}

/// The monitor of one process in a fleet run: one [`DecentralizedMonitor`] per
/// property, all attached to the same process, sharing decoded events and
/// outbound transport.
///
/// Member `k`'s tokens are stamped with [`Token::property`]` == k`; on receipt
/// the fleet demultiplexes on that field, so a member only ever sees its own
/// tokens and cannot observe (or disturb) another property's exploration.
#[derive(Debug, Clone)]
pub struct FleetMonitor {
    pid: ProcessId,
    n: usize,
    /// §4.3.1 switch of the fleet's shared options: when set, tokens of *all*
    /// members bound for one destination merge into one batch per activation;
    /// when off, every member's messages pass through unmerged (aggregation off
    /// means off — including the cross-property kind).
    aggregate: bool,
    members: Vec<DecentralizedMonitor>,
    /// Recycled capture buffer for one member activation.
    member_outbox: Vec<(ProcessId, MonitorMsg)>,
    /// Cross-member per-destination token staging (aggregate mode), indexed by
    /// destination process and flushed at the end of every fleet activation in
    /// ascending destination order — exactly the order each member's own §4.3.1
    /// flush uses, so the merge preserves every member's solo emission
    /// schedule.  Buffers are reused across activations (this is the fleet's
    /// per-event hot path; a map rebuilt per flush would churn the allocator).
    staging: Vec<Vec<Token>>,
    /// Per-member regroup buffers of incoming batch demultiplexing, reused
    /// across messages.
    demux: Vec<Vec<Token>>,
    /// Retired token vectors (unwrapped incoming batches, flushed staging
    /// groups), reused for outgoing batches.
    token_pool: Vec<Vec<Token>>,
    /// Messages forwarded verbatim, in emission order: `Terminated`
    /// notifications (first member only — they are identical across members)
    /// and, with `aggregate` off, every token message.
    direct: Vec<(ProcessId, MonitorMsg)>,
}

impl FleetMonitor {
    /// Creates the fleet monitor of process `pid`: one [`DecentralizedMonitor`]
    /// per member, every member running under the same shared `opts`.
    pub fn new(
        pid: ProcessId,
        n_processes: usize,
        members: &[FleetMember],
        opts: MonitorOptions,
    ) -> Self {
        assert!(!members.is_empty(), "a fleet needs at least one property");
        let members: Vec<DecentralizedMonitor> = members
            .iter()
            .enumerate()
            .map(|(k, m)| {
                let mut monitor = DecentralizedMonitor::new(
                    pid,
                    n_processes,
                    m.automaton.clone(),
                    m.registry.clone(),
                    m.initial_state,
                    opts,
                );
                monitor.set_property_id(k as u32);
                monitor
            })
            .collect();
        let n_members = members.len();
        FleetMonitor {
            pid,
            n: n_processes,
            aggregate: opts.aggregate_tokens,
            members,
            member_outbox: Vec::new(),
            staging: vec![Vec::new(); n_processes],
            demux: vec![Vec::new(); n_members],
            token_pool: Vec::new(),
            direct: Vec::new(),
        }
    }

    /// Caps the retired-vector pool like the monitors' own scratch arenas.
    const TOKEN_POOL_CAP: usize = 64;

    /// Retires a token vector for reuse as a future outgoing batch.
    fn recycle_tokens(&mut self, mut tokens: Vec<Token>) {
        if self.token_pool.len() < Self::TOKEN_POOL_CAP {
            tokens.clear();
            self.token_pool.push(tokens);
        }
    }

    /// Number of properties in the fleet.
    pub fn fleet_size(&self) -> usize {
        self.members.len()
    }

    /// The per-property monitors, in member (property-id) order.
    pub fn members(&self) -> &[DecentralizedMonitor] {
        &self.members
    }

    /// Metrics snapshot of member `k`'s monitor at this process.
    pub fn member_metrics(&self, k: usize) -> MonitorMetrics {
        self.members[k].metrics()
    }

    /// Runs one activation of member `k`, capturing its emissions into the
    /// fleet's staging area (aggregate mode) or pass-through buffer.
    fn run_member(
        &mut self,
        k: usize,
        now: f64,
        activate: impl FnOnce(&mut DecentralizedMonitor, &mut MonitorContext<'_, MonitorMsg>),
    ) {
        let mut outbox = std::mem::take(&mut self.member_outbox);
        debug_assert!(outbox.is_empty());
        {
            let mut ctx = MonitorContext::new(self.pid, self.n, now, &mut outbox);
            activate(&mut self.members[k], &mut ctx);
        }
        for (dest, msg) in outbox.drain(..) {
            match msg {
                MonitorMsg::Terminated { .. } => {
                    // Every member observed the same local history, so the
                    // notifications are identical; one per peer serves the fleet.
                    if k == 0 {
                        self.direct.push((dest, msg));
                    }
                }
                _ if !self.aggregate => self.direct.push((dest, msg)),
                MonitorMsg::Token(token) => {
                    self.staging[dest].push(token);
                }
                MonitorMsg::Batch(mut tokens) => {
                    self.staging[dest].append(&mut tokens);
                    self.recycle_tokens(tokens);
                }
            }
        }
        self.member_outbox = outbox;
    }

    /// Emits everything captured during one fleet activation: direct messages
    /// first (`Terminated` precedes token traffic, as in a solo monitor's
    /// termination), then one merged message per staged destination.
    fn flush(&mut self, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        for (dest, msg) in self.direct.drain(..) {
            ctx.send(dest, msg);
        }
        for dest in 0..self.n {
            match self.staging[dest].len() {
                0 => {}
                1 => {
                    let token = self.staging[dest].pop().expect("one staged token");
                    ctx.send(dest, MonitorMsg::Token(token));
                }
                _ => {
                    let mut tokens = self.token_pool.pop().unwrap_or_default();
                    std::mem::swap(&mut tokens, &mut self.staging[dest]);
                    ctx.send(dest, MonitorMsg::Batch(tokens));
                }
            }
        }
    }

    /// Delivers `tokens` (all of one member, in received order) as the message
    /// the member would have received solo: a singleton travels as
    /// [`MonitorMsg::Token`], anything larger as [`MonitorMsg::Batch`].
    fn deliver_member_tokens(
        &mut self,
        k: usize,
        from: ProcessId,
        mut tokens: Vec<Token>,
        now: f64,
    ) {
        debug_assert!(!tokens.is_empty());
        let msg = if tokens.len() == 1 {
            MonitorMsg::Token(tokens.pop().expect("one delivered token"))
        } else {
            MonitorMsg::Batch(tokens)
        };
        self.run_member(k, now, |m, ctx| m.on_monitor_message(from, msg, ctx));
    }
}

impl MonitorBehavior for FleetMonitor {
    type Message = MonitorMsg;

    fn on_local_event(&mut self, event: &Arc<Event>, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        // One decode, one clock: every member retains the same `Arc<Event>`.
        for k in 0..self.members.len() {
            self.run_member(k, ctx.now, |m, mctx| m.on_local_event(event, mctx));
        }
        self.flush(ctx);
    }

    fn on_monitor_message(
        &mut self,
        from: ProcessId,
        msg: MonitorMsg,
        ctx: &mut MonitorContext<'_, MonitorMsg>,
    ) {
        match msg {
            MonitorMsg::Terminated { .. } => {
                // One wire notification fans out to every member (each solo run
                // would have received its own copy).
                for k in 0..self.members.len() {
                    let msg = msg.clone();
                    self.run_member(k, ctx.now, |m, mctx| {
                        m.on_monitor_message(from, msg, mctx)
                    });
                }
            }
            MonitorMsg::Token(token) => {
                let k = token.property as usize;
                self.deliver_member_tokens(k, from, vec![token], ctx.now);
            }
            MonitorMsg::Batch(mut tokens) => {
                // Demultiplex on the property id, preserving per-member order,
                // then deliver each member's group as one activation (ascending
                // member order, matching the sender's member-major merge).
                for token in tokens.drain(..) {
                    let k = token.property as usize;
                    self.demux[k].push(token);
                }
                self.recycle_tokens(tokens);
                for k in 0..self.demux.len() {
                    if self.demux[k].is_empty() {
                        continue;
                    }
                    let mut group = self.token_pool.pop().unwrap_or_default();
                    std::mem::swap(&mut group, &mut self.demux[k]);
                    self.deliver_member_tokens(k, from, group, ctx.now);
                }
            }
        }
        self.flush(ctx);
    }

    fn on_local_termination(&mut self, ctx: &mut MonitorContext<'_, MonitorMsg>) {
        for k in 0..self.members.len() {
            self.run_member(k, ctx.now, |m, mctx| m.on_local_termination(mctx));
        }
        self.flush(ctx);
    }
}

impl SessionVerdicts for FleetMonitor {
    fn detected_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set = BTreeSet::new();
        for m in &self.members {
            set.extend(m.detected_final_verdicts().iter().copied());
        }
        set
    }

    fn possible_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set = BTreeSet::new();
        for m in &self.members {
            set.extend(m.possible_verdicts());
        }
        set
    }
}

/// A feed session monitoring a whole property fleet in one pass.
pub type FleetSession = FeedSession<FleetMonitor>;

/// Creates a fleet session: one [`FleetMonitor`] per process, each wrapping one
/// [`DecentralizedMonitor`] per property, all under the same shared options.
pub fn fleet_session(
    n_processes: usize,
    members: &[FleetMember],
    opts: MonitorOptions,
) -> FleetSession {
    FeedSession::new(n_processes, |pid| {
        FleetMonitor::new(pid, n_processes, members, opts)
    })
}

/// Union of ⊤/⊥ verdicts member `k` detected at any process of `session`.
pub fn fleet_member_detected(session: &FleetSession, k: usize) -> BTreeSet<Verdict> {
    let mut set = BTreeSet::new();
    for fleet in session.monitors() {
        set.extend(fleet.members()[k].detected_final_verdicts().iter().copied());
    }
    set
}

/// Union of the verdicts member `k` still considers possible at any process.
pub fn fleet_member_possible(session: &FleetSession, k: usize) -> BTreeSet<Verdict> {
    let mut set = BTreeSet::new();
    for fleet in session.monitors() {
        set.extend(fleet.members()[k].possible_verdicts());
    }
    set
}

/// Metrics snapshots of member `k`'s monitors, in process order.
pub fn fleet_member_metrics(session: &FleetSession, k: usize) -> Vec<MonitorMetrics> {
    session
        .monitors()
        .iter()
        .map(|fleet| fleet.member_metrics(k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::decentralized_session;
    use dlrv_ltl::Formula;
    use dlrv_vclock::{EventKind, VectorClock};

    /// Two different properties over the same two-process alphabet.
    fn two_property_setup() -> (Vec<FleetMember>, Arc<AtomRegistry>) {
        let mut reg = AtomRegistry::new();
        let a = reg.intern("P0.p", 0);
        let b = reg.intern("P1.p", 1);
        let registry = Arc::new(reg);
        let phi0 = Formula::eventually(Formula::and(Formula::Atom(a), Formula::Atom(b)));
        let phi1 = Formula::globally(Formula::Atom(a));
        let members = vec![
            FleetMember {
                automaton: Arc::new(MonitorAutomaton::synthesize(&phi0, &registry)),
                registry: registry.clone(),
                initial_state: Assignment::ALL_FALSE,
            },
            FleetMember {
                automaton: Arc::new(MonitorAutomaton::synthesize(&phi1, &registry)),
                registry: registry.clone(),
                initial_state: Assignment::ALL_FALSE,
            },
        ];
        (members, registry)
    }

    fn internal(process: ProcessId, sn: u64, vc: Vec<u64>, state: Assignment, time: f64) -> Event {
        Event {
            process,
            kind: EventKind::Internal,
            sn,
            vc: VectorClock::from_entries(vc),
            state,
            time,
        }
    }

    fn sample_events(registry: &AtomRegistry) -> Vec<Event> {
        let a = registry.ids().next().expect("atom P0.p");
        vec![
            internal(0, 1, vec![1, 0], Assignment::from_true_atoms([a]), 1.0),
            internal(1, 1, vec![0, 1], Assignment::ALL_FALSE, 2.0),
            internal(0, 2, vec![2, 0], Assignment::ALL_FALSE, 3.0),
            internal(1, 2, vec![0, 2], Assignment::ALL_FALSE, 4.0),
        ]
    }

    #[test]
    fn fleet_matches_solo_runs_member_for_member() {
        for opts in MonitorOptions::all_combinations() {
            let (members, registry) = two_property_setup();
            let mut fleet = fleet_session(2, &members, opts);
            let mut solos: Vec<_> = members
                .iter()
                .map(|m| {
                    decentralized_session(2, &m.automaton, &m.registry, m.initial_state, opts)
                })
                .collect();
            for event in sample_events(&registry) {
                fleet.feed_owned(event.clone());
                for solo in &mut solos {
                    solo.feed_owned(event.clone());
                }
            }
            fleet.finish();
            for solo in &mut solos {
                solo.finish();
            }
            for (k, solo) in solos.iter().enumerate() {
                assert_eq!(
                    fleet_member_detected(&fleet, k),
                    solo.detected_verdicts(),
                    "detected verdicts of member {k} under {opts:?}"
                );
                assert_eq!(
                    fleet_member_possible(&fleet, k),
                    solo.possible_verdicts(),
                    "possible verdicts of member {k} under {opts:?}"
                );
                let fleet_tokens: usize = fleet_member_metrics(&fleet, k)
                    .iter()
                    .map(|m| m.tokens_sent)
                    .sum();
                let solo_tokens: usize =
                    solo.monitors().iter().map(|m| m.metrics().tokens_sent).sum();
                assert_eq!(fleet_tokens, solo_tokens, "token count of member {k} under {opts:?}");
            }
        }
    }

    #[test]
    fn fleet_transport_is_cheaper_than_sum_of_solos() {
        let (members, registry) = two_property_setup();
        let opts = MonitorOptions::default();
        let mut fleet = fleet_session(2, &members, opts);
        let mut solos: Vec<_> = members
            .iter()
            .map(|m| decentralized_session(2, &m.automaton, &m.registry, m.initial_state, opts))
            .collect();
        for event in sample_events(&registry) {
            fleet.feed_owned(event.clone());
            for solo in &mut solos {
                solo.feed_owned(event.clone());
            }
        }
        fleet.finish();
        let solo_messages: usize = solos
            .iter_mut()
            .map(|solo| {
                solo.finish();
                solo.monitor_messages()
            })
            .sum();
        assert!(
            fleet.monitor_messages() < solo_messages,
            "fleet sent {} messages, solos {}",
            fleet.monitor_messages(),
            solo_messages
        );
    }

    #[test]
    #[should_panic(expected = "at least one property")]
    fn empty_fleet_is_rejected() {
        let _ = FleetMonitor::new(0, 2, &[], MonitorOptions::default());
    }
}
