//! The incremental feed API: drive a set of co-located monitors one event at a time.
//!
//! The batch drivers ([`crate::replay`], the `dlrv-distsim` substrates) require the
//! whole computation up front.  A [`FeedSession`] inverts that: it owns the monitors
//! of one monitored execution ("session") and exposes
//! [`feed_event`](FeedSession::feed_event) — deliver one program event, drain all
//! monitor-to-monitor messages to quiescence, report the verdict so far — and
//! [`finish`](FeedSession::finish) for end-of-stream.  This is the substrate of the
//! online `dlrv-stream` runtime, where events arrive over a wire and millions of
//! sessions are monitored concurrently, none of which can afford to materialize its
//! trace first.
//!
//! Feeding events in timestamp order makes a session behaviorally identical to
//! [`replay_decentralized`](crate::replay::replay_decentralized) (which is itself
//! implemented on top of `FeedSession`): the token algorithm only ever reacts to the
//! delivered event sequence, so online feeding preserves the soundness and
//! completeness of the offline path — the equivalence is pinned by the repository's
//! `stream_equivalence` integration test.
//!
//! [`combined_verdict`] defines what a single incremental call reports when monitors
//! have detected final verdicts on several lattice paths.

use crate::centralized::CentralizedMonitor;
use crate::decentralized::{DecentralizedMonitor, MonitorOptions};
use dlrv_automaton::MonitorAutomaton;
use dlrv_distsim::{MonitorBehavior, MonitorContext};
use dlrv_ltl::{Assignment, AtomRegistry, ProcessId, Verdict};
use dlrv_vclock::Event;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Verdict reporting shared by every monitor kind a [`FeedSession`] can drive.
pub trait SessionVerdicts {
    /// ⊤/⊥ verdicts this monitor has detected so far.
    fn detected_verdicts(&self) -> BTreeSet<Verdict>;
    /// All verdicts this monitor still considers possible.
    fn possible_verdicts(&self) -> BTreeSet<Verdict>;
}

impl SessionVerdicts for DecentralizedMonitor {
    fn detected_verdicts(&self) -> BTreeSet<Verdict> {
        self.detected_final_verdicts().clone()
    }

    fn possible_verdicts(&self) -> BTreeSet<Verdict> {
        self.possible_verdicts()
    }
}

impl SessionVerdicts for CentralizedMonitor {
    fn detected_verdicts(&self) -> BTreeSet<Verdict> {
        self.metrics().detected_final_verdicts
    }

    fn possible_verdicts(&self) -> BTreeSet<Verdict> {
        self.metrics().possible_verdicts
    }
}

/// Collapses a set of detected final verdicts into the single verdict an online
/// caller acts on: a detected violation dominates, then a detected satisfaction,
/// otherwise the execution is still inconclusive.
pub fn combined_verdict(detected: &BTreeSet<Verdict>) -> Verdict {
    if detected.contains(&Verdict::False) {
        Verdict::False
    } else if detected.contains(&Verdict::True) {
        Verdict::True
    } else {
        Verdict::Unknown
    }
}

/// An incremental monitoring session: the monitors of one execution plus the
/// in-flight monitor messages between them.
///
/// Message delivery is zero-latency and drained to quiescence after every fed event
/// (exactly the discipline of the replay driver), so a session fed the events of a
/// computation in timestamp order produces the same verdicts — and the same number of
/// monitor messages — as replaying that computation offline.
#[derive(Debug)]
pub struct FeedSession<B: MonitorBehavior> {
    monitors: Vec<B>,
    inflight: VecDeque<(ProcessId, ProcessId, B::Message)>,
    /// Recycled per-activation outbox: one buffer for the whole session instead of a
    /// fresh `Vec` per delivered event/message.
    outbox: Vec<(ProcessId, B::Message)>,
    messages: usize,
    /// Largest event timestamp seen; termination is signalled at this time.
    last_time: f64,
    finished: bool,
}

impl<B: MonitorBehavior + SessionVerdicts> FeedSession<B> {
    /// Creates a session over monitors built by `make_monitor`, one per process.
    pub fn new(n_processes: usize, make_monitor: impl FnMut(ProcessId) -> B) -> Self {
        FeedSession {
            monitors: (0..n_processes).map(make_monitor).collect(),
            inflight: VecDeque::new(),
            outbox: Vec::new(),
            messages: 0,
            last_time: 0.0,
            finished: false,
        }
    }

    /// Number of processes (monitors) in the session.
    pub fn n_processes(&self) -> usize {
        self.monitors.len()
    }

    /// The monitors, in process order.
    pub fn monitors(&self) -> &[B] {
        &self.monitors
    }

    /// Consumes the session, returning its monitors.
    pub fn into_monitors(self) -> Vec<B> {
        self.monitors
    }

    /// Total monitor-to-monitor messages exchanged so far.
    pub fn monitor_messages(&self) -> usize {
        self.messages
    }

    /// True once [`finish`](Self::finish) has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Delivers one program event to the monitor of its process and drains monitor
    /// messages to quiescence.  Returns the [`combined_verdict`] detected so far.
    ///
    /// Events of one process must arrive in local (sequence-number) order; events of
    /// different processes should arrive in timestamp order for equivalence with the
    /// offline replay.  Feeding a finished session panics.
    ///
    /// The event is taken shared: monitors retain the same `Arc` in their histories
    /// and pending queues, so an online caller that owns its decoded event pays no
    /// per-event deep clone (wrap with [`Arc::new`]; see also
    /// [`feed_owned`](Self::feed_owned)).
    pub fn feed_event(&mut self, event: &Arc<Event>) -> Verdict {
        assert!(!self.finished, "cannot feed a finished session");
        let p = event.process;
        assert!(p < self.monitors.len(), "event process {p} out of range");
        self.last_time = self.last_time.max(event.time);
        let now = event.time;
        debug_assert!(self.outbox.is_empty());
        {
            let mut ctx = MonitorContext::new(p, self.monitors.len(), now, &mut self.outbox);
            self.monitors[p].on_local_event(event, &mut ctx);
        }
        self.messages += self.outbox.len();
        for (dest, m) in self.outbox.drain(..) {
            self.inflight.push_back((p, dest, m));
        }
        self.drain(now);
        self.verdict()
    }

    /// [`feed_event`](Self::feed_event) for an owned event: wraps it in the shared
    /// allocation the monitors retain.
    pub fn feed_owned(&mut self, event: Event) -> Verdict {
        self.feed_event(&Arc::new(event))
    }

    /// Signals end-of-stream: every monitor's local termination runs at the latest
    /// seen timestamp and messages drain to quiescence.  Idempotent; returns the
    /// final [`combined_verdict`].
    pub fn finish(&mut self) -> Verdict {
        if self.finished {
            return self.verdict();
        }
        self.finished = true;
        let n = self.monitors.len();
        let end_time = self.last_time;
        for p in 0..n {
            debug_assert!(self.outbox.is_empty());
            {
                let mut ctx = MonitorContext::new(p, n, end_time, &mut self.outbox);
                self.monitors[p].on_local_termination(&mut ctx);
            }
            self.messages += self.outbox.len();
            for (dest, m) in self.outbox.drain(..) {
                self.inflight.push_back((p, dest, m));
            }
            self.drain(end_time);
        }
        self.verdict()
    }

    /// The [`combined_verdict`] over every monitor's detections so far.
    pub fn verdict(&self) -> Verdict {
        combined_verdict(&self.detected_verdicts())
    }

    /// Union of ⊤/⊥ verdicts detected by any monitor.
    pub fn detected_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set = BTreeSet::new();
        for m in &self.monitors {
            set.extend(m.detected_verdicts());
        }
        set
    }

    /// Union of the verdicts any monitor still considers possible.
    pub fn possible_verdicts(&self) -> BTreeSet<Verdict> {
        let mut set = BTreeSet::new();
        for m in &self.monitors {
            set.extend(m.possible_verdicts());
        }
        set
    }

    /// Delivers in-flight monitor messages until no monitor has anything queued.
    fn drain(&mut self, now: f64) {
        let n = self.monitors.len();
        while let Some((from, to, msg)) = self.inflight.pop_front() {
            debug_assert!(self.outbox.is_empty());
            {
                let mut ctx = MonitorContext::new(to, n, now, &mut self.outbox);
                self.monitors[to].on_monitor_message(from, msg, &mut ctx);
            }
            self.messages += self.outbox.len();
            for (dest, m) in self.outbox.drain(..) {
                self.inflight.push_back((to, dest, m));
            }
        }
    }
}

/// A feed session over decentralized (token-algorithm) monitors.
pub type DecentralizedSession = FeedSession<DecentralizedMonitor>;

/// A feed session over the centralized baseline.
pub type CentralizedSession = FeedSession<CentralizedMonitor>;

/// Creates a decentralized session: one [`DecentralizedMonitor`] per process, all
/// starting from `initial_gstate`.
pub fn decentralized_session(
    n_processes: usize,
    automaton: &Arc<MonitorAutomaton>,
    registry: &Arc<AtomRegistry>,
    initial_gstate: Assignment,
    opts: MonitorOptions,
) -> DecentralizedSession {
    FeedSession::new(n_processes, |i| {
        DecentralizedMonitor::new(
            i,
            n_processes,
            automaton.clone(),
            registry.clone(),
            initial_gstate,
            opts,
        )
    })
}

/// Creates a centralized session with the collector at process `central`.
pub fn centralized_session(
    n_processes: usize,
    central: ProcessId,
    automaton: &Arc<MonitorAutomaton>,
    registry: &Arc<AtomRegistry>,
    initial_states: Vec<Assignment>,
) -> CentralizedSession {
    FeedSession::new(n_processes, |i| {
        CentralizedMonitor::new(
            i,
            n_processes,
            central,
            automaton.clone(),
            registry.clone(),
            initial_states.clone(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrv_ltl::Formula;
    use dlrv_vclock::{EventKind, VectorClock};

    fn two_proc_setup() -> (Arc<MonitorAutomaton>, Arc<AtomRegistry>, dlrv_ltl::AtomId, dlrv_ltl::AtomId)
    {
        let mut reg = AtomRegistry::new();
        let a = reg.intern("P0.p", 0);
        let b = reg.intern("P1.p", 1);
        let phi = Formula::eventually(Formula::and(Formula::Atom(a), Formula::Atom(b)));
        let automaton = Arc::new(MonitorAutomaton::synthesize(&phi, &reg));
        (automaton, Arc::new(reg), a, b)
    }

    fn internal(process: ProcessId, sn: u64, vc: Vec<u64>, state: Assignment, time: f64) -> Event {
        Event {
            process,
            kind: EventKind::Internal,
            sn,
            vc: VectorClock::from_entries(vc),
            state,
            time,
        }
    }

    #[test]
    fn feeding_concurrent_goal_states_detects_satisfaction() {
        let (automaton, registry, a, b) = two_proc_setup();
        let mut session = decentralized_session(
            2,
            &automaton,
            &registry,
            Assignment::ALL_FALSE,
            MonitorOptions::default(),
        );
        assert_eq!(session.verdict(), Verdict::Unknown);
        let v1 = session.feed_owned(internal(0, 1, vec![1, 0], Assignment::from_true_atoms([a]), 1.0));
        assert_eq!(v1, Verdict::Unknown);
        session.feed_owned(internal(1, 1, vec![0, 1], Assignment::from_true_atoms([b]), 2.0));
        let final_verdict = session.finish();
        // F(a && b) is satisfied on the concurrent cut where both propositions hold.
        assert_eq!(final_verdict, Verdict::True);
        assert!(session.monitor_messages() > 0, "exploration requires tokens");
        // finish is idempotent.
        assert_eq!(session.finish(), Verdict::True);
    }

    #[test]
    fn centralized_session_reaches_same_verdict() {
        let (automaton, registry, a, b) = two_proc_setup();
        let mut session = centralized_session(
            2,
            0,
            &automaton,
            &registry,
            vec![Assignment::ALL_FALSE; 2],
        );
        session.feed_owned(internal(0, 1, vec![1, 0], Assignment::from_true_atoms([a]), 1.0));
        session.feed_owned(internal(1, 1, vec![0, 1], Assignment::from_true_atoms([b]), 2.0));
        assert_eq!(session.finish(), Verdict::True);
        // The non-central monitor forwarded two events and one Done message.
        assert_eq!(session.monitor_messages(), 2);
    }

    #[test]
    fn combined_verdict_precedence() {
        use std::iter::FromIterator;
        assert_eq!(combined_verdict(&BTreeSet::new()), Verdict::Unknown);
        assert_eq!(
            combined_verdict(&BTreeSet::from_iter([Verdict::True])),
            Verdict::True
        );
        assert_eq!(
            combined_verdict(&BTreeSet::from_iter([Verdict::True, Verdict::False])),
            Verdict::False
        );
    }

    #[test]
    #[should_panic(expected = "finished session")]
    fn feeding_after_finish_panics() {
        let (automaton, registry, a, _) = two_proc_setup();
        let mut session = decentralized_session(
            2,
            &automaton,
            &registry,
            Assignment::ALL_FALSE,
            MonitorOptions::default(),
        );
        session.finish();
        session.feed_owned(internal(0, 1, vec![1, 0], Assignment::from_true_atoms([a]), 1.0));
    }
}
