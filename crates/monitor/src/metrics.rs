//! Per-monitor and aggregated metrics, matching the measurements of Chapter 5.
//!
//! The paper reports four quantities per experiment: total monitoring messages,
//! detection delay (both as queued events and as extra monitoring time per global
//! state), and memory overhead as the total number of global views created.

use dlrv_ltl::Verdict;
use std::collections::BTreeSet;

/// Metrics collected by a single monitor process.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorMetrics {
    /// Number of tokens (monitoring messages) this monitor sent.
    pub tokens_sent: usize,
    /// Number of tokens this monitor received.
    pub tokens_received: usize,
    /// Total number of global views ever created (including the initial one).
    pub global_views_created: usize,
    /// Number of global views alive at the end of monitoring.
    pub global_views_final: usize,
    /// Number of local program events observed.
    pub events_observed: usize,
    /// Sum of pending-queue lengths sampled at every local event (delay numerator).
    pub queued_events_sum: usize,
    /// Number of samples of the pending queue (delay denominator).
    pub queued_events_samples: usize,
    /// Largest pending queue observed.
    pub max_queued_events: usize,
    /// Simulated time of the last local program event.
    pub last_event_time: f64,
    /// Simulated time of the last monitoring activity (event or token processing).
    pub last_activity_time: f64,
    /// Verdicts of final (⊤/⊥) automaton states this monitor detected.
    pub detected_final_verdicts: BTreeSet<Verdict>,
    /// All verdicts over this monitor's global views at the end of monitoring.
    pub possible_verdicts: BTreeSet<Verdict>,
}

impl MonitorMetrics {
    /// Average number of events queued behind a waiting global view.
    pub fn avg_queued_events(&self) -> f64 {
        if self.queued_events_samples == 0 {
            0.0
        } else {
            self.queued_events_sum as f64 / self.queued_events_samples as f64
        }
    }
}

/// Metrics aggregated over all monitors of one run (one row of a paper figure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Number of processes.
    pub n_processes: usize,
    /// Total program events across all processes.
    pub total_events: usize,
    /// Total monitoring messages across all monitors (Fig. 5.4 / 5.5 / 5.9a).
    pub monitor_messages: usize,
    /// Total program messages.
    pub program_messages: usize,
    /// Total global views created across all monitors (Fig. 5.8 / 5.9c).
    pub total_global_views: usize,
    /// Average queued (delayed) events across monitors (Fig. 5.7 / 5.9b).
    pub avg_delayed_events: f64,
    /// Delay-time percentage per global state (Fig. 5.6 / 5.9b):
    /// `((monitor_extra_time / program_time) · 100) / total_global_views`.
    pub delay_time_pct_per_gv: f64,
    /// Program duration (simulated seconds).
    pub program_time: f64,
    /// Extra monitoring time after program termination (simulated seconds).
    pub monitor_extra_time: f64,
    /// Union of final verdicts detected by any monitor.
    pub detected_final_verdicts: BTreeSet<Verdict>,
    /// Union of possible verdicts over all monitors' global views.
    pub possible_verdicts: BTreeSet<Verdict>,
}

impl RunMetrics {
    /// Aggregates per-monitor metrics plus run-level timing/counting information.
    pub fn aggregate(
        per_monitor: &[MonitorMetrics],
        total_events: usize,
        program_messages: usize,
        monitor_messages: usize,
        program_time: f64,
        monitoring_end_time: f64,
    ) -> RunMetrics {
        let total_global_views: usize = per_monitor.iter().map(|m| m.global_views_created).sum();
        let avg_delayed_events = if per_monitor.is_empty() {
            0.0
        } else {
            per_monitor.iter().map(MonitorMetrics::avg_queued_events).sum::<f64>()
                / per_monitor.len() as f64
        };
        let monitor_extra_time = (monitoring_end_time - program_time).max(0.0);
        let delay_time_pct_per_gv = if program_time > 0.0 && total_global_views > 0 {
            (monitor_extra_time / program_time * 100.0) / total_global_views as f64
        } else {
            0.0
        };
        let mut detected = BTreeSet::new();
        let mut possible = BTreeSet::new();
        for m in per_monitor {
            detected.extend(m.detected_final_verdicts.iter().copied());
            possible.extend(m.possible_verdicts.iter().copied());
        }
        RunMetrics {
            n_processes: per_monitor.len(),
            total_events,
            monitor_messages,
            program_messages,
            total_global_views,
            avg_delayed_events,
            delay_time_pct_per_gv,
            program_time,
            monitor_extra_time,
            detected_final_verdicts: detected,
            possible_verdicts: possible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_queued_events_handles_zero_samples() {
        let m = MonitorMetrics::default();
        assert_eq!(m.avg_queued_events(), 0.0);
        let m2 = MonitorMetrics {
            queued_events_sum: 10,
            queued_events_samples: 4,
            ..Default::default()
        };
        assert_eq!(m2.avg_queued_events(), 2.5);
    }

    #[test]
    fn aggregation_computes_paper_metrics() {
        let per = vec![
            MonitorMetrics {
                global_views_created: 3,
                queued_events_sum: 4,
                queued_events_samples: 2,
                detected_final_verdicts: BTreeSet::from([Verdict::False]),
                ..Default::default()
            },
            MonitorMetrics {
                global_views_created: 2,
                queued_events_sum: 0,
                queued_events_samples: 2,
                possible_verdicts: BTreeSet::from([Verdict::Unknown]),
                ..Default::default()
            },
        ];
        let run = RunMetrics::aggregate(&per, 40, 10, 25, 60.0, 66.0);
        assert_eq!(run.total_global_views, 5);
        assert_eq!(run.monitor_messages, 25);
        assert_eq!(run.avg_delayed_events, 1.0);
        // extra = 6s over 60s = 10%, divided by 5 global views = 2.0
        assert!((run.delay_time_pct_per_gv - 2.0).abs() < 1e-9);
        assert!(run.detected_final_verdicts.contains(&Verdict::False));
        assert!(run.possible_verdicts.contains(&Verdict::Unknown));
    }

    #[test]
    fn aggregation_with_zero_program_time() {
        let run = RunMetrics::aggregate(&[], 0, 0, 0, 0.0, 0.0);
        assert_eq!(run.delay_time_pct_per_gv, 0.0);
        assert_eq!(run.avg_delayed_events, 0.0);
    }
}
