//! Per-monitor and aggregated metrics, matching the measurements of Chapter 5.
//!
//! The paper reports four quantities per experiment: total monitoring messages,
//! detection delay (both as queued events and as extra monitoring time per global
//! state), and memory overhead as the total number of global views created.

use dlrv_json::{object, Json, JsonError};
use dlrv_ltl::Verdict;
use std::collections::BTreeSet;

/// Stable on-disk name of a verdict (`"true"`, `"false"`, `"unknown"`).
pub fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::True => "true",
        Verdict::False => "false",
        Verdict::Unknown => "unknown",
    }
}

/// Parses a verdict from its [`verdict_name`] form.
pub fn verdict_from_name(name: &str) -> Result<Verdict, JsonError> {
    match name {
        "true" => Ok(Verdict::True),
        "false" => Ok(Verdict::False),
        "unknown" => Ok(Verdict::Unknown),
        other => Err(JsonError::msg(format!("unknown verdict `{other}`"))),
    }
}

fn verdicts_to_json(set: &BTreeSet<Verdict>) -> Json {
    Json::Array(set.iter().map(|&v| Json::from(verdict_name(v))).collect())
}

fn verdicts_from_json(v: &Json) -> Result<BTreeSet<Verdict>, JsonError> {
    v.as_array()?
        .iter()
        .map(|item| verdict_from_name(item.as_str()?))
        .collect()
}

/// Metrics collected by a single monitor process.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorMetrics {
    /// Number of tokens this monitor sent.  With token aggregation (§4.3.1) several
    /// tokens can share one monitoring *message*, so this counts payloads, not sends.
    pub tokens_sent: usize,
    /// Number of tokens this monitor received (batch members counted individually).
    pub tokens_received: usize,
    /// Number of aggregated `MonitorMsg::Batch` messages this monitor sent (each
    /// carried ≥ 2 tokens; singleton sends travel as plain token messages).
    pub token_batches_sent: usize,
    /// Total number of global views ever created (including the initial one).
    pub global_views_created: usize,
    /// Number of global views alive at the end of monitoring.
    pub global_views_final: usize,
    /// Largest number of global views alive at the same time (the §4.3 memory peak).
    pub max_live_views: usize,
    /// Number of local program events observed.
    pub events_observed: usize,
    /// Sum of pending-queue lengths sampled at every local event (delay numerator).
    pub queued_events_sum: usize,
    /// Number of samples of the pending queue (delay denominator).
    pub queued_events_samples: usize,
    /// Largest pending queue observed.
    pub max_queued_events: usize,
    /// Simulated time of the last local program event.
    pub last_event_time: f64,
    /// Simulated time of the last monitoring activity (event or token processing).
    pub last_activity_time: f64,
    /// Verdicts of final (⊤/⊥) automaton states this monitor detected.
    pub detected_final_verdicts: BTreeSet<Verdict>,
    /// All verdicts over this monitor's global views at the end of monitoring.
    pub possible_verdicts: BTreeSet<Verdict>,
}

impl MonitorMetrics {
    /// Average number of events queued behind a waiting global view.
    pub fn avg_queued_events(&self) -> f64 {
        if self.queued_events_samples == 0 {
            0.0
        } else {
            self.queued_events_sum as f64 / self.queued_events_samples as f64
        }
    }

    /// Serializes the per-monitor metrics (the `monitord` daemon reports them over
    /// its control connection); field names are part of the deploy protocol.
    pub fn to_json(&self) -> Json {
        object([
            ("tokens_sent", Json::from(self.tokens_sent)),
            ("tokens_received", Json::from(self.tokens_received)),
            ("token_batches_sent", Json::from(self.token_batches_sent)),
            ("global_views_created", Json::from(self.global_views_created)),
            ("global_views_final", Json::from(self.global_views_final)),
            ("max_live_views", Json::from(self.max_live_views)),
            ("events_observed", Json::from(self.events_observed)),
            ("queued_events_sum", Json::from(self.queued_events_sum)),
            ("queued_events_samples", Json::from(self.queued_events_samples)),
            ("max_queued_events", Json::from(self.max_queued_events)),
            ("last_event_time", Json::from(self.last_event_time)),
            ("last_activity_time", Json::from(self.last_activity_time)),
            (
                "detected_final_verdicts",
                verdicts_to_json(&self.detected_final_verdicts),
            ),
            ("possible_verdicts", verdicts_to_json(&self.possible_verdicts)),
        ])
    }

    /// Parses the metrics back from their [`MonitorMetrics::to_json`] form.
    pub fn from_json(v: &Json) -> Result<MonitorMetrics, JsonError> {
        Ok(MonitorMetrics {
            tokens_sent: v.get("tokens_sent")?.as_usize()?,
            tokens_received: v.get("tokens_received")?.as_usize()?,
            token_batches_sent: v.get("token_batches_sent")?.as_usize()?,
            global_views_created: v.get("global_views_created")?.as_usize()?,
            global_views_final: v.get("global_views_final")?.as_usize()?,
            max_live_views: v.get("max_live_views")?.as_usize()?,
            events_observed: v.get("events_observed")?.as_usize()?,
            queued_events_sum: v.get("queued_events_sum")?.as_usize()?,
            queued_events_samples: v.get("queued_events_samples")?.as_usize()?,
            max_queued_events: v.get("max_queued_events")?.as_usize()?,
            last_event_time: v.get("last_event_time")?.as_f64()?,
            last_activity_time: v.get("last_activity_time")?.as_f64()?,
            detected_final_verdicts: verdicts_from_json(v.get("detected_final_verdicts")?)?,
            possible_verdicts: verdicts_from_json(v.get("possible_verdicts")?)?,
        })
    }
}

/// Metrics of one worker shard of the streaming runtime (`dlrv-stream`).
///
/// Plain data so `RunMetrics` can embed per-shard measurements without this crate
/// depending on the runtime; the streaming runtime fills it in at shutdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Sessions opened on this shard.
    pub sessions_opened: usize,
    /// Sessions closed (finished) on this shard.
    pub sessions_closed: usize,
    /// Program events applied by this shard.
    pub events_processed: usize,
    /// Mailbox batches processed.
    pub batches: usize,
    /// Largest batch drained in one go.
    pub max_batch_len: usize,
    /// Wall-clock seconds this shard spent applying batches (its busy time).
    pub busy_secs: f64,
    /// Mean wall-clock latency between a record's enqueue and its application.
    pub avg_queue_latency_secs: f64,
    /// Largest such latency.
    pub max_queue_latency_secs: f64,
    /// Times a producer found this shard's mailbox full and had to block.
    pub backpressure_stalls: usize,
    /// Records addressed to an unknown or already-closed session.
    pub routing_errors: usize,
}

impl ShardMetrics {
    /// Serializes the shard metrics; field names are part of the results schema.
    pub fn to_json(&self) -> Json {
        object([
            ("shard", Json::from(self.shard)),
            ("sessions_opened", Json::from(self.sessions_opened)),
            ("sessions_closed", Json::from(self.sessions_closed)),
            ("events_processed", Json::from(self.events_processed)),
            ("batches", Json::from(self.batches)),
            ("max_batch_len", Json::from(self.max_batch_len)),
            ("busy_secs", Json::from(self.busy_secs)),
            ("avg_queue_latency_secs", Json::from(self.avg_queue_latency_secs)),
            ("max_queue_latency_secs", Json::from(self.max_queue_latency_secs)),
            ("backpressure_stalls", Json::from(self.backpressure_stalls)),
            ("routing_errors", Json::from(self.routing_errors)),
        ])
    }

    /// Parses shard metrics back from their [`ShardMetrics::to_json`] form.
    pub fn from_json(v: &Json) -> Result<ShardMetrics, JsonError> {
        Ok(ShardMetrics {
            shard: v.get("shard")?.as_usize()?,
            sessions_opened: v.get("sessions_opened")?.as_usize()?,
            sessions_closed: v.get("sessions_closed")?.as_usize()?,
            events_processed: v.get("events_processed")?.as_usize()?,
            batches: v.get("batches")?.as_usize()?,
            max_batch_len: v.get("max_batch_len")?.as_usize()?,
            busy_secs: v.get("busy_secs")?.as_f64()?,
            avg_queue_latency_secs: v.get("avg_queue_latency_secs")?.as_f64()?,
            max_queue_latency_secs: v.get("max_queue_latency_secs")?.as_f64()?,
            backpressure_stalls: v.get("backpressure_stalls")?.as_usize()?,
            routing_errors: v.get("routing_errors")?.as_usize()?,
        })
    }
}

/// Per-property metrics of one fleet run: the slice of a fleet-of-N record that
/// belongs to one monitored property (summed across the run's sessions).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetPropertyMetrics {
    /// The property's name within the fleet (`"A"`, `"reqack"`, …).
    pub property: String,
    /// The property's combined final verdict across all sessions
    /// ([`verdict_name`] form: `"true"` / `"false"` / `"unknown"`).
    pub verdict: String,
    /// Union of final verdicts this property's monitors detected.
    pub detected_final_verdicts: BTreeSet<Verdict>,
    /// Union of possible verdicts over this property's global views.
    pub possible_verdicts: BTreeSet<Verdict>,
    /// Tokens this property's monitors sent (fleet transport shares the
    /// *messages*; token payloads stay attributable per property).
    pub monitor_tokens: usize,
    /// Global views this property's monitors created.
    pub global_views: usize,
    /// Sum of this property's monitors' peak live-view counts.
    pub peak_global_views: usize,
}

impl FleetPropertyMetrics {
    /// Serializes the per-property slice; field names are part of the results schema.
    pub fn to_json(&self) -> Json {
        object([
            ("property", Json::from(self.property.as_str())),
            ("verdict", Json::from(self.verdict.as_str())),
            (
                "detected_final_verdicts",
                verdicts_to_json(&self.detected_final_verdicts),
            ),
            ("possible_verdicts", verdicts_to_json(&self.possible_verdicts)),
            ("monitor_tokens", Json::from(self.monitor_tokens)),
            ("global_views", Json::from(self.global_views)),
            ("peak_global_views", Json::from(self.peak_global_views)),
        ])
    }

    /// Parses the slice back from its [`FleetPropertyMetrics::to_json`] form.
    pub fn from_json(v: &Json) -> Result<FleetPropertyMetrics, JsonError> {
        Ok(FleetPropertyMetrics {
            property: v.get("property")?.as_str()?.to_string(),
            verdict: v.get("verdict")?.as_str()?.to_string(),
            detected_final_verdicts: verdicts_from_json(v.get("detected_final_verdicts")?)?,
            possible_verdicts: verdicts_from_json(v.get("possible_verdicts")?)?,
            monitor_tokens: v.get("monitor_tokens")?.as_usize()?,
            global_views: v.get("global_views")?.as_usize()?,
            peak_global_views: v.get("peak_global_views")?.as_usize()?,
        })
    }
}

/// Metrics aggregated over all monitors of one run (one row of a paper figure).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Number of processes.
    pub n_processes: usize,
    /// Total program events across all processes.
    pub total_events: usize,
    /// Total monitoring messages across all monitors (Fig. 5.4 / 5.5 / 5.9a).
    pub monitor_messages: usize,
    /// Total program messages.
    pub program_messages: usize,
    /// Total global views created across all monitors (Fig. 5.8 / 5.9c).
    pub total_global_views: usize,
    /// Average queued (delayed) events across monitors (Fig. 5.7 / 5.9b).
    pub avg_delayed_events: f64,
    /// Delay-time percentage per global state (Fig. 5.6 / 5.9b):
    /// `((monitor_extra_time / program_time) · 100) / total_global_views`.
    pub delay_time_pct_per_gv: f64,
    /// Program duration (simulated seconds).
    pub program_time: f64,
    /// Extra monitoring time after program termination (simulated seconds).
    pub monitor_extra_time: f64,
    /// Union of final verdicts detected by any monitor.
    pub detected_final_verdicts: BTreeSet<Verdict>,
    /// Union of possible verdicts over all monitors' global views.
    pub possible_verdicts: BTreeSet<Verdict>,
    /// Wall-clock duration of the run/scenario that produced these metrics (seconds;
    /// `0.0` when not measured).  Unlike every field above this is real elapsed time,
    /// not simulated time, so it varies run to run.
    pub wall_clock_secs: f64,
    /// Aggregate ingestion throughput of a streaming run (events per wall-clock
    /// second; `0.0` for offline runs).
    pub events_per_sec: f64,
    /// Per-shard measurements of a streaming run (empty for offline runs).
    pub per_shard: Vec<ShardMetrics>,
    /// Total tokens carried by monitoring messages (§4.3 overhead accounting).  With
    /// token aggregation on, `monitor_messages < monitor_tokens`; with it off the two
    /// coincide for token traffic.  `0` for runs that predate the field.
    pub monitor_tokens: usize,
    /// Sum over monitors of the largest number of global views each held alive at
    /// once — the run's peak lattice-exploration memory (§4.3 overhead accounting).
    /// `0` for runs that predate the field.
    pub peak_global_views: usize,
    /// Peak resident set size in bytes (`VmHWM` from `/proc/self/status`) of the
    /// largest single process involved in the run — the bounded-memory observable
    /// soak assertions watch.  Like `wall_clock_secs` this is a real machine
    /// measurement, not simulated, so it varies run to run.  `0` when not measured
    /// (non-Linux, or records that predate the field).
    pub peak_rss_bytes: u64,
    /// Number of properties monitored as one fleet over a shared event stream.
    /// `0` for single-property runs and records that predate fleet monitoring.
    pub fleet_size: usize,
    /// Sum of the wall-clock seconds of `fleet_size` *solo* baseline runs over the
    /// exact same wire stream, measured back-to-back with the fleet run — the
    /// denominator of the fleet's amortization ratio.  Like `wall_clock_secs`
    /// this is real elapsed time.  `0.0` outside the fleet family.
    pub fleet_solo_wall_clock_secs: f64,
    /// Measured marginal wall-clock cost of each property added to the fleet
    /// beyond the first: `(fleet_wall − solo_sum/N) / (N − 1)` seconds, where
    /// `solo_sum/N` estimates one property's standalone cost.  `0.0` when the
    /// fleet has fewer than two members or outside the fleet family.
    pub fleet_marginal_cost_secs: f64,
    /// Per-property slice of a fleet run (empty outside the fleet family).
    pub fleet_per_property: Vec<FleetPropertyMetrics>,
}

impl RunMetrics {
    /// Serializes the metrics as a JSON object; the field names below are the stable
    /// schema of `BENCH_results.json` records.
    ///
    /// Floats are printed with Rust's shortest round-trip formatting (see
    /// [`dlrv_json`]), so [`RunMetrics::from_json`] restores every field exactly.
    pub fn to_json(&self) -> Json {
        object([
            ("n_processes", Json::from(self.n_processes)),
            ("total_events", Json::from(self.total_events)),
            ("monitor_messages", Json::from(self.monitor_messages)),
            ("program_messages", Json::from(self.program_messages)),
            ("total_global_views", Json::from(self.total_global_views)),
            ("avg_delayed_events", Json::from(self.avg_delayed_events)),
            ("delay_time_pct_per_gv", Json::from(self.delay_time_pct_per_gv)),
            ("program_time", Json::from(self.program_time)),
            ("monitor_extra_time", Json::from(self.monitor_extra_time)),
            (
                "detected_final_verdicts",
                verdicts_to_json(&self.detected_final_verdicts),
            ),
            ("possible_verdicts", verdicts_to_json(&self.possible_verdicts)),
            ("wall_clock_secs", Json::from(self.wall_clock_secs)),
            ("events_per_sec", Json::from(self.events_per_sec)),
            (
                "per_shard",
                Json::Array(self.per_shard.iter().map(ShardMetrics::to_json).collect()),
            ),
            ("monitor_tokens", Json::from(self.monitor_tokens)),
            ("peak_global_views", Json::from(self.peak_global_views)),
            ("peak_rss_bytes", Json::from(self.peak_rss_bytes)),
            ("fleet_size", Json::from(self.fleet_size)),
            (
                "fleet_solo_wall_clock_secs",
                Json::from(self.fleet_solo_wall_clock_secs),
            ),
            (
                "fleet_marginal_cost_secs",
                Json::from(self.fleet_marginal_cost_secs),
            ),
            (
                "fleet_per_property",
                Json::Array(
                    self.fleet_per_property
                        .iter()
                        .map(FleetPropertyMetrics::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses metrics back from their [`RunMetrics::to_json`] form, field-for-field.
    pub fn from_json(v: &Json) -> Result<RunMetrics, JsonError> {
        Ok(RunMetrics {
            n_processes: v.get("n_processes")?.as_usize()?,
            total_events: v.get("total_events")?.as_usize()?,
            monitor_messages: v.get("monitor_messages")?.as_usize()?,
            program_messages: v.get("program_messages")?.as_usize()?,
            total_global_views: v.get("total_global_views")?.as_usize()?,
            avg_delayed_events: v.get("avg_delayed_events")?.as_f64()?,
            delay_time_pct_per_gv: v.get("delay_time_pct_per_gv")?.as_f64()?,
            program_time: v.get("program_time")?.as_f64()?,
            monitor_extra_time: v.get("monitor_extra_time")?.as_f64()?,
            detected_final_verdicts: verdicts_from_json(v.get("detected_final_verdicts")?)?,
            possible_verdicts: verdicts_from_json(v.get("possible_verdicts")?)?,
            // The three streaming fields postdate the first schema-v1 documents;
            // records written before them carry offline runs only.
            wall_clock_secs: v.get_opt("wall_clock_secs")?.map_or(Ok(0.0), Json::as_f64)?,
            events_per_sec: v.get_opt("events_per_sec")?.map_or(Ok(0.0), Json::as_f64)?,
            per_shard: match v.get_opt("per_shard")? {
                None => Vec::new(),
                Some(arr) => arr
                    .as_array()?
                    .iter()
                    .map(ShardMetrics::from_json)
                    .collect::<Result<_, _>>()?,
            },
            // The §4.3 overhead fields postdate the streaming fields; records written
            // before them default to zero (meaning "not measured").
            monitor_tokens: v.get_opt("monitor_tokens")?.map_or(Ok(0), Json::as_usize)?,
            peak_global_views: v
                .get_opt("peak_global_views")?
                .map_or(Ok(0), Json::as_usize)?,
            // The RSS field postdates the §4.3 fields (PR 8); additive like them.
            peak_rss_bytes: v.get_opt("peak_rss_bytes")?.map_or(Ok(0), Json::as_u64)?,
            // The fleet fields postdate the RSS field; pre-fleet records are
            // single-property runs, so they default to "no fleet".
            fleet_size: v.get_opt("fleet_size")?.map_or(Ok(0), Json::as_usize)?,
            fleet_solo_wall_clock_secs: v
                .get_opt("fleet_solo_wall_clock_secs")?
                .map_or(Ok(0.0), Json::as_f64)?,
            fleet_marginal_cost_secs: v
                .get_opt("fleet_marginal_cost_secs")?
                .map_or(Ok(0.0), Json::as_f64)?,
            fleet_per_property: match v.get_opt("fleet_per_property")? {
                None => Vec::new(),
                Some(arr) => arr
                    .as_array()?
                    .iter()
                    .map(FleetPropertyMetrics::from_json)
                    .collect::<Result<_, _>>()?,
            },
        })
    }

    /// Aggregates per-monitor metrics plus run-level timing/counting information.
    pub fn aggregate(
        per_monitor: &[MonitorMetrics],
        total_events: usize,
        program_messages: usize,
        monitor_messages: usize,
        program_time: f64,
        monitoring_end_time: f64,
    ) -> RunMetrics {
        let total_global_views: usize = per_monitor.iter().map(|m| m.global_views_created).sum();
        let avg_delayed_events = if per_monitor.is_empty() {
            0.0
        } else {
            per_monitor.iter().map(MonitorMetrics::avg_queued_events).sum::<f64>()
                / per_monitor.len() as f64
        };
        let monitor_extra_time = (monitoring_end_time - program_time).max(0.0);
        let delay_time_pct_per_gv = if program_time > 0.0 && total_global_views > 0 {
            (monitor_extra_time / program_time * 100.0) / total_global_views as f64
        } else {
            0.0
        };
        let mut detected = BTreeSet::new();
        let mut possible = BTreeSet::new();
        for m in per_monitor {
            detected.extend(m.detected_final_verdicts.iter().copied());
            possible.extend(m.possible_verdicts.iter().copied());
        }
        RunMetrics {
            n_processes: per_monitor.len(),
            total_events,
            monitor_messages,
            program_messages,
            total_global_views,
            avg_delayed_events,
            delay_time_pct_per_gv,
            program_time,
            monitor_extra_time,
            detected_final_verdicts: detected,
            possible_verdicts: possible,
            monitor_tokens: per_monitor.iter().map(|m| m.tokens_sent).sum(),
            peak_global_views: per_monitor.iter().map(|m| m.max_live_views).sum(),
            ..RunMetrics::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_queued_events_handles_zero_samples() {
        let m = MonitorMetrics::default();
        assert_eq!(m.avg_queued_events(), 0.0);
        let m2 = MonitorMetrics {
            queued_events_sum: 10,
            queued_events_samples: 4,
            ..Default::default()
        };
        assert_eq!(m2.avg_queued_events(), 2.5);
    }

    #[test]
    fn aggregation_computes_paper_metrics() {
        let per = vec![
            MonitorMetrics {
                global_views_created: 3,
                queued_events_sum: 4,
                queued_events_samples: 2,
                tokens_sent: 7,
                max_live_views: 3,
                detected_final_verdicts: BTreeSet::from([Verdict::False]),
                ..Default::default()
            },
            MonitorMetrics {
                global_views_created: 2,
                queued_events_sum: 0,
                queued_events_samples: 2,
                tokens_sent: 5,
                max_live_views: 2,
                possible_verdicts: BTreeSet::from([Verdict::Unknown]),
                ..Default::default()
            },
        ];
        let run = RunMetrics::aggregate(&per, 40, 10, 25, 60.0, 66.0);
        assert_eq!(run.total_global_views, 5);
        assert_eq!(run.monitor_messages, 25);
        assert_eq!(run.monitor_tokens, 12);
        assert_eq!(run.peak_global_views, 5);
        assert_eq!(run.avg_delayed_events, 1.0);
        // extra = 6s over 60s = 10%, divided by 5 global views = 2.0
        assert!((run.delay_time_pct_per_gv - 2.0).abs() < 1e-9);
        assert!(run.detected_final_verdicts.contains(&Verdict::False));
        assert!(run.possible_verdicts.contains(&Verdict::Unknown));
    }

    #[test]
    fn run_metrics_json_round_trips_field_for_field() {
        let m = RunMetrics {
            n_processes: 4,
            total_events: 123,
            monitor_messages: 456,
            program_messages: 78,
            total_global_views: 90,
            avg_delayed_events: 1.0 / 3.0,
            delay_time_pct_per_gv: 0.123456789,
            program_time: 59.87,
            monitor_extra_time: 2.5e-3,
            detected_final_verdicts: BTreeSet::from([Verdict::True]),
            possible_verdicts: BTreeSet::from([Verdict::True, Verdict::Unknown]),
            monitor_tokens: 512,
            peak_global_views: 33,
            ..RunMetrics::default()
        };
        let text = m.to_json().to_string_pretty();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
        // And the default all-zero metrics too.
        let zero = RunMetrics::default();
        let back = RunMetrics::from_json(&Json::parse(&zero.to_json().to_string_pretty()).unwrap());
        assert_eq!(zero, back.unwrap());
    }

    #[test]
    fn streaming_fields_round_trip() {
        let m = RunMetrics {
            wall_clock_secs: 1.25,
            events_per_sec: 123456.789,
            per_shard: vec![
                ShardMetrics {
                    shard: 0,
                    sessions_opened: 10,
                    sessions_closed: 10,
                    events_processed: 400,
                    batches: 17,
                    max_batch_len: 32,
                    busy_secs: 0.5,
                    avg_queue_latency_secs: 1.5e-4,
                    max_queue_latency_secs: 3.0e-3,
                    backpressure_stalls: 2,
                    routing_errors: 0,
                },
                ShardMetrics {
                    shard: 1,
                    ..ShardMetrics::default()
                },
            ],
            ..RunMetrics::default()
        };
        let text = m.to_json().to_string_pretty();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn pre_streaming_records_still_parse() {
        // A record written before the streaming fields existed must load with zeroed
        // streaming metrics.  This pins the schema's backward compatibility.
        let mut m = RunMetrics {
            n_processes: 3,
            total_events: 12,
            ..RunMetrics::default()
        };
        m.wall_clock_secs = 9.0; // will be stripped below
        m.monitor_tokens = 44; // likewise
        m.peak_global_views = 9;
        m.peak_rss_bytes = 1 << 30;
        m.fleet_size = 3;
        m.fleet_solo_wall_clock_secs = 2.5;
        m.fleet_marginal_cost_secs = 0.1;
        m.fleet_per_property = vec![FleetPropertyMetrics {
            property: "A".to_string(),
            verdict: "true".to_string(),
            ..FleetPropertyMetrics::default()
        }];
        let Json::Object(mut fields) = m.to_json() else {
            panic!("metrics must serialize to an object")
        };
        fields.retain(|(k, _)| {
            !matches!(
                k.as_str(),
                "wall_clock_secs"
                    | "events_per_sec"
                    | "per_shard"
                    | "monitor_tokens"
                    | "peak_global_views"
                    | "peak_rss_bytes"
                    | "fleet_size"
                    | "fleet_solo_wall_clock_secs"
                    | "fleet_marginal_cost_secs"
                    | "fleet_per_property"
            )
        });
        let back = RunMetrics::from_json(&Json::Object(fields)).unwrap();
        assert_eq!(back.wall_clock_secs, 0.0);
        assert_eq!(back.events_per_sec, 0.0);
        assert!(back.per_shard.is_empty());
        assert_eq!(back.monitor_tokens, 0, "overhead fields default to unmeasured");
        assert_eq!(back.peak_global_views, 0);
        assert_eq!(back.peak_rss_bytes, 0, "RSS defaults to unmeasured");
        assert_eq!(back.fleet_size, 0, "pre-fleet records are single-property runs");
        assert_eq!(back.fleet_solo_wall_clock_secs, 0.0);
        assert_eq!(back.fleet_marginal_cost_secs, 0.0);
        assert!(back.fleet_per_property.is_empty());
        assert_eq!(back.total_events, 12);
    }

    #[test]
    fn fleet_fields_round_trip() {
        let m = RunMetrics {
            fleet_size: 2,
            fleet_solo_wall_clock_secs: 3.75,
            fleet_marginal_cost_secs: 0.0625,
            fleet_per_property: vec![
                FleetPropertyMetrics {
                    property: "A".to_string(),
                    verdict: "true".to_string(),
                    detected_final_verdicts: BTreeSet::from([Verdict::True]),
                    possible_verdicts: BTreeSet::from([Verdict::True, Verdict::Unknown]),
                    monitor_tokens: 17,
                    global_views: 42,
                    peak_global_views: 8,
                },
                FleetPropertyMetrics {
                    property: "B".to_string(),
                    verdict: "unknown".to_string(),
                    ..FleetPropertyMetrics::default()
                },
            ],
            ..RunMetrics::default()
        };
        let text = m.to_json().to_string_pretty();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn verdict_names_round_trip() {
        for v in [Verdict::True, Verdict::False, Verdict::Unknown] {
            assert_eq!(verdict_from_name(verdict_name(v)).unwrap(), v);
        }
        assert!(verdict_from_name("maybe").is_err());
    }

    #[test]
    fn aggregation_with_zero_program_time() {
        let run = RunMetrics::aggregate(&[], 0, 0, 0, 0.0, 0.0);
        assert_eq!(run.delay_time_pct_per_gv, 0.0);
        assert_eq!(run.avg_delayed_events, 0.0);
    }
}
