//! Workspace-sanity smoke test: decentralized monitors replayed on the thesis'
//! running-example computation agree with the lattice oracle.

use dlrv_automaton::MonitorAutomaton;
use dlrv_ltl::{parse, Verdict};
use dlrv_monitor::{replay_decentralized, MonitorOptions};
use dlrv_vclock::{fixtures, oracle_evaluate, Lattice};
use std::sync::Arc;

#[test]
fn replay_on_running_example_is_sound() {
    let (comp, mut registry) = fixtures::running_example();
    let formula = parse("F (P0.p & P1.p)", &mut registry).expect("parse");
    let automaton = Arc::new(MonitorAutomaton::synthesize(&formula, &registry));
    let registry = Arc::new(registry);

    let lattice = Lattice::build(&comp);
    let oracle = oracle_evaluate(&comp, &lattice, &automaton, &registry);
    let result = replay_decentralized(&comp, &registry, &automaton, MonitorOptions::default());

    if result.detected_final_verdicts().contains(&Verdict::True) {
        assert!(oracle.satisfaction_reachable, "monitors saw ⊤ the oracle cannot reach");
    }
    if result.detected_final_verdicts().contains(&Verdict::False) {
        assert!(oracle.violation_reachable, "monitors saw ⊥ the oracle cannot reach");
    }
    assert_eq!(result.monitors.len(), comp.n_processes());
}
