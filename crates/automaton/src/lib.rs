//! LTL₃ monitor-automaton synthesis.
//!
//! This crate implements the classic Bauer–Leucker–Schallhart construction the paper
//! relies on (its reference \[1\]): given an LTL formula φ over global-state atomic
//! propositions, produce the unique minimal deterministic Moore machine whose output on
//! every finite word `u` equals the three-valued verdict `[u ⊨ φ]` of Definition 11.
//!
//! Pipeline (all implemented from scratch, no external automata libraries):
//!
//! 1. [`gba`] — tableau construction (Gerth–Peled–Vardi–Wolper style `expand`) turning
//!    an NNF formula into a state-labelled generalized Büchi automaton, plus per-state
//!    language-nonemptiness via SCC analysis.
//! 2. [`dfa`] — the finite-word NFA obtained by marking states from which an accepting
//!    continuation exists, determinized by subset construction.
//! 3. [`monitor`] — the product of the φ- and ¬φ-DFAs, labelled with verdicts
//!    {⊤, ⊥, ?}, minimized (Moore partition refinement), and equipped with *symbolic*
//!    transitions: every state pair's guard is compacted into conjunctive cubes, which
//!    is exactly the transition representation the decentralized algorithm consumes
//!    (disjunctive guards become several conjunctive transitions, §4.3.3).
//! 4. [`dot`] — Graphviz export used to regenerate Figures 5.2 and 5.3.

#![forbid(unsafe_code)]

pub mod dfa;
pub mod dot;
pub mod gba;
pub mod monitor;

pub use dfa::Dfa;
pub use gba::GeneralizedBuchi;
pub use monitor::{
    MonitorAutomaton, StateId, SymbolicTransition, SynthesisReport, TransitionCounts,
};
